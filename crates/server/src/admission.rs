//! Bounded admission control: at most `max_active` requests execute at
//! once, at most `max_queue` wait behind them, and everything beyond
//! that is **shed immediately** with a structured
//! [`ErrorKind::Overloaded`](hippo_engine::ErrorKind) error carrying a
//! retry hint — the queue never grows without bound, so a load spike
//! degrades into fast rejections instead of unbounded latency.
//!
//! Waiting is deadline-aware: a queued request gives up (with a
//! `Budget` error at stage `"admission"`) once its own deadline would
//! expire before it could run, so queue time is charged against the
//! same per-request budget the execution stages consume. Draining
//! ([`Admission::drain`]) rejects new arrivals with `Shutdown`, wakes
//! every waiter, and blocks until the last active request finishes.

use hippo_engine::EngineError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Mutable admission state behind the lock. Counters only — the lock
/// is held for bookkeeping, never while a request executes.
#[derive(Debug, Default)]
struct AdmState {
    /// Requests currently holding a [`Permit`].
    active: usize,
    /// Requests blocked in [`Admission::admit`] waiting for a slot.
    queued: usize,
    /// Set once by [`Admission::drain`]; never cleared.
    draining: bool,
}

/// The bounded admission gate. One per [`crate::Engine`]; every
/// request — reads, CQA runs and writes alike — passes through
/// [`Admission::admit`] and holds the returned [`Permit`] for the
/// duration of its execution.
#[derive(Debug)]
pub(crate) struct Admission {
    state: Mutex<AdmState>,
    cv: Condvar,
    max_active: usize,
    max_queue: usize,
    retry_after: Duration,
    /// Requests rejected at admission because the queue was full.
    shed: AtomicU64,
    /// Requests admitted (immediately or after queueing).
    admitted: AtomicU64,
}

impl Admission {
    pub(crate) fn new(max_active: usize, max_queue: usize, retry_after: Duration) -> Admission {
        Admission {
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_queue,
            retry_after,
            shed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Admit one request, blocking in the bounded queue if the service
    /// is at capacity. `deadline` is the request's own absolute
    /// deadline: the wait is capped so a request never queues past the
    /// point where running it would be pointless.
    ///
    /// Errors: `Overloaded { retry_after }` when the queue is full
    /// (immediate, never blocks), `Shutdown` when draining, `Budget`
    /// at stage `"admission"` when the deadline expired while queued.
    pub(crate) fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, EngineError> {
        let mut st = self.state.lock().unwrap();
        if st.draining {
            return Err(EngineError::shutdown());
        }
        if st.active < self.max_active {
            st.active += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { adm: self });
        }
        if st.queued >= self.max_queue {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::overloaded(self.retry_after));
        }
        st.queued += 1;
        let enqueued = Instant::now();
        loop {
            // Cap the wait by the request's remaining deadline (plus a
            // coarse heartbeat when undeadlined, so a lost wakeup can
            // never wedge a waiter forever).
            let now = Instant::now();
            let wait = match deadline {
                Some(d) if d <= now => {
                    st.queued -= 1;
                    // Another slot may have opened for a sibling waiter.
                    self.cv.notify_all();
                    let spent = now.saturating_duration_since(enqueued);
                    return Err(EngineError::budget(
                        "admission",
                        spent.as_micros() as u64,
                        0,
                    ));
                }
                Some(d) => d.saturating_duration_since(now),
                None => Duration::from_millis(100),
            };
            st = self.cv.wait_timeout(st, wait).unwrap().0;
            if st.draining {
                st.queued -= 1;
                self.cv.notify_all();
                return Err(EngineError::shutdown());
            }
            if st.active < self.max_active {
                st.queued -= 1;
                st.active += 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { adm: self });
            }
        }
    }

    /// Begin draining: new arrivals get `Shutdown`, queued waiters are
    /// woken into `Shutdown`, and this call blocks until every active
    /// request has released its permit.
    pub(crate) fn drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.draining = true;
        self.cv.notify_all();
        while st.active > 0 || st.queued > 0 {
            st = self.cv.wait(st).unwrap();
        }
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    pub(crate) fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub(crate) fn admitted_count(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// (active, queued) right now — approximate by nature.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.active, st.queued)
    }
}

/// RAII admission slot: dropping it frees the slot and wakes one
/// waiter (or the drain loop).
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    adm: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().unwrap();
        st.active -= 1;
        // notify_all, not notify_one: waiters and the drain loop share
        // the condvar, and a single wakeup could land on the "wrong"
        // class and stall the other.
        self.adm.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sheds_beyond_queue_with_retry_hint() {
        let adm = Admission::new(1, 0, Duration::from_millis(7));
        let p = adm.admit(None).unwrap();
        let err = adm.admit(None).unwrap_err();
        assert!(err.is_overloaded(), "{err}");
        assert_eq!(err.retry_after(), Some(Duration::from_millis(7)));
        assert_eq!(adm.shed_count(), 1);
        drop(p);
        let _p = adm.admit(None).unwrap();
        assert_eq!(adm.admitted_count(), 2);
    }

    #[test]
    fn queued_request_runs_when_slot_frees() {
        let adm = Admission::new(1, 4, Duration::from_millis(1));
        let p = adm.admit(None).unwrap();
        let ran = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let _p = adm.admit(None).unwrap();
                ran.fetch_add(1, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(ran.load(Ordering::Relaxed), 0, "still queued");
            drop(p);
            h.join().unwrap();
            assert_eq!(ran.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn queue_wait_respects_the_deadline() {
        let adm = Admission::new(1, 4, Duration::from_millis(1));
        let _p = adm.admit(None).unwrap();
        let t0 = Instant::now();
        let err = adm
            .admit(Some(Instant::now() + Duration::from_millis(30)))
            .unwrap_err();
        assert!(err.is_budget(), "{err}");
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "{waited:?}");
        assert!(waited < Duration::from_secs(2), "{waited:?}");
        let (_, queued) = adm.occupancy();
        assert_eq!(queued, 0, "gave its queue slot back");
    }

    #[test]
    fn drain_rejects_new_wakes_queued_and_waits_for_active() {
        let adm = Admission::new(1, 4, Duration::from_millis(1));
        let p = adm.admit(None).unwrap();
        std::thread::scope(|s| {
            // One queued waiter that drain must wake into Shutdown.
            let waiter = s.spawn(|| adm.admit(None).map(|_| ()));
            std::thread::sleep(Duration::from_millis(10));
            let drainer = s.spawn(|| adm.drain());
            std::thread::sleep(Duration::from_millis(10));
            assert!(adm.admit(None).unwrap_err().is_shutdown());
            assert!(waiter.join().unwrap().unwrap_err().is_shutdown());
            assert!(!drainer.is_finished(), "drain waits for the permit");
            drop(p);
            drainer.join().unwrap();
        });
        assert!(adm.is_draining());
    }
}
