//! Smoke tests for the `wal-dump` inspector binary: point it at a real
//! durability directory (and at deliberately damaged copies) and check
//! it reports rather than panics.

use hippo_cqa::prelude::*;
use hippo_engine::{Database, Value};
use hippo_server::{DurabilityConfig, Engine, EngineConfig, WriteOp};
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hippo-dump-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn populated_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    let spec = FdTableSpec::new("t", 60, 0.05, 7);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    let hippo = Hippo::with_options(db, vec![spec.fd()], HippoOptions::full()).unwrap();
    let eng = Engine::new_durable(
        hippo,
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.clone(),
            checkpoint_every_frames: 0,
        },
    )
    .unwrap();
    eng.write(vec![WriteOp::Insert {
        table: "t".into(),
        rows: vec![vec![Value::Int(1_000_000), Value::Int(5), Value::Int(0)]],
    }])
    .unwrap();
    eng.write(vec![WriteOp::Insert {
        table: "t".into(),
        rows: vec![
            vec![Value::Int(2_000_000), Value::Int(1), Value::Int(0)],
            vec![Value::Int(2_000_000), Value::Int(2), Value::Int(0)],
        ],
    }])
    .unwrap();
    drop(eng);
    dir
}

fn dump(arg: &std::path::Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_wal-dump"))
        .arg(arg)
        .output()
        .expect("run wal-dump");
    assert!(out.status.success(), "wal-dump exited nonzero: {out:?}");
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn dumps_a_live_directory() {
    let dir = populated_dir("live");
    let text = dump(&dir);
    assert!(text.contains("last_lsn=0"), "birth checkpoint: {text}");
    assert!(text.contains("table t:"), "{text}");
    assert!(text.contains("frame lsn=1 kind=Commit crc=ok"), "{text}");
    assert!(text.contains("frame lsn=2 kind=Commit crc=ok"), "{text}");
    assert!(
        text.contains("ops=1 (ins=1 del=0 upd=0) tuples=2"),
        "{text}"
    );
    assert!(text.contains("2 intact frames, clean tail"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reports_damage_instead_of_panicking() {
    let dir = populated_dir("damaged");
    let wal = dir.join("wal.bin");
    let mut bytes = std::fs::read(&wal).unwrap();

    // Torn tail: drop the last 3 bytes.
    let torn = dir.join("torn.bin");
    std::fs::write(&torn, &bytes[..bytes.len() - 3]).unwrap();
    let text = dump(&torn);
    assert!(text.contains("frame lsn=1"), "{text}");
    assert!(text.contains("torn tail"), "{text}");

    // Flipped byte inside the last frame: crc catches it.
    let n = bytes.len();
    bytes[n - 2] ^= 0xFF;
    let corrupt = dir.join("corrupt.bin");
    std::fs::write(&corrupt, &bytes).unwrap();
    let text = dump(&corrupt);
    assert!(text.contains("corrupt @"), "{text}");

    // A corrupt checkpoint is an answer, not a crash.
    let ck = dir.join("checkpoint.bin");
    let mut cbytes = std::fs::read(&ck).unwrap();
    let m = cbytes.len();
    cbytes[m / 2] ^= 0xFF;
    std::fs::write(&ck, &cbytes).unwrap();
    let text = dump(&dir);
    assert!(text.contains("CORRUPT:"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}
