//! Integration tests for the durability subsystem: WAL + checkpoint +
//! recovery wired through the service engine.
//!
//! The recurring shape: run writes against a durable engine, *drop it*
//! (or fail it with an injected fault first), recover a successor from
//! the same directory, and demand the successor's consistent answers
//! are **bit-identical** to a serial oracle built from scratch on the
//! data the committed writes describe.

use hippo_cqa::budget::{FaultKind, FaultPlan};
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Row, Value};
use hippo_server::{DurabilityConfig, Engine, EngineConfig, WriteOp};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hippo-dur-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Seeded FD workload `t(k, v, payload)` with `k -> v` violated on 5%
/// of keys — the same family the service-layer tests use.
fn workload(rows: usize, seed: u64) -> (Database, Vec<DenialConstraint>) {
    let spec = FdTableSpec::new("t", rows, 0.05, seed);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    (db, vec![spec.fd()])
}

fn durable_engine(rows: usize, seed: u64, dir: &Path, every: u64) -> Engine {
    let (db, cons) = workload(rows, seed);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    Engine::new_durable(
        hippo,
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.to_path_buf(),
            checkpoint_every_frames: every,
        },
    )
    .unwrap()
}

fn recover_engine(seed: u64, dir: &Path) -> Engine {
    let (_, cons) = workload(1, seed);
    Engine::recover(
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.to_path_buf(),
            checkpoint_every_frames: 0,
        },
        cons,
        Vec::new(),
        HippoOptions::full(),
    )
    .unwrap()
}

fn query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

fn clean_row(k: i64) -> Vec<Row> {
    vec![vec![Value::Int(k), Value::Int(5), Value::Int(0)]]
}

fn conflict_pair(key: i64) -> Vec<Row> {
    vec![
        vec![Value::Int(key), Value::Int(1), Value::Int(0)],
        vec![Value::Int(key), Value::Int(2), Value::Int(0)],
    ]
}

fn insert(rows: Vec<Row>) -> WriteOp {
    WriteOp::Insert {
        table: "t".into(),
        rows,
    }
}

/// Serial oracle: a from-scratch Hippo over `db` after applying `ops`
/// through the same recorded-write API.
fn oracle_answers(rows: usize, seed: u64, ops: &[WriteOp]) -> Vec<Row> {
    let (db, cons) = workload(rows, seed);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    for op in ops {
        match op {
            WriteOp::Insert { table, rows } => {
                hippo.insert_tuples(table, rows.clone()).unwrap();
            }
            WriteOp::Delete { table, tids } => {
                hippo.delete_tuples(table, tids).unwrap();
            }
            WriteOp::Update { table, updates } => {
                hippo.update_tuples(table, updates.clone()).unwrap();
            }
        }
    }
    hippo.redetect().unwrap();
    hippo.consistent_answers(&query()).unwrap()
}

// ---------------------------------------------------------------------
// Happy path: a restart loses nothing.
// ---------------------------------------------------------------------

#[test]
fn recovery_is_bit_identical_after_clean_shutdown() {
    let dir = tmp_dir("clean");
    let committed: Vec<WriteOp> = vec![
        insert(conflict_pair(1_000_000)),
        insert(clean_row(2_000_000)),
    ];
    {
        let eng = durable_engine(400, 11, &dir, 0);
        let r1 = eng.write(vec![committed[0].clone()]).unwrap();
        assert_eq!(r1.epoch, 1);
        // Exercise delete + update through the log too.
        let tids = eng
            .write(vec![insert(clean_row(3_000_000))])
            .unwrap()
            .inserted;
        eng.write(vec![
            WriteOp::Update {
                table: "t".into(),
                updates: vec![(
                    tids[0],
                    vec![Value::Int(3_000_000), Value::Int(9), Value::Int(1)],
                )],
            },
            WriteOp::Delete {
                table: "t".into(),
                tids,
            },
        ])
        .unwrap();
        eng.write(vec![committed[1].clone()]).unwrap();
        assert!(eng.stats().durable);
        assert_eq!(eng.stats().wal_frames, 4);
    }
    let eng2 = recover_engine(11, &dir);
    let report = eng2.recovery_report().unwrap();
    assert_eq!(report.frames_replayed, 4);
    assert!(!report.torn_tail_truncated);
    let mut s = eng2.session();
    assert_eq!(s.epoch().id(), 1, "recovery publishes epoch 1");
    let got = s.consistent_answers(&query()).unwrap();
    // The update+delete pair cancels out: the oracle only needs the
    // two surviving inserts (ids differ, answers — row sets — do not).
    assert_eq!(got, oracle_answers(400, 11, &committed));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Fault matrix: every durability fault point, every kind. The writer
// survives in-process (rebuilt from the published epoch), the failed
// write is never recovered, later writes are.
// ---------------------------------------------------------------------

#[test]
fn wal_fault_matrix_loses_only_the_faulted_write() {
    for (stage, kind) in [
        ("wal:append", FaultKind::Panic),
        ("wal:append", FaultKind::BudgetTrip),
        ("wal:append", FaultKind::ShortWrite),
        ("wal:fsync", FaultKind::Panic),
        ("wal:fsync", FaultKind::BudgetTrip),
    ] {
        let dir = tmp_dir(&format!("matrix-{}-{kind:?}", stage.replace(':', "-")));
        let eng = durable_engine(300, 23, &dir, 0);
        eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();

        eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
            stage,
            Some(0),
            kind,
        )));
        let err = eng.write(vec![insert(clean_row(2_000_000))]).unwrap_err();
        assert!(
            err.is_worker_panic() || err.is_budget() || err.message.contains("short write"),
            "{stage}/{kind:?}: {err}"
        );
        assert_eq!(eng.stats().writer_recoveries, 1, "{stage}/{kind:?}");
        assert_eq!(
            eng.current_epoch().id(),
            1,
            "{stage}/{kind:?}: not published"
        );

        // The rebuilt writer still works; this also truncates any
        // unsynced bytes the fault left behind.
        eng.write(vec![insert(clean_row(3_000_000))]).unwrap();
        drop(eng);

        let eng2 = recover_engine(23, &dir);
        let got = eng2.session().consistent_answers(&query()).unwrap();
        let expect = oracle_answers(
            300,
            23,
            &[
                insert(conflict_pair(1_000_000)),
                insert(clean_row(3_000_000)),
            ],
        );
        assert_eq!(got, expect, "{stage}/{kind:?}: faulted write leaked in");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn checkpoint_fault_matrix_never_loses_the_log() {
    for (stage, kind) in [
        ("checkpoint:write", FaultKind::Panic),
        ("checkpoint:write", FaultKind::BudgetTrip),
        ("checkpoint:write", FaultKind::ShortWrite),
        ("checkpoint:swap", FaultKind::Panic),
        ("checkpoint:swap", FaultKind::BudgetTrip),
    ] {
        let dir = tmp_dir(&format!("ckpt-{}-{kind:?}", stage.replace(':', "-")));
        let eng = durable_engine(300, 29, &dir, 0);
        eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();

        eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
            stage,
            Some(0),
            kind,
        )));
        eng.checkpoint().unwrap_err();
        assert_eq!(eng.stats().checkpoint_failures, 1, "{stage}/{kind:?}");
        assert_eq!(eng.stats().checkpoints, 0);

        // A failed checkpoint is non-fatal: the birth checkpoint and
        // the full log still reconstruct everything.
        eng.write(vec![insert(clean_row(3_000_000))]).unwrap();
        drop(eng);
        let eng2 = recover_engine(29, &dir);
        assert_eq!(eng2.recovery_report().unwrap().frames_replayed, 2);
        let got = eng2.session().consistent_answers(&query()).unwrap();
        let expect = oracle_answers(
            300,
            29,
            &[
                insert(conflict_pair(1_000_000)),
                insert(clean_row(3_000_000)),
            ],
        );
        assert_eq!(got, expect, "{stage}/{kind:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn checkpoint_truncates_log_and_recovery_uses_it() {
    let dir = tmp_dir("ckpt-truncate");
    {
        // Cadence 2: the second commit frame triggers a checkpoint.
        let eng = durable_engine(300, 31, &dir, 2);
        eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
        eng.write(vec![insert(clean_row(2_000_000))]).unwrap();
        assert_eq!(eng.stats().checkpoints, 1);
        eng.write(vec![insert(clean_row(3_000_000))]).unwrap();
    }
    let eng2 = recover_engine(31, &dir);
    let report = eng2.recovery_report().unwrap();
    assert_eq!(
        report.checkpoint_lsn, 2,
        "checkpoint absorbed the first two frames"
    );
    assert_eq!(report.frames_replayed, 1, "only the post-checkpoint suffix");
    let got = eng2.session().consistent_answers(&query()).unwrap();
    let expect = oracle_answers(
        300,
        31,
        &[
            insert(conflict_pair(1_000_000)),
            insert(clean_row(2_000_000)),
            insert(clean_row(3_000_000)),
        ],
    );
    assert_eq!(got, expect);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Ambiguous commits: a complete, fsync-interrupted frame on disk is
// resolved FORWARD by recovery (the client never got a receipt, but
// the data is provably intact — standard WAL semantics).
// ---------------------------------------------------------------------

#[test]
fn fsync_panic_with_immediate_death_resolves_forward() {
    let dir = tmp_dir("ambiguous");
    {
        let eng = durable_engine(300, 37, &dir, 0);
        eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
        eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
            "wal:fsync",
            Some(0),
            FaultKind::Panic,
        )));
        eng.write(vec![insert(clean_row(2_000_000))]).unwrap_err();
        // Engine dropped right here: the frame's bytes were written
        // (CRC-complete) but never acknowledged.
    }
    let eng2 = recover_engine(37, &dir);
    let got = eng2.session().consistent_answers(&query()).unwrap();
    let expect = oracle_answers(
        300,
        37,
        &[
            insert(conflict_pair(1_000_000)),
            insert(clean_row(2_000_000)),
        ],
    );
    assert_eq!(got, expect, "complete on-disk frame replays forward");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Durable engines do NOT ride along failed writes (they rebuild), in
// contrast to the non-durable poison-and-carry semantics.
// ---------------------------------------------------------------------

#[test]
fn durable_failed_writes_never_ride_along() {
    let dir = tmp_dir("noride");
    let eng = durable_engine(300, 41, &dir, 0);
    let before = eng.session().consistent_answers(&query()).unwrap();

    // First op lands, second op fails → partial transaction. A durable
    // writer must roll the first op back out of the live state.
    let err = eng
        .write(vec![
            insert(clean_row(5_000_000)),
            WriteOp::Insert {
                table: "no_such_table".into(),
                rows: clean_row(1),
            },
        ])
        .unwrap_err();
    assert!(err.message.contains("no_such_table"), "{err}");

    assert_eq!(
        eng.stats().writer_recoveries,
        1,
        "partial apply forced a rebuild from the published epoch"
    );
    let receipt = eng.write(vec![insert(clean_row(6_000_000))]).unwrap();
    assert_eq!(receipt.epoch, 1, "the failed write consumed no epoch");
    let after = eng.session().consistent_answers(&query()).unwrap();
    assert_eq!(
        after.len(),
        before.len() + 1,
        "only the successful write's tuple appears — no ride-along"
    );
    drop(eng);
    let eng2 = recover_engine(41, &dir);
    let got = eng2.session().consistent_answers(&query()).unwrap();
    assert_eq!(got, after, "recovery agrees with the live engine");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Locking: double-open refused with a structured error; pinned
// sessions on the dead engine keep answering while a successor
// recovers from the same directory.
// ---------------------------------------------------------------------

#[test]
fn double_open_is_refused_with_structured_error() {
    let dir = tmp_dir("lock");
    let eng = durable_engine(200, 43, &dir, 0);
    let (db, cons) = workload(200, 43);
    let hippo = Hippo::with_options(db, cons.clone(), HippoOptions::full()).unwrap();
    let err = Engine::new_durable(
        hippo,
        EngineConfig::default(),
        DurabilityConfig::new(dir.clone()),
    )
    .err()
    .expect("second open must be refused");
    assert!(err.is_locked(), "{err}");
    let err = Engine::recover(
        EngineConfig::default(),
        DurabilityConfig::new(dir.clone()),
        cons,
        Vec::new(),
        HippoOptions::full(),
    )
    .err()
    .expect("recover on a locked dir must be refused");
    assert!(err.is_locked(), "{err}");
    drop(eng);
    // The lock dies with the engine; recovery now proceeds.
    let _eng2 = recover_engine(43, &dir);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pinned_sessions_outlive_the_engine_while_a_successor_recovers() {
    let dir = tmp_dir("pinned");
    let eng = durable_engine(300, 47, &dir, 0);
    eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
    let mut pinned = eng.session();
    let before = pinned.consistent_answers(&query()).unwrap();

    // Drop every Engine clone: the dir lock releases, but the session
    // holds the epoch alive.
    drop(eng);
    let eng2 = recover_engine(47, &dir);
    let successor = eng2.session().consistent_answers(&query()).unwrap();

    // The old session still answers, bit-identically, from its pinned
    // epoch — no file-lock deadlock, no interference.
    assert_eq!(pinned.consistent_answers(&query()).unwrap(), before);
    assert_eq!(successor, before);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Drain: abandoned writes are counted and logged as audit frames.
// ---------------------------------------------------------------------

#[test]
fn drained_writes_are_counted_and_audited() {
    let dir = tmp_dir("drain");
    {
        let eng = durable_engine(300, 53, &dir, 0);
        eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
        assert_eq!(eng.drain(), 0, "nothing abandoned yet");
        let err = eng.write(vec![insert(clean_row(2_000_000))]).unwrap_err();
        assert!(err.is_shutdown(), "{err}");
        // The second drain flushes the straggler into an audit frame.
        assert_eq!(eng.drain(), 1);
        assert_eq!(eng.stats().writes_abandoned, 1);
    }
    let eng2 = recover_engine(53, &dir);
    let report = eng2.recovery_report().unwrap();
    assert_eq!(
        report.abandoned_skipped, 1,
        "audit frame seen, not replayed"
    );
    let got = eng2.session().consistent_answers(&query()).unwrap();
    assert_eq!(
        got,
        oracle_answers(300, 53, &[insert(conflict_pair(1_000_000))]),
        "abandoned ops never reach the data"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Group commit.
// ---------------------------------------------------------------------

#[test]
fn write_group_shares_one_fsync_and_one_epoch() {
    let dir = tmp_dir("group");
    let committed: Vec<WriteOp> = (0..4).map(|i| insert(clean_row(4_000_000 + i))).collect();
    {
        let eng = durable_engine(300, 59, &dir, 0);
        let results = eng.write_group(committed.iter().cloned().map(|op| vec![op]).collect());
        let receipts: Vec<_> = results.unwrap().into_iter().map(Result::unwrap).collect();
        assert_eq!(receipts.len(), 4);
        assert!(
            receipts.iter().all(|r| r.epoch == receipts[0].epoch),
            "one epoch for the whole group"
        );
        let stats = eng.stats();
        assert_eq!(stats.wal_frames, 4, "one frame per transaction");
        assert_eq!(stats.wal_fsyncs, 1, "ONE fsync for the whole group");
        assert_eq!(stats.group_commits, 1);
        assert_eq!(stats.grouped_writes, 4);
        assert_eq!(stats.epochs_published, 2, "startup + one group publish");
        assert_eq!(stats.writes_applied, 4);
    }
    let eng2 = recover_engine(59, &dir);
    assert_eq!(eng2.recovery_report().unwrap().frames_replayed, 4);
    let got = eng2.session().consistent_answers(&query()).unwrap();
    assert_eq!(got, oracle_answers(300, 59, &committed));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_transaction_fails_alone_in_its_group() {
    let dir = tmp_dir("group-bad");
    {
        let eng = durable_engine(300, 61, &dir, 0);
        let results = eng
            .write_group(vec![
                vec![insert(clean_row(4_000_000))],
                vec![WriteOp::Insert {
                    table: "no_such_table".into(),
                    rows: clean_row(1),
                }],
                vec![insert(clean_row(4_000_001))],
            ])
            .unwrap();
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(
            results[0].as_ref().unwrap().epoch,
            results[2].as_ref().unwrap().epoch,
            "survivors commit together"
        );
        assert_eq!(eng.stats().writer_recoveries, 1);
    }
    let eng2 = recover_engine(61, &dir);
    let got = eng2.session().consistent_answers(&query()).unwrap();
    let expect = oracle_answers(
        300,
        61,
        &[insert(clean_row(4_000_000)), insert(clean_row(4_000_001))],
    );
    assert_eq!(got, expect);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_writers_all_commit_and_recover() {
    let dir = tmp_dir("concurrent");
    {
        let eng = durable_engine(300, 67, &dir, 0);
        std::thread::scope(|scope| {
            for i in 0..6i64 {
                let eng = eng.clone();
                scope.spawn(move || {
                    eng.write(vec![insert(clean_row(7_000_000 + i))]).unwrap();
                });
            }
        });
        let stats = eng.stats();
        assert_eq!(stats.wal_frames, 6);
        assert!(
            stats.wal_fsyncs <= stats.wal_frames,
            "groups never need more fsyncs than frames: {stats}"
        );
    }
    let eng2 = recover_engine(67, &dir);
    let committed: Vec<WriteOp> = (0..6).map(|i| insert(clean_row(7_000_000 + i))).collect();
    let got = eng2.session().consistent_answers(&query()).unwrap();
    assert_eq!(got, oracle_answers(300, 67, &committed));
    std::fs::remove_dir_all(&dir).unwrap();
}
