//! Integration tests for the concurrent CQA service layer: epoch
//! pinning, publish-only-on-success under injected writer faults,
//! admission shedding + retry, deadline propagation through the queue
//! into the answer pipeline, and graceful drain.

use hippo_cqa::budget::{FaultKind, FaultPlan};
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Row, Value};
use hippo_server::{Engine, EngineConfig, RetryPolicy, WriteOp};
use std::time::{Duration, Instant};

/// Seeded FD workload `t(k, v, payload)` with `k -> v` violated on 5%
/// of keys — the same family the core governance tests use.
fn workload(rows: usize, seed: u64) -> (Database, Vec<DenialConstraint>) {
    let spec = FdTableSpec::new("t", rows, 0.05, seed);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    (db, vec![spec.fd()])
}

fn engine(rows: usize, seed: u64, config: EngineConfig) -> Engine {
    let (db, cons) = workload(rows, seed);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    Engine::new(hippo, config).unwrap()
}

/// Projection-free difference query keeping every base tuple a prover
/// candidate.
fn query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

/// A fresh `k -> v` violation pair (two rows, same key, different v)
/// with keys far outside the generated workload's range.
fn conflict_pair(key: i64) -> Vec<Row> {
    vec![
        vec![Value::Int(key), Value::Int(1), Value::Int(0)],
        vec![Value::Int(key), Value::Int(2), Value::Int(0)],
    ]
}

// ---------------------------------------------------------------------
// Epoch pinning: a session keeps its answers across later publishes.
// ---------------------------------------------------------------------

#[test]
fn sessions_pin_epochs_across_writes() {
    let eng = engine(600, 3, EngineConfig::default());
    let mut pinned = eng.session();
    assert_eq!(pinned.epoch().id(), 0);
    let before = pinned.consistent_answers(&query()).unwrap();

    let receipt = eng
        .write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: conflict_pair(1_000_000),
        }])
        .unwrap();
    assert_eq!(receipt.epoch, 1);
    assert_eq!(receipt.inserted.len(), 2);

    // The pinned session still answers from epoch 0, bit-identically.
    assert_eq!(pinned.consistent_answers(&query()).unwrap(), before);
    assert_eq!(pinned.stats().pinned_epoch, 0);

    // A refreshed session sees epoch 1, whose conflict hypergraph has
    // absorbed the new violation: neither fresh tuple is consistent,
    // so the answer set is unchanged — but a *clean* insert is.
    pinned.refresh();
    assert_eq!(pinned.epoch().id(), 1);
    let eng2 = eng.clone();
    let receipt = eng2
        .write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: vec![vec![Value::Int(2_000_000), Value::Int(5), Value::Int(0)]],
        }])
        .unwrap();
    assert_eq!(receipt.epoch, 2);
    let mut fresh = eng.session();
    let after = fresh.consistent_answers(&query()).unwrap();
    assert_eq!(after.len(), before.len() + 1, "clean tuple is an answer");
}

// ---------------------------------------------------------------------
// Serial-oracle equivalence: an epoch's answers equal a from-scratch
// Hippo built on that epoch's own catalog.
// ---------------------------------------------------------------------

#[test]
fn epoch_answers_match_a_from_scratch_oracle() {
    let eng = engine(500, 17, EngineConfig::default());
    let (_, cons) = workload(1, 17);
    for round in 0..3u64 {
        eng.write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: conflict_pair(3_000_000 + round as i64),
        }])
        .unwrap();
        let mut session = eng.session();
        let got = session.consistent_answers(&query()).unwrap();
        let oracle_db = Database::from_catalog(session.epoch().frozen().catalog().clone());
        let oracle = Hippo::with_options(
            oracle_db,
            cons.clone(),
            HippoOptions::full().with_prover_threads(1),
        )
        .unwrap();
        assert_eq!(
            got,
            oracle.consistent_answers(&query()).unwrap(),
            "epoch {} diverged from its serial oracle",
            session.epoch().id()
        );
    }
}

// ---------------------------------------------------------------------
// Robustness headline: a panicking or budget-tripped write never
// replaces the published epoch.
// ---------------------------------------------------------------------

#[test]
fn writer_panic_never_publishes_and_recovers() {
    let eng = engine(400, 7, EngineConfig::default());
    let mut session = eng.session();
    let before = session.consistent_answers(&query()).unwrap();

    eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
        "detect",
        Some(0),
        FaultKind::Panic,
    )));
    let err = eng
        .write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: vec![vec![Value::Int(4_000_000), Value::Int(5), Value::Int(0)]],
        }])
        .unwrap_err();
    assert!(err.is_worker_panic(), "{err}");

    // Nothing was published: readers still see epoch 0, old and new
    // sessions alike, and the recovery is counted.
    assert_eq!(eng.current_epoch().id(), 0);
    assert_eq!(session.consistent_answers(&query()).unwrap(), before);
    let stats = eng.stats();
    assert_eq!(stats.writer_recoveries, 1);
    assert_eq!(stats.epochs_published, 1);

    // The writer stays usable: the next successful write reconciles
    // from scratch and publishes everything, including the data the
    // failed transaction had already applied.
    eng.set_writer_options(HippoOptions::full());
    let receipt = eng
        .write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: vec![vec![Value::Int(4_000_001), Value::Int(6), Value::Int(0)]],
        }])
        .unwrap();
    assert_eq!(receipt.epoch, 1);
    session.refresh();
    let after = session.consistent_answers(&query()).unwrap();
    assert_eq!(
        after.len(),
        before.len() + 2,
        "both clean tuples (failed write's and successful write's) are answers"
    );
}

#[test]
fn budget_tripped_write_never_publishes_and_recovers() {
    let eng = engine(400, 9, EngineConfig::default());
    eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
        "detect",
        None,
        FaultKind::BudgetTrip,
    )));
    let err = eng
        .write(vec![WriteOp::Insert {
            table: "t".into(),
            rows: conflict_pair(5_000_000),
        }])
        .unwrap_err();
    assert!(err.is_budget(), "{err}");
    assert_eq!(eng.current_epoch().id(), 0);
    assert_eq!(eng.stats().writer_recoveries, 1);

    eng.set_writer_options(HippoOptions::full());
    assert_eq!(eng.write(vec![]).unwrap().epoch, 1);
    assert_eq!(eng.current_epoch().writes_applied(), 1);
}

// ---------------------------------------------------------------------
// Admission: shedding under load, and retry riding the hint.
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_immediately_and_retry_recovers() {
    let eng = engine(
        300,
        21,
        EngineConfig {
            max_active: 1,
            max_queue: 0,
            retry_after: Duration::from_millis(2),
            default_deadline: None,
        },
    );

    // Occupy the only slot with a write whose redetect dawdles.
    eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
        "detect",
        None,
        FaultKind::Delay(Duration::from_millis(150)),
    )));
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            eng.write(vec![WriteOp::Insert {
                table: "t".into(),
                rows: vec![vec![Value::Int(6_000_000), Value::Int(5), Value::Int(0)]],
            }])
        });
        std::thread::sleep(Duration::from_millis(40));

        // Queue capacity is zero: the reader is shed, not parked.
        let mut session = eng.session();
        let t0 = Instant::now();
        let err = session.consistent_answers(&query()).unwrap_err();
        assert!(err.is_overloaded(), "{err}");
        assert!(err.is_retryable());
        assert_eq!(err.retry_after(), Some(Duration::from_millis(2)));
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "shed is immediate"
        );

        // A retrying client rides the backoff past the slow write.
        let policy = RetryPolicy {
            max_attempts: 30,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(20),
            seed: 42,
        };
        let rows = policy
            .run(|_| session.consistent_answers(&query()))
            .unwrap();
        assert!(!rows.is_empty());
        writer.join().unwrap().unwrap();
    });
    let stats = eng.stats();
    assert!(stats.requests_shed >= 1, "{stats}");
    assert_eq!(stats.active, 0);
}

// ---------------------------------------------------------------------
// Deadlines: the request's budget covers queue wait plus execution.
// ---------------------------------------------------------------------

#[test]
fn session_deadline_propagates_into_the_pipeline() {
    let eng = engine(16_000, 84, EngineConfig::default());
    let mut session = eng.session();
    session.set_deadline(Some(Duration::from_millis(1)));
    let err = session.consistent_answers(&query()).unwrap_err();
    assert!(err.is_budget(), "{err}");
    session.set_deadline(None);
    assert!(!session.consistent_answers(&query()).unwrap().is_empty());
    assert_eq!(session.stats().requests, 2);
}

#[test]
fn queue_wait_is_charged_against_the_deadline() {
    let eng = engine(
        300,
        31,
        EngineConfig {
            max_active: 1,
            max_queue: 4,
            retry_after: Duration::from_millis(1),
            default_deadline: None,
        },
    );
    eng.set_writer_options(HippoOptions::full().with_faults(FaultPlan::new(
        "detect",
        None,
        FaultKind::Delay(Duration::from_millis(200)),
    )));
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            eng.write(vec![WriteOp::Insert {
                table: "t".into(),
                rows: vec![vec![Value::Int(8_000_000), Value::Int(5), Value::Int(0)]],
            }])
        });
        std::thread::sleep(Duration::from_millis(40));
        let mut session = eng.session();
        session.set_deadline(Some(Duration::from_millis(30)));
        let t0 = Instant::now();
        let err = session.consistent_answers(&query()).unwrap_err();
        assert!(err.is_budget(), "{err}");
        assert!(
            format!("{err}").contains("admission"),
            "tripped while queued: {err}"
        );
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "{waited:?}");
        assert!(
            waited < Duration::from_millis(150),
            "gave up at the deadline"
        );
        writer.join().unwrap().unwrap();
    });
}

// ---------------------------------------------------------------------
// Plain SQL reads ride the same epoch + admission + deadline path.
// ---------------------------------------------------------------------

#[test]
fn plain_queries_run_on_the_pinned_epoch() {
    let eng = engine(200, 5, EngineConfig::default());
    let mut session = eng.session();
    let n0 = session.query("SELECT * FROM t").unwrap().rows.len();
    eng.write(vec![WriteOp::Insert {
        table: "t".into(),
        rows: conflict_pair(7_000_000),
    }])
    .unwrap();
    assert_eq!(
        session.query("SELECT * FROM t").unwrap().rows.len(),
        n0,
        "pinned epoch is immutable"
    );
    session.refresh();
    assert_eq!(session.query("SELECT * FROM t").unwrap().rows.len(), n0 + 2);
}

// ---------------------------------------------------------------------
// Drain: structured Shutdown everywhere, nothing half-done.
// ---------------------------------------------------------------------

#[test]
fn drain_rejects_reads_and_writes_with_shutdown() {
    let eng = engine(200, 13, EngineConfig::default());
    let mut session = eng.session();
    eng.drain();
    assert!(eng.is_draining());
    let err = session.consistent_answers(&query()).unwrap_err();
    assert!(err.is_shutdown(), "{err}");
    assert!(!err.is_retryable(), "shutdown is terminal for this server");
    assert!(eng.write(vec![]).unwrap_err().is_shutdown());
    assert!(eng.stats().draining);
    // A pinned epoch outlives the drain: data already handed out stays
    // readable through the Arc even though the gate is closed.
    assert_eq!(session.epoch().id(), 0);
}

// ---------------------------------------------------------------------
// Cancellation: a second thread cancels an in-flight session call.
// ---------------------------------------------------------------------

#[test]
fn cancel_from_another_thread_is_structured_and_resettable() {
    let eng = engine(16_000, 84, EngineConfig::default());
    let mut session = eng.session();
    let handle = session.cancel_handle();
    std::thread::scope(|s| {
        let canceller = s.spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            handle.cancel();
        });
        let err = session.consistent_answers(&query()).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(err.is_retryable());
        canceller.join().unwrap();
    });
    // Cancellation is sticky until reset; after reset the same session
    // answers normally.
    let handle = session.cancel_handle();
    handle.reset();
    assert!(!session.consistent_answers(&query()).unwrap().is_empty());
}
