//! Property and exhaustive-damage tests for snapshot checkpoints —
//! the checkpoint twin of `prop_wal.rs`.
//!
//! The WAL's contract under damage is *truncate to the committed
//! prefix*; the checkpoint's is stricter. Writes are crash-atomic
//! (tmp + rename), so a `checkpoint.bin` that exists but fails its CRC
//! means external damage, and recovery must answer with a structured
//! error — never a panic, never an engine built from a half-read
//! snapshot. Three families:
//!
//! * **Torn-file exhaustion**: truncate a real checkpoint at EVERY
//!   byte offset; `Engine::recover` errors structurally each time and
//!   succeeds bit-identically once the intact file is restored.
//! * **Bit-flip property**: any single corrupted byte anywhere in the
//!   file is caught (CRC covers magic through catalog).
//! * **Torn tmp**: a `checkpoint.tmp` torn at any offset — the
//!   crash-during-write window — is ignored and recovery proceeds
//!   from the previous consistent checkpoint.

use hippo_cqa::budget::Governance;
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Row, Value};
use hippo_server::checkpoint::{read_checkpoint, write_checkpoint, CHECKPOINT_FILE};
use hippo_server::{DurabilityConfig, Engine, EngineConfig, WriteOp};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hippo-propckp-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn workload(rows: usize, seed: u64) -> (Database, Vec<DenialConstraint>) {
    let spec = FdTableSpec::new("t", rows, 0.05, seed);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    (db, vec![spec.fd()])
}

fn query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

/// A durability directory with a real checkpoint *and* a WAL suffix
/// past it, so recovery has to read both.
fn populated_dir(tag: &str, seed: u64) -> (PathBuf, Vec<Row>) {
    let dir = tmp_dir(tag);
    let (db, cons) = workload(120, seed);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let eng = Engine::new_durable(
        hippo,
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.clone(),
            checkpoint_every_frames: 0,
        },
    )
    .unwrap();
    eng.write(vec![WriteOp::Insert {
        table: "t".into(),
        rows: vec![
            vec![Value::Int(1_000_000), Value::Int(1), Value::Int(0)],
            vec![Value::Int(1_000_000), Value::Int(2), Value::Int(0)],
        ],
    }])
    .unwrap();
    // Fold the conflicting pair into the snapshot, then log one more
    // frame after it so the checkpoint is not the whole story.
    eng.checkpoint().unwrap();
    eng.write(vec![WriteOp::Insert {
        table: "t".into(),
        rows: vec![vec![Value::Int(2_000_000), Value::Int(5), Value::Int(0)]],
    }])
    .unwrap();
    let answers = eng.session().consistent_answers(&query()).unwrap();
    drop(eng);
    (dir, answers)
}

fn try_recover(dir: &Path, seed: u64) -> Result<Engine, hippo_engine::EngineError> {
    let (_, cons) = workload(1, seed);
    Engine::recover(
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.to_path_buf(),
            checkpoint_every_frames: 0,
        },
        cons,
        Vec::new(),
        HippoOptions::full(),
    )
}

// ---------------------------------------------------------------------
// Exhaustive torn checkpoint: every truncation point.
// ---------------------------------------------------------------------

/// Truncate `checkpoint.bin` at EVERY byte offset. Each damaged form
/// must produce a structured "corrupt" error from recovery (never a
/// panic, never a half-built engine), and restoring the intact bytes
/// must recover answers bit-identical to the pre-shutdown engine —
/// proving the damage probes left the rest of the directory unharmed.
#[test]
fn torn_checkpoint_at_every_byte_offset_is_structured() {
    let seed = 23;
    let (dir, want) = populated_dir("exhaustive", seed);
    let path = dir.join(CHECKPOINT_FILE);
    let intact = std::fs::read(&path).unwrap();

    for cut in 0..intact.len() {
        std::fs::write(&path, &intact[..cut]).unwrap();
        let err = match try_recover(&dir, seed) {
            Err(e) => e,
            Ok(_) => panic!("recovery accepted a checkpoint truncated at byte {cut}"),
        };
        assert!(
            err.message.contains("corrupt"),
            "cut at {cut}: unstructured error: {err}"
        );
    }

    // The probes never touched the WAL: put the real checkpoint back
    // and recovery is whole again.
    std::fs::write(&path, &intact).unwrap();
    let eng = try_recover(&dir, seed).unwrap();
    let got = eng.session().consistent_answers(&query()).unwrap();
    assert_eq!(got, want, "restored checkpoint lost data");
    drop(eng);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The crash-between-serialize-and-rename window: a torn
/// `checkpoint.tmp` next to a valid `checkpoint.bin` (every tmp
/// truncation point) must be ignored — recovery uses the previous
/// consistent snapshot.
#[test]
fn torn_tmp_file_never_shadows_the_real_checkpoint() {
    let seed = 29;
    let (dir, want) = populated_dir("torntmp", seed);
    let intact = std::fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
    let tmp = dir.join("checkpoint.tmp");

    // Probe a spread of tmp lengths (every offset would re-run full
    // recovery hundreds of times for identical code paths).
    for cut in [0, 1, 7, 8, 12, 20, intact.len() / 2, intact.len() - 1] {
        std::fs::write(&tmp, &intact[..cut]).unwrap();
        let eng = try_recover(&dir, seed)
            .unwrap_or_else(|e| panic!("torn tmp ({cut} bytes) broke recovery: {e}"));
        let got = eng.session().consistent_answers(&query()).unwrap();
        assert_eq!(got, want, "torn tmp ({cut} bytes) changed answers");
        drop(eng);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Properties: round-trip and single-byte corruption.
// ---------------------------------------------------------------------

fn sample_catalog(rows: usize) -> hippo_engine::Catalog {
    let (db, _) = workload(rows.max(1), 5);
    db.catalog().clone()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn checkpoints_round_trip(last_lsn in 0u64..1_000_000, rows in 1usize..40) {
        let dir = tmp_dir("roundtrip");
        let catalog = sample_catalog(rows);
        write_checkpoint(&dir, &catalog, last_lsn, &Governance::default()).unwrap();
        let ck = read_checkpoint(&dir).unwrap().unwrap();
        prop_assert_eq!(ck.last_lsn, last_lsn);
        let t = ck.catalog.table("t").unwrap();
        let orig = catalog.table("t").unwrap();
        prop_assert_eq!(t.len(), orig.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_flipped_byte_is_caught(flip_pick in any::<u32>(), flip_bits in 1u8..255) {
        let dir = tmp_dir("bitflip");
        write_checkpoint(&dir, &sample_catalog(10), 42, &Governance::default()).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (flip_pick as usize) % bytes.len();
        bytes[at] ^= flip_bits;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        prop_assert!(err.message.contains("corrupt"), "flip @{}: {}", at, err);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
