//! Integration tests for WAL-shipping replication: primary/replica
//! epochs over fault-injectable transports.
//!
//! The recurring shape mirrors `durability.rs`: run writes against a
//! durable primary, let a replica replay them, and demand the
//! replica's consistent answers are **bit-identical** to the
//! primary's (and, across failover, to a serial oracle) — under
//! clean streaming, injected drops/corruption/disconnects, resyncs,
//! and promotion with fencing.

use hippo_cqa::budget::{FaultKind, FaultPlan};
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Row, Value};
use hippo_server::replicate::ReplMsg;
use hippo_server::{
    ChannelTransport, DurabilityConfig, Engine, EngineConfig, Replica, ReplicaConfig, Transport,
    WriteOp,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hippo-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn workload(rows: usize, seed: u64) -> (Database, Vec<DenialConstraint>) {
    let spec = FdTableSpec::new("t", rows, 0.05, seed);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    (db, vec![spec.fd()])
}

fn durable_engine(rows: usize, seed: u64, dir: &Path, every: u64) -> Engine {
    let (db, cons) = workload(rows, seed);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    Engine::new_durable(
        hippo,
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.to_path_buf(),
            checkpoint_every_frames: every,
        },
    )
    .unwrap()
}

fn replica_config(seed: u64) -> ReplicaConfig {
    let (_, cons) = workload(1, seed);
    let mut config = ReplicaConfig::new(cons);
    config.options = HippoOptions::full();
    config.resync_after = Duration::from_millis(30);
    config
}

fn query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

fn insert(rows: Vec<Row>) -> WriteOp {
    WriteOp::Insert {
        table: "t".into(),
        rows,
    }
}

fn clean_row(k: i64) -> Vec<Row> {
    vec![vec![Value::Int(k), Value::Int(5), Value::Int(0)]]
}

fn conflict_pair(k: i64) -> Vec<Row> {
    vec![
        vec![Value::Int(k), Value::Int(1), Value::Int(0)],
        vec![Value::Int(k), Value::Int(2), Value::Int(0)],
    ]
}

/// Spin until the replica has applied everything the primary
/// committed (or fail loudly with both sides' stats).
fn wait_caught_up(primary: &Engine, replica: &Replica, deadline: Duration) {
    let start = Instant::now();
    let target = primary.replication_stats().last_lsn;
    loop {
        let st = replica.staleness();
        if st.applied_lsn >= target {
            return;
        }
        if let Some(e) = replica.broken() {
            panic!("replica broke while catching up: {e}");
        }
        if start.elapsed() > deadline {
            panic!(
                "replica never caught up to lsn {target}: primary[{}] replica[{}]",
                primary.replication_stats(),
                replica.stats()
            );
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn primary_answers(eng: &Engine) -> Vec<Row> {
    eng.session().consistent_answers(&query()).unwrap()
}

fn replica_answers(replica: &Replica) -> Vec<Row> {
    let mut s = replica.session().unwrap();
    s.consistent_answers(&query()).unwrap()
}

// ---------------------------------------------------------------------
// Clean streaming
// ---------------------------------------------------------------------

#[test]
fn replica_follows_and_answers_bit_identically() {
    let dir = tmp_dir("follow");
    let eng = durable_engine(300, 21, &dir, 0);
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(21));
    eng.attach_replica(Box::new(a)).unwrap();

    // Writes that insert (with conflicts), update and delete.
    eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
    let tids = eng
        .write(vec![insert(clean_row(2_000_000))])
        .unwrap()
        .inserted;
    eng.write(vec![
        WriteOp::Update {
            table: "t".into(),
            updates: vec![(
                tids[0],
                vec![Value::Int(2_000_000), Value::Int(9), Value::Int(1)],
            )],
        },
        WriteOp::Delete {
            table: "t".into(),
            tids,
        },
    ])
    .unwrap();

    wait_caught_up(&eng, &replica, Duration::from_secs(10));
    assert_eq!(
        replica_answers(&replica),
        primary_answers(&eng),
        "replica answers must be bit-identical to the primary's"
    );

    // Staleness is surfaced and currently ~zero.
    let st = replica.staleness();
    assert_eq!(st.lsn_lag, 0, "{st}");
    assert_eq!(st.term, eng.term());

    // Primary-side bookkeeping saw this replica.
    let ps = eng.replication_stats();
    assert_eq!(ps.replicas, 1, "{ps}");
    assert!(ps.snapshots_shipped >= 1, "fresh replica snapshots: {ps}");
    assert!(ps.acks_received >= 1, "{ps}");

    let rs = replica.stats();
    assert!(rs.has_state, "{rs}");
    assert!(!rs.broken, "{rs}");
    // The initial snapshot may absorb early frames (attach races the
    // first write), but at least one frame must have streamed.
    assert!(rs.frames_applied >= 1, "{rs}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replica_refuses_writes_with_structured_not_primary() {
    let dir = tmp_dir("notprimary");
    let eng = durable_engine(120, 5, &dir, 0);
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(5));
    eng.attach_replica(Box::new(a)).unwrap();
    eng.write(vec![insert(clean_row(1_000_000))]).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(10));

    let session = replica.session().unwrap();
    let err = session
        .write(vec![insert(clean_row(2_000_000))])
        .unwrap_err();
    assert!(err.is_not_primary(), "{err}");
    assert!(
        err.message.contains(&format!("term {}", eng.term())),
        "the error must carry the fencing term so the client knows \
         which primary generation to resubmit to: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn non_durable_engines_refuse_replicas() {
    let (db, cons) = workload(50, 3);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let eng = Engine::new(hippo, EngineConfig::default()).unwrap();
    let (a, _b) = ChannelTransport::pair();
    let err = eng.attach_replica(Box::new(a)).unwrap_err();
    assert!(err.message.contains("durable"), "{err}");
}

// ---------------------------------------------------------------------
// Resync: reconnect catches up incrementally; checkpoint-absorbed
// history forces a snapshot.
// ---------------------------------------------------------------------

#[test]
fn reconnect_resyncs_incrementally_from_the_log() {
    let dir = tmp_dir("resync");
    let eng = durable_engine(200, 31, &dir, 0); // never checkpoints
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(31));
    eng.attach_replica(Box::new(a)).unwrap();
    eng.write(vec![insert(clean_row(1_000_000))]).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(10));

    // Sever the link: dropping our end of a fresh pair is not needed —
    // arm a one-shot disconnect so the feeder dies mid-stream.
    // Simpler and deterministic: just write while attached through a
    // transport that disconnects on the next send.
    let before = replica.stats().snapshots_loaded;
    drop(eng); // feeder sees the engine gone and stops; replica keeps state

    // A successor recovers the same directory and the replica
    // re-attaches: same term? No — recovery starts a fresh hub at term
    // 1 == replica's term, same history (same log), so the sync can be
    // served incrementally from the log suffix.
    let (_, cons) = workload(1, 31);
    let eng2 = Engine::recover(
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.clone(),
            checkpoint_every_frames: 0,
        },
        cons,
        Vec::new(),
        HippoOptions::full(),
    )
    .unwrap();
    eng2.write(vec![insert(conflict_pair(2_000_000))]).unwrap();

    let (a2, b2) = ChannelTransport::pair();
    replica.attach(Box::new(b2));
    eng2.attach_replica(Box::new(a2)).unwrap();
    wait_caught_up(&eng2, &replica, Duration::from_secs(10));

    assert_eq!(replica_answers(&replica), primary_answers(&eng2));
    assert_eq!(
        replica.stats().snapshots_loaded,
        before,
        "catch-up must come from the log suffix, not a fresh snapshot: {}",
        replica.stats()
    );
    assert!(
        eng2.replication_stats().incremental_syncs >= 1,
        "{}",
        eng2.replication_stats()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_absorbed_history_forces_a_snapshot_resync() {
    let dir = tmp_dir("ckabsorb");
    // Aggressive checkpointing: every frame truncates the log.
    let eng = durable_engine(150, 41, &dir, 1);
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(41));
    eng.attach_replica(Box::new(a)).unwrap();
    eng.write(vec![insert(clean_row(1_000_000))]).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(10));
    drop(eng);

    // While the replica is detached, a successor commits more frames,
    // each immediately absorbed by a checkpoint — the log suffix the
    // replica needs is gone, so its Hello must be answered with a
    // fresh snapshot (never a silent gap).
    let (_, cons) = workload(1, 41);
    let eng2 = Engine::recover(
        EngineConfig::default(),
        DurabilityConfig {
            dir: dir.clone(),
            checkpoint_every_frames: 1,
        },
        cons,
        Vec::new(),
        HippoOptions::full(),
    )
    .unwrap();
    eng2.write(vec![insert(conflict_pair(2_000_000))]).unwrap();
    eng2.write(vec![insert(clean_row(3_000_000))]).unwrap();

    let before = replica.stats().snapshots_loaded;
    let (a2, b2) = ChannelTransport::pair();
    replica.attach(Box::new(b2));
    eng2.attach_replica(Box::new(a2)).unwrap();
    wait_caught_up(&eng2, &replica, Duration::from_secs(10));

    assert_eq!(replica_answers(&replica), primary_answers(&eng2));
    assert!(
        replica.stats().snapshots_loaded > before,
        "the absorbed suffix must force a snapshot: {}",
        replica.stats()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Chaos: injected transport faults surface as counters and resyncs,
// never as divergence.
// ---------------------------------------------------------------------

#[test]
fn injected_drop_and_corruption_heal_via_resync() {
    let dir = tmp_dir("chaos");
    let eng = durable_engine(250, 51, &dir, 0);
    let gov = HippoOptions::full()
        .with_faults(
            FaultPlan::parse("repl:drop:*:drop,repl:corrupt:*:corrupt,repl:delay:*:delay5")
                .unwrap(),
        )
        .governance();
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(51));
    eng.attach_replica(Box::new(a.with_faults(gov, 0))).unwrap();

    for i in 0..6 {
        let k = 1_000_000 + i;
        if i % 2 == 0 {
            eng.write(vec![insert(conflict_pair(k))]).unwrap();
        } else {
            eng.write(vec![insert(clean_row(k))]).unwrap();
        }
    }
    wait_caught_up(&eng, &replica, Duration::from_secs(20));

    assert_eq!(
        replica_answers(&replica),
        primary_answers(&eng),
        "dropped and corrupted frames must heal, not diverge"
    );
    let rs = replica.stats();
    assert!(!rs.broken, "{rs}");
    assert!(
        rs.msgs_corrupt >= 1,
        "the armed corruption must have been seen (and survived): {rs}"
    );
    assert!(
        rs.gaps_detected + rs.resync_requests >= 1,
        "the dropped frame must have triggered a resync: {rs}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_disconnect_is_structured_and_reattachable() {
    let dir = tmp_dir("disc");
    let eng = durable_engine(150, 61, &dir, 0);
    let gov = HippoOptions::full()
        .with_faults(FaultPlan::new(
            "repl:disconnect",
            None,
            FaultKind::Disconnect,
        ))
        .governance();
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(61));
    eng.attach_replica(Box::new(a.with_faults(gov, 0))).unwrap();

    // The first send (the sync response) trips the disconnect; the
    // feeder dies, the replica sees a structured hangup.
    eng.write(vec![insert(clean_row(1_000_000))]).unwrap();
    let start = Instant::now();
    while replica.stats().disconnects == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        replica.stats().disconnects >= 1,
        "disconnect must be observed: {}",
        replica.stats()
    );
    assert!(
        replica.broken().is_none(),
        "a disconnect never breaks state"
    );

    // Re-attach over a clean pair: full recovery of the stream.
    let (a2, b2) = ChannelTransport::pair();
    replica.attach(Box::new(b2));
    eng.attach_replica(Box::new(a2)).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(10));
    assert_eq!(replica_answers(&replica), primary_answers(&eng));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Failover: promote bumps the term; zombies are fenced.
// ---------------------------------------------------------------------

#[test]
fn promote_replays_the_committed_prefix_and_serves_writes() {
    let dir = tmp_dir("promote");
    let eng = durable_engine(300, 71, &dir, 0);
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(71));
    eng.attach_replica(Box::new(a)).unwrap();
    eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
    eng.write(vec![insert(clean_row(2_000_000))]).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(10));

    let expected = primary_answers(&eng);
    let old_term = eng.term();
    drop(eng); // the primary dies

    let promote_dir = tmp_dir("promote-new");
    let (promoted, report) = replica
        .promote(
            EngineConfig::default(),
            Some(DurabilityConfig {
                dir: promote_dir.clone(),
                checkpoint_every_frames: 0,
            }),
        )
        .unwrap();
    assert_eq!(report.term, old_term + 1);
    assert_eq!(promoted.term(), report.term);
    assert!(report.applied_lsn >= 2, "{report:?}");

    // The promoted engine answers exactly the committed prefix...
    assert_eq!(primary_answers(&promoted), expected);
    // ...and accepts writes (it is a primary now, durable in its own
    // directory, ready to host its own replicas).
    promoted.write(vec![insert(clean_row(3_000_000))]).unwrap();
    let (a2, b2) = ChannelTransport::pair();
    let second = Replica::start(Box::new(b2), replica_config(71));
    promoted.attach_replica(Box::new(a2)).unwrap();
    wait_caught_up(&promoted, &second, Duration::from_secs(10));
    assert_eq!(replica_answers(&second), primary_answers(&promoted));
    assert_eq!(second.term(), report.term);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&promote_dir).unwrap();
}

#[test]
fn zombie_primary_frames_are_fenced_on_both_sides() {
    let dir = tmp_dir("fence");
    let eng = durable_engine(150, 81, &dir, 0);
    let (a, b) = ChannelTransport::pair();
    let replica = Replica::start(Box::new(b), replica_config(81));
    eng.attach_replica(Box::new(a)).unwrap();
    eng.write(vec![insert(clean_row(1_000_000))]).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(10));
    let settled = replica_answers(&replica);

    // A higher-term heartbeat teaches the replica the cluster moved on
    // (this is what following a promoted primary does).
    let (mut ours, theirs) = ChannelTransport::pair();
    replica.attach(Box::new(theirs));
    let applied = replica.staleness().applied_lsn;
    ours.send(
        &ReplMsg::Heartbeat {
            term: eng.term() + 1,
            last_lsn: applied,
        }
        .encode(),
    )
    .unwrap();
    let start = Instant::now();
    while replica.term() <= eng.term() && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(replica.term(), eng.term() + 1, "{}", replica.stats());

    // The old primary is now a zombie: its next frames carry a stale
    // term and must be rejected...
    let fenced_before = replica.stats().frames_fenced;
    eng.write(vec![insert(conflict_pair(9_000_000))]).unwrap();
    let start = Instant::now();
    while replica.stats().frames_fenced == fenced_before
        && start.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        replica.stats().frames_fenced > fenced_before,
        "{}",
        replica.stats()
    );
    assert_eq!(
        replica_answers(&replica),
        settled,
        "fenced frames must not touch replica state"
    );

    // ...and the rejection's Ack carries the higher term, so the
    // zombie learns it is fenced and stops feeding that replica.
    let start = Instant::now();
    while eng.replication_stats().feeds_fenced == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let ps = eng.replication_stats();
    assert!(ps.feeds_fenced >= 1, "{ps}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// TCP transport end to end
// ---------------------------------------------------------------------

#[test]
fn tcp_replication_end_to_end() {
    let dir = tmp_dir("tcp");
    let eng = durable_engine(200, 91, &dir, 0);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let server = eng.serve_replication(listener).unwrap();

    let transport = hippo_server::TcpTransport::connect(&server.addr().to_string()).unwrap();
    let replica = Replica::start(Box::new(transport), replica_config(91));

    eng.write(vec![insert(conflict_pair(1_000_000))]).unwrap();
    eng.write(vec![insert(clean_row(2_000_000))]).unwrap();
    wait_caught_up(&eng, &replica, Duration::from_secs(20));

    assert_eq!(replica_answers(&replica), primary_answers(&eng));
    assert_eq!(replica.staleness().lsn_lag, 0);
    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
