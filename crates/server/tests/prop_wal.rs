//! Property and exhaustive-torn-tail tests for the write-ahead log.
//!
//! * Frame payloads round-trip through the binary op codec for random
//!   op mixes (empty batches, empty rows, audit frames without tuple
//!   ids, every `Value` variant).
//! * Decoding any truncation or corruption never panics.
//! * **Torn-tail exhaustion**: a valid multi-frame log truncated at
//!   *every* byte offset recovers exactly the frames wholly contained
//!   in the prefix — never a panic, never a half-applied frame, and
//!   the log stays appendable afterwards.

use hippo_cqa::budget::Governance;
use hippo_engine::{Row, TupleId, Value};
use hippo_server::wal::{
    decode_frame_payload, encode_frame_payload, Frame, FrameKind, Wal, WalOp, WAL_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hippo-propwal-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        Just(Value::Int(i64::MIN)),
        any::<f64>().prop_map(Value::Float),
        Just(Value::text("")),
        prop::collection::vec(97u8..123, 0..8)
            .prop_map(|b| Value::text(String::from_utf8(b).unwrap())),
    ]
    .boxed()
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..5)
}

fn arb_op() -> BoxedStrategy<WalOp> {
    let table = prop::collection::vec(97u8..123, 1..6)
        .prop_map(|b| String::from_utf8(b).unwrap())
        .boxed();
    prop_oneof![
        (
            table.clone(),
            prop::collection::vec(arb_row(), 0..4),
            any::<bool>()
        )
            .prop_map(|(table, rows, audit)| {
                let tids = if audit {
                    Vec::new() // abandoned-audit inserts carry no ids
                } else {
                    (0..rows.len()).map(|i| TupleId(i as u32)).collect()
                };
                WalOp::Insert { table, rows, tids }
            }),
        (table.clone(), prop::collection::vec(any::<u32>(), 0..5)).prop_map(|(table, ids)| {
            WalOp::Delete {
                table,
                tids: ids.into_iter().map(TupleId).collect(),
            }
        }),
        (
            table,
            prop::collection::vec((any::<u32>(), arb_row()), 0..4)
        )
            .prop_map(|(table, ups)| WalOp::Update {
                table,
                updates: ups.into_iter().map(|(i, r)| (TupleId(i), r)).collect(),
            }),
    ]
    .boxed()
}

fn rows_eq(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter().zip(y).all(|(v, w)| match (v, w) {
                    (Value::Float(p), Value::Float(q)) => p.to_bits() == q.to_bits(),
                    _ => v == w,
                })
        })
}

fn ops_eq(a: &WalOp, b: &WalOp) -> bool {
    match (a, b) {
        (
            WalOp::Insert {
                table: t1,
                rows: r1,
                tids: i1,
            },
            WalOp::Insert {
                table: t2,
                rows: r2,
                tids: i2,
            },
        ) => t1 == t2 && i1 == i2 && rows_eq(r1, r2),
        (
            WalOp::Delete {
                table: t1,
                tids: i1,
            },
            WalOp::Delete {
                table: t2,
                tids: i2,
            },
        ) => t1 == t2 && i1 == i2,
        (
            WalOp::Update {
                table: t1,
                updates: u1,
            },
            WalOp::Update {
                table: t2,
                updates: u2,
            },
        ) => {
            t1 == t2
                && u1.len() == u2.len()
                && u1.iter().zip(u2).all(|((i1, r1), (i2, r2))| {
                    i1 == i2 && rows_eq(std::slice::from_ref(r1), std::slice::from_ref(r2))
                })
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn frame_payloads_round_trip(
        ops in prop::collection::vec(arb_op(), 0..5),
        lsn in 1u64..1_000_000,
        audit in any::<bool>(),
    ) {
        let frame = Frame {
            lsn,
            kind: if audit { FrameKind::Abandoned } else { FrameKind::Commit },
            ops,
        };
        let payload = encode_frame_payload(&frame);
        let back = decode_frame_payload(&payload).unwrap();
        prop_assert_eq!(frame.lsn, back.lsn);
        prop_assert_eq!(frame.kind, back.kind);
        prop_assert_eq!(frame.ops.len(), back.ops.len());
        for (a, b) in frame.ops.iter().zip(&back.ops) {
            prop_assert!(ops_eq(a, b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn mangled_payloads_never_panic(
        ops in prop::collection::vec(arb_op(), 0..4),
        cut_pick in any::<u32>(),
        flip_pick in any::<u32>(),
        flip_bits in 1u8..255,
    ) {
        let frame = Frame { lsn: 1, kind: FrameKind::Commit, ops };
        let payload = encode_frame_payload(&frame);
        let cut = (cut_pick as usize) % (payload.len() + 1);
        let _ = decode_frame_payload(&payload[..cut]);
        if !payload.is_empty() {
            let mut bad = payload.clone();
            let at = (flip_pick as usize) % bad.len();
            bad[at] ^= flip_bits;
            let _ = decode_frame_payload(&bad);
        }
    }
}

/// The kill-safety core, exhaustively: truncate a three-frame log at
/// EVERY byte offset and reopen. Recovery must never panic, must keep
/// exactly the frames wholly inside the prefix (a torn frame never
/// half-applies), and must leave the log appendable.
#[test]
fn torn_tail_at_every_byte_offset_recovers_committed_prefix() {
    let dir = tmp_dir("exhaustive");
    let gov = Governance::default();
    let frame_ops = |k: i64| {
        vec![WalOp::Insert {
            table: "t".into(),
            rows: vec![vec![Value::Int(k), Value::text("payload")]],
            tids: vec![TupleId(k as u32)],
        }]
    };
    // Build the reference log and remember each frame's end offset.
    let mut ends = Vec::new();
    {
        let (mut wal, _) = Wal::open(&dir).unwrap();
        for k in 0..3 {
            wal.append(&[(FrameKind::Commit, frame_ops(k))], &gov)
                .unwrap();
            ends.push(wal.len());
        }
    }
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();

    let work = tmp_dir("exhaustive-work");
    for cut in 0..=bytes.len() {
        std::fs::write(work.join(WAL_FILE), &bytes[..cut]).unwrap();
        let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
        let (mut wal, scan) = Wal::open(&work).unwrap();
        assert_eq!(
            scan.frames.len(),
            expect,
            "cut at byte {cut}: wrong committed prefix"
        );
        for (i, f) in scan.frames.iter().enumerate() {
            assert_eq!(f.lsn, i as u64 + 1);
            assert_eq!(f.ops, frame_ops(i as i64));
        }
        // The truncated log must accept new appends cleanly.
        wal.append(&[(FrameKind::Commit, frame_ops(99))], &gov)
            .unwrap();
        let (_, rescan) = Wal::open(&work).unwrap();
        assert_eq!(rescan.frames.len(), expect + 1);
        assert!(!rescan.torn_tail);
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}
