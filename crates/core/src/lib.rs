//! # hippo-cqa
//!
//! The core of the **Hippo** consistent-query-answering system — a Rust
//! reproduction of *"Hippo: A System for Computing Consistent Answers to a
//! Class of SQL Queries"* (Chomicki, Marcinkowski, Staworko; EDBT 2004) and
//! the conflict-hypergraph algorithms of its companion reports.
//!
//! Given a database instance that violates its integrity constraints, a
//! **consistent answer** to a query is an answer obtained in *every
//! repair* (maximal consistent subset) of the instance. Hippo computes
//! consistent answers to **SJUD** queries under **denial constraints**
//! (functional dependencies, exclusion constraints, CHECK-style denials)
//! in polynomial time, without materialising any repair:
//!
//! 1. [`detect::detect_conflicts`] builds the in-memory
//!    [`hypergraph::ConflictHypergraph`] whose maximal independent sets
//!    are exactly the repairs;
//! 2. [`envelope::envelope`] widens the query into a candidate-producing
//!    SQL query shipped to the RDBMS backend;
//! 3. [`prover::Prover`] (HProver) decides, per candidate, whether some
//!    repair falsifies membership — via DNF over the
//!    [`formula::MembershipTemplate`] and blocking-edge search on the
//!    hypergraph;
//! 4. optimizations: [`kg`] (knowledge gathering — prefetch all membership
//!    facts in the envelope query) and [`corefilter`] (accept
//!    provably-consistent tuples without the prover).
//!
//! # Resource governance: strict vs. degraded mode
//!
//! Every consistent-answer call can be governed by a per-call
//! [`budget::Budget`] — a wall-clock deadline
//! ([`hippo::HippoOptions::with_deadline`]), a row budget
//! ([`hippo::HippoOptions::with_row_budget`]), and/or a cooperative
//! cancellation flag ([`hippo::HippoOptions::cancel_handle`]) trippable
//! from another thread. Each pipeline stage (detection, envelope
//! evaluation, core filter, membership probing, the prover shards)
//! checks the budget cooperatively at shard-loop granularity, so a
//! governed call never hangs and never panics on exhaustion.
//!
//! What happens when the budget trips depends on the mode:
//!
//! * **Strict** (default): the call returns
//!   `Err(`[`hippo_engine::EngineError`]`)` with a structured kind —
//!   [`hippo_engine::ErrorKind::Budget`]`{stage, spent, limit}` or
//!   [`hippo_engine::ErrorKind::Cancelled`]`{stage}` — naming the stage
//!   that hit the wall. Nothing partial is returned.
//! * **Degraded** ([`hippo::HippoOptions::degraded`]): the call returns
//!   `Ok(`[`budget::ConsistentAnswer`]`)` carrying the **sound subset**
//!   proved before the trip plus
//!   [`budget::Completeness::TruncatedAt`]`(stage)`. Degradation is
//!   always *sound*: every returned row is a true consistent answer
//!   (the prover only accepts candidates it fully proved; a trip during
//!   envelope/filter stages yields the empty — trivially sound — set).
//!   Conflict detection is the one stage that stays strict even in
//!   degraded mode: an incomplete conflict hypergraph would make the
//!   prover *unsound*, not merely incomplete.
//!
//! The error taxonomy ([`hippo_engine::ErrorKind`]):
//!
//! * `General` — ordinary engine/validation errors (unknown relation,
//!   arity mismatch, …);
//! * `Budget { stage, spent, limit }` — deadline or row budget
//!   exhausted, or exhaustion forced by fault injection;
//! * `Cancelled { stage }` — the call's [`budget::CancelHandle`] was
//!   tripped;
//! * `WorkerPanic { stage, shard }` — a worker panicked; the panic is
//!   contained to that call (sibling shards drain, caches stay valid,
//!   the [`hippo::Hippo`] instance remains usable).
//!
//! Deterministic fault injection for tests and CI lives in
//! [`budget::FaultPlan`] (`HIPPO_FAULT=stage:shard:kind`).
//!
//! Baselines for the paper's comparisons: [`rewrite`] (the
//! Arenas–Bertossi–Chomicki query-rewriting method), [`naive`] (repair
//! enumeration — the definitional semantics, exponential) and the
//! "delete all conflicting tuples" strawman.
//!
//! ```
//! use hippo_cqa::prelude::*;
//! use hippo_engine::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE emp (name TEXT, salary INT)").unwrap();
//! db.execute("INSERT INTO emp VALUES ('ann', 100), ('ann', 200), ('bob', 300)").unwrap();
//!
//! let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
//! let hippo = Hippo::new(db, vec![fd]).unwrap();
//!
//! let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
//! // ann's salary is in doubt; only bob's row is consistently true.
//! assert_eq!(answers, vec![vec![Value::text("bob"), Value::Int(300)]]);
//! ```

pub mod aggregate;
pub mod budget;
pub mod constraint;
pub mod corefilter;
pub mod detect;
pub mod envelope;
pub mod formula;
pub mod hippo;
pub mod hypergraph;
pub mod inclusion;
pub mod kg;
pub mod naive;
pub mod parallel;
pub mod pred;
pub mod prover;
pub mod query;
pub mod repair;
pub mod rewrite;
pub mod sql_front;
pub mod workload;

/// Convenient re-exports of the main API surface.
pub mod prelude {
    pub use crate::aggregate::{range_aggregate_fd, range_aggregate_naive, AggOp, AggRange};
    pub use crate::budget::{
        Budget, CancelHandle, Completeness, ConsistentAnswer, FaultKind, FaultPlan,
    };
    pub use crate::constraint::{AttrRef, Comparison, DenialConstraint, Term};
    pub use crate::detect::{detect_conflicts, detect_conflicts_with, DetectOptions, DetectStats};
    pub use crate::envelope::envelope;
    pub use crate::hippo::{AnswerStats, FrozenHippo, Hippo, HippoOptions, RunStats};
    pub use crate::hypergraph::{ConflictHypergraph, Fact, Vertex};
    pub use crate::inclusion::{FkIndex, ForeignKey};
    pub use crate::naive::{conflict_free_answers, naive_consistent_answers, plain_answers};
    pub use crate::pred::{CmpOp, Operand, Pred};
    pub use crate::query::SjudQuery;
    pub use crate::repair::{enumerate_repairs, is_repair};
    pub use crate::rewrite::{rewrite_query, rewritten_answers, RewriteError};
    pub use crate::sql_front::{sjud_from_sql, SqlClassError};
    pub use crate::workload::{FdTableSpec, IntegrationWorkload, JoinWorkload};
}

pub use prelude::*;
