//! The Hippo system facade: the data flow of the paper's Figure 1,
//! with the resource-governance checkpoints (`◆`) each governed call
//! passes through (see [`crate::budget`]):
//!
//! ```text
//! Query ──▶ Enveloping ──▶ Candidates(SQL) ──▶ Evaluation (RDBMS) ──▶ Prover ──▶ Answer Set
//!                              ◆ "envelope"       ◆ "corefilter"   ◆ "prover" / "membership"
//!                              └─ vectorized scans (column batches)
//!                                 when the engine's columnar store is on
//! IC, DB ──▶ Conflict Detection ──▶ Conflict Hypergraph (main memory) ──▶ Prover
//!               ◆ "detect" (always strict)
//!               └─ FD hash pass off contiguous column slices
//!                  (`ColumnStore::for_each_hash`, bit-identical shards)
//! ```
//!
//! Both SQL legs ride the engine's two-engine executor (PR 10): the
//! envelope/KG evaluation and base-mode membership probes vectorize
//! when their plan shapes are eligible, and the FD detector's Phase A
//! hashes LHS projections straight off the typed column slices —
//! answers and every stats counter stay bit-identical either way
//! (`HIPPO_COLUMNAR=0` forces row mode).
//!
//! A checkpoint is a no-op unless the call's [`HippoOptions`] configure
//! a deadline, row budget, cancellation handle or fault plan. When one
//! trips, strict mode (the default) returns a structured
//! [`EngineError`] naming the stage; degraded mode
//! ([`HippoOptions::degraded`]) returns the sound subset proved so far,
//! marked [`Completeness::TruncatedAt`] — except during detection,
//! which is always strict (an incomplete conflict hypergraph would make
//! every later prover verdict unsound, so there is no sound partial
//! answer to fall back on).
//!
//! [`Hippo::new`] performs conflict detection once; each
//! [`Hippo::consistent_answers`] run envelopes the query, evaluates the
//! candidates on the SQL backend, and filters them through the Prover.
//! [`HippoOptions`] selects the optimization level:
//!
//! * **base** — the prover issues one SQL membership query per literal
//!   check (the costly behaviour the paper describes);
//! * **knowledge gathering** — the envelope is extended to prefetch every
//!   membership flag; zero membership queries;
//! * **core filter** — additionally, tuples provably consistent from the
//!   conflict-free core skip the prover.
//!
//! # The shard → merge answer pipeline
//!
//! Candidate decisions are independent of each other — each depends
//! only on the candidate's conflict neighbourhood — so the answer stage
//! mirrors detection's shard → merge design, in **every** mode:
//!
//! ```text
//!                 candidates (one envelope evaluation)  ◆ "envelope"
//!                         │ split_ranges → PROVER_SHARDS fixed slices
//!        ┌────────────┬───┴────────┬────────────┐
//!        ▼            ▼            ▼            ▼        workers:
//!   ┌─ shard 0 ─┐┌─ shard 1 ─┐        …   ┌─ shard 15 ─┐ HIPPO_PROVER_THREADS
//!   │ ◆ entry   ││           │             │            │ (panic-isolated:
//!   │ dedup     ││   (same)  │             │   (same)   │  a crash poisons
//!   │ core probe││           │             │            │  one slot, the
//!   │ flags:    ││           │             │            │  siblings drain)
//!   │  KG: rows ││           │             │            │
//!   │  base:    │→ one frozen DbSnapshot Arc, prepared ←│
//!   │  prepared │   physical probes (IndexLookup: O(1)
//!   │  probes ◆ │   hash-bucket per fact), memoized     ◆ "membership"
//!   │ sig cache ││           │             │            │
//!   │ prover  ◆ ││           │             │            │ ◆ strided tick
//!   └────┬──────┘└────┬──────┘             └────┬───────┘   per candidate
//!        └────────────┴─── merge in shard order┴──▶ answers + stats
//!                          └▶ fresh verdicts → persistent cache
//!                             (skipped if any shard failed/cancelled)
//! ```
//!
//! There is **no serial prefix beyond candidate collection**: dedup,
//! the core-filter probe, membership resolution and the prover all run
//! inside the shards. Knowledge-gathering mode reads prefetched flag
//! rows; **base mode** — the paper's canonical per-check-SQL
//! configuration — resolves its membership probes against one
//! read-only [`DbSnapshot`] shared by all workers (zero locking).
//! Each shard compiles every literal's probe **once** into a prepared
//! physical plan ([`MemoSqlMembership`]): the engine's optimizer picks
//! the access path, so on a relation with a covering hash index
//! (auto-built on key columns, or `CREATE INDEX`) a membership check
//! is an O(1) bucket probe — no SQL text, parsing or planning per
//! candidate — and per-shard memoization collapses repeated facts
//! ([`AnswerStats::index_probes`] / [`AnswerStats::scan_probes`] count
//! how the executed probes ran). Each shard owns one reusable
//! [`Prover`] workspace and a private **closure-signature cache**
//! ([`Prover::closure_signature`]): candidates whose guard outcomes,
//! membership flags and per-literal conflict facts coincide share one
//! verdict ([`AnswerStats::prover_cache_hits`]). Newly proved
//! signatures are folded, at merge time and in shard order, into a
//! **persistent per-query verdict cache** reused by later
//! `consistent_answers` calls on the same graph
//! ([`AnswerStats::prover_cache_cross_hits`]); the cache is dropped
//! whenever the graph is replaced. Shard decomposition is fixed by the
//! candidate count — answers and every [`AnswerStats`] counter are
//! bit-identical for any worker count.
//!
//! # Incremental maintenance
//!
//! Database changes made through [`Hippo::insert_tuples`] /
//! [`Hippo::delete_tuples`] / [`Hippo::update_tuples`] are *recorded*,
//! and the next [`Hippo::redetect`] reconciles the hypergraph
//! **incrementally**: edges touching deleted tuples are dropped while
//! surviving edges are carried over verbatim, and inserted tuples are
//! delta-detected (an in-place update is recorded as delete + insert
//! of the same tuple id). For FD constraints the delta probes the
//! persistent LHS-hash group index; general denials **seed** their
//! joins from the changed tuples and extend through persistent
//! per-atom join indexes (`GenIndex`) — in both cases the work is
//! proportional to the conflict graph plus the change and its join
//! matches, never the instance or the constraint's outer atom.
//! Restricted foreign keys are incremental too: a per-FK
//! **orphan-count index** ([`crate::inclusion::FkIndex`]) tracks live
//! parents per key and live children per key, so a batch flips exactly
//! the orphan edges whose parent count crossed zero. Mutating the
//! database any other way ([`Hippo::db_mut`]) marks the catalog dirty
//! and the next `redetect` falls back to a full sharded rebuild.
//!
//! # Epoch publication (the service layer's view)
//!
//! Everything the answer pipeline reads is immutable for the duration
//! of a run — the catalog snapshot, the conflict hypergraph, the
//! verdict cache `Arc` — which is exactly what a concurrent service
//! needs. [`Hippo::freeze`] packages those three into a [`FrozenHippo`]
//! (`Send + Sync`, cheap `Arc` clones) that answers queries without
//! `&Hippo`, so a single writer can keep mutating the live system while
//! readers fan out over the last published freeze:
//!
//! ```text
//! writer:  insert/delete ──▶ redetect ──▶ freeze() ──▶ publish Arc<Epoch>
//!          (recorded ops)      │ Err / panic: nothing published —
//!                              │ readers keep the previous epoch
//! readers: pin epoch ──▶ FrozenHippo::consistent_answers  (lock-free,
//!          shared verdict cache, same shard → merge pipeline as above)
//! ```
//!
//! `crates/server` builds the epoch protocol (admission control, drain,
//! retry) on top of this; the invariant enforced *here* is that a
//! freeze of a reconciled system is self-consistent — [`Hippo::freeze`]
//! refuses while recorded changes are pending — and that replacing the
//! live graph never mutates state a frozen view still references
//! (`redetect` swaps the graph and verdict-cache `Arc`s instead of
//! clearing them in place).

use crate::budget::{trip_stage, Budget, CancelHandle, Completeness, ConsistentAnswer, Governance};
use crate::constraint::DenialConstraint;
use crate::corefilter::core_filter_set_governed;
use crate::detect::{
    build_gen_index, detect_with_index, fd_delta_delete, fd_delta_insert, general_delta_insert,
    DetectIndex, DetectOptions, DetectStats,
};
use crate::envelope::envelope;
use crate::formula::MembershipTemplate;
use crate::hypergraph::{ConflictHypergraph, FactId, Vertex};
use crate::kg::{extended_envelope_sql, split_gathered, GatheredMembership, MemoSqlMembership};
use crate::parallel;
use crate::prover::{Prover, ProverRunStats};
use crate::query::SjudQuery;
use hippo_engine::{Catalog, Database, DbSnapshot, EngineError, QueryResult, Row, TupleId};
use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fixed shard count of the answer pipeline. Like detection's
/// `DEFAULT_SHARDS`, the decomposition depends only on the worklist
/// length — never on the worker count — so answer order, every
/// [`AnswerStats`] counter and the cache-hit totals are bit-identical
/// for any `HIPPO_PROVER_THREADS` setting.
pub const PROVER_SHARDS: usize = 16;

/// Optimization switches plus per-call resource governance.
#[derive(Debug, Clone, Default)]
pub struct GovernanceOptions {
    /// Wall-clock deadline per governed call.
    pub deadline: Option<Duration>,
    /// Row budget per governed call (rows materialised/visited across
    /// all stages).
    pub row_budget: Option<u64>,
    /// Degraded mode: on budget exhaustion return the sound subset
    /// proved so far (with [`crate::budget::Completeness::TruncatedAt`])
    /// instead of an error. Detection stays strict regardless — an
    /// incomplete conflict hypergraph would make the prover unsound.
    pub degraded: bool,
    /// Cancellation flag shared with callers via
    /// [`HippoOptions::cancel_handle`]; only armed (and only then does
    /// it create a budget) once that handle has been taken.
    cancel: CancelHandle,
    cancel_armed: bool,
    /// Deterministic fault injection (tests / CI only).
    faults: Option<Arc<crate::budget::FaultPlan>>,
}

/// Optimization switches.
#[derive(Debug, Clone)]
pub struct HippoOptions {
    /// Per-call resource governance (deadline, row budget, cancellation,
    /// degraded mode, fault injection). Default: ungoverned — no budget
    /// object is created and every stage runs exactly the ungoverned
    /// code path, so answers *and stats* are bit-identical to a build
    /// without governance.
    pub governance: GovernanceOptions,
    /// Prefetch membership flags in the envelope query (knowledge
    /// gathering) instead of issuing per-check SQL queries.
    pub knowledge_gathering: bool,
    /// Skip the prover for tuples caught by the core filter.
    pub core_filter: bool,
    /// Worker threads for the answer pipeline's prover stage; `0` =
    /// auto (the `HIPPO_PROVER_THREADS` environment variable if set,
    /// else available parallelism). Every mode shards: knowledge
    /// gathering reads prefetched flags, base mode issues its
    /// membership SQL against a frozen [`DbSnapshot`] shared by all
    /// workers. The thread count never affects answers or stats, only
    /// wall-clock.
    pub prover_threads: usize,
    /// Memoize prover verdicts by conflict-closure signature (see
    /// [`crate::prover::Prover::closure_signature`]); candidates whose
    /// signatures match an already-proved candidate in the same shard
    /// are decided without running the prover.
    pub prover_cache: bool,
    /// Let base mode's prepared membership probes use the engine's
    /// index access paths (`IndexLookup`); `false` forces the
    /// sequential-scan plans — answers and every other counter are
    /// identical either way (differentially tested), only
    /// [`AnswerStats::index_probes`] / [`AnswerStats::scan_probes`] and
    /// wall-clock move.
    pub index_probes: bool,
}

impl HippoOptions {
    /// Base system: no optimizations.
    pub fn base() -> Self {
        HippoOptions {
            governance: GovernanceOptions::default(),
            knowledge_gathering: false,
            core_filter: false,
            prover_threads: 0,
            prover_cache: true,
            index_probes: true,
        }
    }

    /// Knowledge gathering only.
    pub fn kg() -> Self {
        HippoOptions {
            knowledge_gathering: true,
            ..HippoOptions::base()
        }
    }

    /// Knowledge gathering + core filter (the fully optimized system).
    pub fn full() -> Self {
        HippoOptions {
            core_filter: true,
            ..HippoOptions::kg()
        }
    }

    /// Explicit prover worker count (`0` = auto).
    pub fn with_prover_threads(mut self, threads: usize) -> Self {
        self.prover_threads = threads;
        self
    }

    /// Disable the closure-signature verdict cache (every candidate
    /// reaching the prover stage is proved from scratch; used by the
    /// differential tests and the cache-ablation experiments).
    pub fn without_prover_cache(mut self) -> Self {
        self.prover_cache = false;
        self
    }

    /// Force base mode's membership probes onto sequential-scan plans
    /// (the pre-optimizer access path; used by the differential tests
    /// and the E11 index ablation).
    pub fn without_index_probes(mut self) -> Self {
        self.index_probes = false;
        self
    }

    /// Bound every governed call's wall-clock time. On exhaustion the
    /// call returns a structured `Budget` error (strict, the default)
    /// or the sound subset proved so far ([`HippoOptions::degraded`]).
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.governance.deadline = Some(limit);
        self
    }

    /// Bound the rows a governed call may materialise/visit across all
    /// stages (envelope evaluation, membership probes, prover loops).
    pub fn with_row_budget(mut self, rows: u64) -> Self {
        self.governance.row_budget = Some(rows);
        self
    }

    /// Degraded mode: a budget trip in the answer pipeline yields
    /// `Ok` with the sound subset proved so far and
    /// [`crate::budget::Completeness::TruncatedAt`] naming the stage,
    /// instead of an error. Conflict detection stays strict even here.
    pub fn degraded(mut self) -> Self {
        self.governance.degraded = true;
        self
    }

    /// Install a deterministic fault plan (tests / CI): the plan's
    /// fault fires **once** at its stage/shard checkpoint, then the
    /// plan is spent — later calls run clean.
    pub fn with_faults(mut self, plan: crate::budget::FaultPlan) -> Self {
        self.governance.faults = Some(Arc::new(plan));
        self
    }

    /// A handle that cancels any in-flight (or future) governed call on
    /// these options from another thread. Taking the handle arms
    /// cancellation: subsequent calls create a budget and check the
    /// flag cooperatively. The flag is sticky until
    /// [`CancelHandle::reset`].
    pub fn cancel_handle(&mut self) -> CancelHandle {
        self.governance.cancel_armed = true;
        self.governance.cancel.clone()
    }

    /// Whether the installed fault plan (if any) has fired. A plan
    /// pinned to a stage/shard checkpoint that a call never reaches
    /// stays unfired — tests use this to tell "the fault degraded the
    /// answer" apart from "the fault was never hit".
    pub fn governance_faults_fired(&self) -> bool {
        self.governance
            .faults
            .as_ref()
            .is_some_and(|p| p.has_fired())
    }

    fn resolved_prover_threads(&self) -> usize {
        if self.prover_threads == 0 {
            parallel::prover_threads()
        } else {
            self.prover_threads
        }
    }

    /// Materialise the per-call [`Governance`]. Ungoverned options
    /// (no deadline, row budget, armed cancellation or fault plan)
    /// return an inactive governance whose checks compile to no-ops —
    /// that call takes exactly the pre-governance code path. Public so
    /// service layers can hand the same budget to [`FrozenHippo`]
    /// entry points that take a raw [`Budget`].
    pub fn governance(&self) -> Governance {
        let g = &self.governance;
        let governed =
            g.deadline.is_some() || g.row_budget.is_some() || g.cancel_armed || g.faults.is_some();
        if !governed {
            return Governance::default();
        }
        let mut budget = Budget::new();
        if let Some(limit) = g.deadline {
            budget = budget.with_deadline(limit);
        }
        if let Some(rows) = g.row_budget {
            budget = budget.with_row_limit(rows);
        }
        if g.cancel_armed {
            budget = budget.with_cancel_flag(g.cancel.clone());
        }
        Governance {
            budget: Some(Arc::new(budget)),
            faults: g.faults.clone(),
            degraded: g.degraded,
        }
    }
}

impl Default for HippoOptions {
    fn default() -> Self {
        HippoOptions::full()
    }
}

/// Statistics of one consistent-query-answering run. Every counter is
/// an exact sum over the answer pipeline's shards, independent of the
/// prover worker count.
#[derive(Debug, Clone, Default)]
pub struct AnswerStats {
    /// Candidate tuples returned by the envelope.
    pub candidates: usize,
    /// Tuples accepted without the prover by the core filter.
    pub filtered_consistent: usize,
    /// Candidates reaching the prover stage (each is decided either by
    /// a prover run or by a closure-signature cache hit).
    pub prover_calls: usize,
    /// Prover-stage candidates decided from a closure-signature cache
    /// (shard-local or persistent) without running the prover.
    pub prover_cache_hits: usize,
    /// Subset of [`AnswerStats::prover_cache_hits`] served by the
    /// persistent cross-call verdict cache (signatures proved by an
    /// earlier `consistent_answers` run on the same graph).
    pub prover_cache_cross_hits: usize,
    /// Prover shards the candidate list was decomposed into (`0` when
    /// there were no candidates). Base and KG mode report this
    /// identically now that both run the sharded pipeline.
    pub shards_used: usize,
    /// Prover-internal counters.
    pub prover: ProverRunStats,
    /// Membership probes executed against the backend (base mode; memo
    /// misses only — each shard memoizes per-literal probes).
    pub membership_queries: usize,
    /// Base-mode membership checks answered from a shard's probe memo
    /// instead of an execution.
    pub membership_memo_hits: usize,
    /// Subset of [`AnswerStats::membership_queries`] that executed as
    /// O(1) `IndexLookup` access paths (the optimizer chose an index).
    pub index_probes: usize,
    /// Subset of [`AnswerStats::membership_queries`] that executed as
    /// sequential scans (no covering index, or index probes disabled).
    pub scan_probes: usize,
    /// Consistent answers produced.
    pub answers: usize,
    /// Full budget checks performed across every governed stage and
    /// shard (`0` on ungoverned calls — no budget object exists).
    pub budget_checks: u64,
    /// Prover shards that stopped early on a budget trip (degraded
    /// mode); their accepted-so-far prefix is still sound.
    pub cancelled_shards: usize,
    /// The call ran in degraded mode (whether or not it truncated).
    pub degraded: bool,
    /// Time enveloping + evaluating candidates.
    pub t_envelope: Duration,
    /// Time in the core filter.
    pub t_filter: Duration,
    /// Time proving.
    pub t_prover: Duration,
    /// Total wall-clock for the run.
    pub t_total: Duration,
}

/// Former name of [`AnswerStats`].
pub type RunStats = AnswerStats;

impl fmt::Display for AnswerStats {
    /// One-line report, symmetric across modes: shard count, cache hit
    /// rate (with the cross-call share) and the membership-probe memo
    /// rate (with its index/scan access-path split) are always printed
    /// — base mode reports its shards exactly like KG mode does.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hit_rate = if self.prover_calls > 0 {
            100.0 * self.prover_cache_hits as f64 / self.prover_calls as f64
        } else {
            0.0
        };
        let memo_rate = {
            let probes = self.membership_queries + self.membership_memo_hits;
            if probes > 0 {
                100.0 * self.membership_memo_hits as f64 / probes as f64
            } else {
                0.0
            }
        };
        write!(
            f,
            "answers={} candidates={} filtered={} prover_calls={} shards={} \
             cache_hits={} ({hit_rate:.1}% hit rate, {} cross-call) \
             membership_queries={} (memo {memo_rate:.1}%, {} index / {} scan) \
             t_total={:.3}ms",
            self.answers,
            self.candidates,
            self.filtered_consistent,
            self.prover_calls,
            self.shards_used,
            self.prover_cache_hits,
            self.prover_cache_cross_hits,
            self.membership_queries,
            self.index_probes,
            self.scan_probes,
            self.t_total.as_secs_f64() * 1e3,
        )?;
        if self.budget_checks > 0 || self.degraded {
            write!(
                f,
                " budget_checks={} cancelled_shards={}{}",
                self.budget_checks,
                self.cancelled_shards,
                if self.degraded { " degraded" } else { "" },
            )?;
        }
        Ok(())
    }
}

/// One recorded database change, awaiting reconciliation by
/// [`Hippo::redetect`].
#[derive(Debug, Clone)]
enum PendingOp {
    /// A tuple inserted through [`Hippo::insert_tuples`].
    Insert { table: String, tid: TupleId },
    /// A tuple deleted through [`Hippo::delete_tuples`]; `row` is its
    /// content as of deletion (needed to unhook the FD index and the
    /// fact table without the tuple still being readable).
    Delete {
        table: String,
        tid: TupleId,
        row: Row,
    },
}

/// The Hippo system: database + constraints + conflict hypergraph.
pub struct Hippo {
    db: Database,
    constraints: Vec<DenialConstraint>,
    /// Behind an `Arc` so [`Hippo::freeze`] can hand a frozen view to
    /// concurrent readers; redetection *replaces* the `Arc` (never
    /// mutates through it), so frozen views keep their graph.
    graph: Arc<ConflictHypergraph>,
    detect_stats: DetectStats,
    /// Restricted foreign keys (orphan edges maintained incrementally
    /// through [`Hippo::fk_indexes`], re-derived in full on
    /// [`Hippo::redetect_full`]).
    foreign_keys: Vec<crate::inclusion::ForeignKey>,
    /// Per-FK orphan-count indexes (parallel to `foreign_keys`): parent
    /// key → live parent count plus key → live child tuples, so a
    /// recorded change flips orphan edges in O(affected children)
    /// instead of forcing a full rebuild.
    fk_indexes: Vec<crate::inclusion::FkIndex>,
    /// Persistent detection state for incremental redetection; `None`
    /// only after a legacy build path that did not request it.
    detect_index: Option<DetectIndex>,
    /// Changes recorded since the last (re)detection, in order.
    pending: Vec<PendingOp>,
    /// Set by [`Hippo::db_mut`]: the database may have changed in ways
    /// the pending log does not capture, so only a full rebuild is safe.
    catalog_dirty: bool,
    /// Persistent closure-signature verdicts, shared **across**
    /// `consistent_answers` calls: each run's shards read the previous
    /// runs' verdicts lock-free (behind an `Arc` taken once at run
    /// start) and newly proved signatures are folded back in shard
    /// order during the merge phase — the lock is held only at the two
    /// ends, never while a shard works. Keyed by the query's rendering.
    /// Whenever the graph is replaced the whole `Arc` is swapped for a
    /// fresh one (a signature captures the database's influence through
    /// flags and interned fact ids, so data-only changes stay sound,
    /// but fact ids are meaningless across graphs) — frozen views
    /// ([`Hippo::freeze`]) keep the old `Arc`, which stays sound for
    /// *their* graph.
    verdict_cache: Arc<Mutex<VerdictCache>>,
    /// Options applied to subsequent runs.
    pub options: HippoOptions,
}

/// Verdicts by query rendering, then by conflict-closure signature.
/// Per-query maps sit behind `Arc`s so a running call can read one
/// without holding the registry lock.
#[derive(Debug, Default)]
struct VerdictCache {
    by_query: FxHashMap<String, Arc<FxHashMap<Vec<u64>, bool>>>,
}

/// Distinct queries cached before the registry resets (a safety valve
/// against unbounded growth under ad-hoc query streams; per-query maps
/// are bounded by the query's signature classes and need no cap).
const VERDICT_CACHE_MAX_QUERIES: usize = 64;

impl Hippo {
    /// Build the system: validates constraints and performs conflict
    /// detection (Figure 1's lower path).
    pub fn new(db: Database, constraints: Vec<DenialConstraint>) -> Result<Hippo, EngineError> {
        Hippo::with_options(db, constraints, HippoOptions::default())
    }

    /// Build with explicit options. Construction-time conflict detection
    /// runs under the options' governance (strictly — a budget trip or
    /// injected detect fault surfaces as an error even in degraded mode,
    /// since an incomplete hypergraph would make every later answer
    /// unsound).
    pub fn with_options(
        db: Database,
        constraints: Vec<DenialConstraint>,
        options: HippoOptions,
    ) -> Result<Hippo, EngineError> {
        let gov = options.governance();
        let (graph, detect_stats, index) =
            detect_with_index(db.catalog(), &constraints, &DetectOptions::default(), &gov)?;
        Ok(Hippo {
            db,
            constraints,
            graph: Arc::new(graph),
            detect_stats,
            foreign_keys: Vec::new(),
            fk_indexes: Vec::new(),
            detect_index: Some(index),
            pending: Vec::new(),
            catalog_dirty: false,
            verdict_cache: Arc::new(Mutex::new(VerdictCache::default())),
            options,
        })
    }

    /// The underlying database (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access. Mutations invalidate the hypergraph — call
    /// [`Hippo::redetect`] afterwards. Changes made through this handle
    /// are *not* recorded, so the next redetection is a full rebuild;
    /// prefer [`Hippo::insert_tuples`] / [`Hippo::delete_tuples`] for
    /// updates that should be reconciled incrementally.
    pub fn db_mut(&mut self) -> &mut Database {
        self.catalog_dirty = true;
        &mut self.db
    }

    /// Insert rows into `table`, recording them so the next
    /// [`Hippo::redetect`] can reconcile the hypergraph incrementally.
    /// Returns the new tuples' stable ids. The batch is validated
    /// up-front: a bad row rejects the whole call before anything is
    /// inserted, so `Err` means the database is unchanged.
    pub fn insert_tuples(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<TupleId>, EngineError> {
        let t = self.db.catalog_mut().table_mut(table)?;
        // Validate/coerce every row before inserting any — no
        // half-applied batches whose ids the caller never learns.
        let rows = rows
            .into_iter()
            .map(|row| t.schema.check_row(row))
            .collect::<Result<Vec<Row>, _>>()?;
        let mut tids = Vec::with_capacity(rows.len());
        for row in rows {
            // Pre-validated, so this only fails on table exhaustion;
            // recording each insert as it lands keeps the pending log
            // consistent with the database even then.
            let tid = t.insert(row)?;
            tids.push(tid);
            self.pending.push(PendingOp::Insert {
                table: table.to_string(),
                tid,
            });
        }
        Ok(tids)
    }

    /// Delete tuples from `table` by id, recording them so the next
    /// [`Hippo::redetect`] can reconcile the hypergraph incrementally.
    /// Unknown or already-deleted ids are skipped; returns the number of
    /// tuples actually deleted.
    pub fn delete_tuples(&mut self, table: &str, tids: &[TupleId]) -> Result<usize, EngineError> {
        let mut removed: Vec<(TupleId, Row)> = Vec::new();
        {
            let t = self.db.catalog_mut().table_mut(table)?;
            for &tid in tids {
                if let Some(row) = t.get(tid).cloned() {
                    t.delete(tid);
                    removed.push((tid, row));
                }
            }
        }
        let n = removed.len();
        for (tid, row) in removed {
            self.pending.push(PendingOp::Delete {
                table: table.to_string(),
                tid,
                row,
            });
        }
        Ok(n)
    }

    /// Update tuples **in place** (the tuple ids survive), recording each
    /// change as a delete of the old content plus a re-insert — so the
    /// next [`Hippo::redetect`] stays on the incremental path instead of
    /// falling back to a full rebuild (which mutating through
    /// [`Hippo::db_mut`] would force). The batch is validated up-front:
    /// an unknown tuple id or a bad row rejects the whole call before
    /// anything changes, so `Err` means the database is untouched.
    /// Returns the number of tuples updated.
    pub fn update_tuples(
        &mut self,
        table: &str,
        updates: Vec<(TupleId, Row)>,
    ) -> Result<usize, EngineError> {
        let mut replaced: Vec<(TupleId, Row)> = Vec::with_capacity(updates.len());
        {
            let t = self.db.catalog_mut().table_mut(table)?;
            let updates = updates
                .into_iter()
                .map(|(tid, row)| {
                    if t.get(tid).is_none() {
                        return Err(EngineError::new(format!(
                            "update of missing tuple {} in {table}",
                            tid.0
                        )));
                    }
                    Ok((tid, t.schema.check_row(row)?))
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            for (tid, row) in updates {
                // Pre-validated: `update` can only fail on a missing
                // tuple, which we just ruled out.
                let old = t.update(tid, row)?;
                replaced.push((tid, old));
            }
        }
        let n = replaced.len();
        for (tid, old) in replaced {
            // Delete-then-insert of the *same* tuple id: the fold in
            // `redetect_incremental` drops the old content's edges and
            // index entries via the recorded row, then delta-detects the
            // id again with its new content.
            self.pending.push(PendingOp::Delete {
                table: table.to_string(),
                tid,
                row: old,
            });
            self.pending.push(PendingOp::Insert {
                table: table.to_string(),
                tid,
            });
        }
        Ok(n)
    }

    /// Tear down the system, returning the owned database (e.g. to rebuild
    /// with different constraints).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Bring the hypergraph up to date after data changes.
    ///
    /// If every change since the last detection was recorded through
    /// [`Hippo::insert_tuples`] / [`Hippo::delete_tuples`], this takes
    /// the **incremental** path: surviving edges are carried over,
    /// deleted tuples' edges are dropped, inserted tuples are
    /// delta-detected, and foreign-key orphan edges are flipped through
    /// the per-FK orphan-count indexes — the returned stats have
    /// `incremental == true` and count only the delta work. Otherwise
    /// (the catalog was touched via [`Hippo::db_mut`]) it falls back to
    /// a full sharded rebuild. With no changes at all it returns the
    /// current stats untouched.
    pub fn redetect(&mut self) -> Result<DetectStats, EngineError> {
        if self.catalog_dirty || self.detect_index.is_none() {
            return self.redetect_full();
        }
        if self.pending.is_empty() {
            return Ok(self.detect_stats);
        }
        self.redetect_incremental()
    }

    /// Unconditionally re-run full conflict detection (including
    /// foreign-key orphan edges when configured), discarding any
    /// recorded pending changes.
    pub fn redetect_full(&mut self) -> Result<DetectStats, EngineError> {
        // Compute everything into locals first and assign only on full
        // success: a failure (or a worker panic, contained below) leaves
        // the previous graph, stats, detect index and FK indexes exactly
        // as they were — the system stays usable and `catalog_dirty`
        // still forces a fresh rebuild on the next attempt.
        let gov = self.options.governance();
        let db = &self.db;
        let constraints = &self.constraints;
        let foreign_keys = &self.foreign_keys;
        type Computed = (
            ConflictHypergraph,
            DetectStats,
            DetectIndex,
            Vec<crate::inclusion::FkIndex>,
        );
        let compute = || -> Result<Computed, EngineError> {
            if foreign_keys.is_empty() {
                let (graph, stats, index) =
                    detect_with_index(db.catalog(), constraints, &DetectOptions::default(), &gov)?;
                Ok((graph, stats, index, Vec::new()))
            } else {
                let start = Instant::now();
                let (mut graph, mut stats, index) =
                    crate::detect::detect_unfinalized_with_index(db.catalog(), constraints, &gov)?;
                let mut fk_indexes = Vec::with_capacity(foreign_keys.len());
                for (i, fk) in foreign_keys.iter().enumerate() {
                    let added = crate::inclusion::orphan_edges(
                        &mut graph,
                        db.catalog(),
                        fk,
                        constraints.len() + i,
                    )?;
                    stats.edges_emitted += added;
                    fk_indexes.push(crate::inclusion::FkIndex::build(db.catalog(), fk)?);
                }
                graph.finalize();
                stats.elapsed = start.elapsed();
                Ok((graph, stats, index, fk_indexes))
            }
        };
        let (graph, stats, index, fk_indexes) = std::panic::catch_unwind(
            std::panic::AssertUnwindSafe(compute),
        )
        .map_err(|payload| {
            EngineError::worker_panic("detect", 0, &parallel::panic_message(payload.as_ref()))
        })??;
        self.graph = Arc::new(graph);
        self.detect_stats = stats;
        self.detect_index = Some(index);
        self.fk_indexes = fk_indexes;
        self.pending.clear();
        self.catalog_dirty = false;
        self.invalidate_verdicts();
        Ok(self.detect_stats)
    }

    /// Drop all cross-call verdicts: signatures embed interned fact ids,
    /// which are meaningless once the graph is replaced. (Data-only
    /// changes keep the cache sound — a candidate's signature captures
    /// the database's influence through its membership flags.) The
    /// whole `Arc` is swapped rather than the map cleared in place:
    /// frozen views ([`Hippo::freeze`]) still hold the old `Arc`, and
    /// their verdicts stay valid for the graph they were proved on.
    fn invalidate_verdicts(&mut self) {
        self.verdict_cache = Arc::new(Mutex::new(VerdictCache::default()));
    }

    /// Drop the persistent cross-call verdict cache through a shared
    /// handle. Verdicts re-accumulate on the next run; answers never
    /// change. For callers that want every `consistent_answers` call
    /// measured (or bounded) cold — benchmarks clear between
    /// iterations so repeated runs on one system don't collapse into
    /// cache reads.
    pub fn clear_verdict_cache(&self) {
        self.verdict_cache.lock().unwrap().by_query.clear();
    }

    /// The incremental path: reconcile the recorded pending operations
    /// against the existing graph. The cost is proportional to the
    /// graph size plus the delta for **all** denial classes: FDs probe
    /// the persistent LHS-hash group index, general denials seed their
    /// joins from the changed tuples through the persistent per-atom
    /// join indexes (see `general_delta_insert`).
    fn redetect_incremental(&mut self) -> Result<DetectStats, EngineError> {
        // Poison-on-entry: the inner path consumes the pending log and
        // mutates the persistent detect/FK indexes in place, so bailing
        // out anywhere — an early `?` return, an injected fault, a
        // panic — would leave them inconsistent with the graph. Marking
        // the catalog dirty *now* and clearing it only on success means
        // any failed reconciliation forces the next `redetect` onto the
        // full-rebuild path instead of silently reusing half-updated
        // indexes.
        self.catalog_dirty = true;
        let gov = self.options.governance();
        // Panic containment, symmetric with `redetect_full`: an
        // injected `detect` fault (the chaos harness's "writer panic
        // mid-redetect") or a genuine bug in the delta code surfaces as
        // a structured `WorkerPanic` error instead of unwinding through
        // the caller — and the dirty flag above keeps the system
        // usable afterwards.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gov.fault_point("detect", 0)?;
            self.redetect_incremental_inner()
        }))
        .map_err(|payload| {
            EngineError::worker_panic("detect", 0, &parallel::panic_message(payload.as_ref()))
        })?
    }

    fn redetect_incremental_inner(&mut self) -> Result<DetectStats, EngineError> {
        let start = Instant::now();
        let mut stats = DetectStats {
            incremental: true,
            shards_used: 0,
            ..DetectStats::default()
        };
        let pending = std::mem::take(&mut self.pending);
        let DetectIndex { fd, general } = self
            .detect_index
            .as_mut()
            .expect("incremental path requires a detect index");
        // Materialise any missing general-denial join indexes **lazily**
        // from the current catalog. The catalog already reflects this
        // pending batch, so a freshly built index is up to date and must
        // skip the batch's fold maintenance below (`fresh` marks them);
        // read-only systems never pay for these owned indexes at all.
        let mut fresh = vec![false; self.constraints.len()];
        for (ci, c) in self.constraints.iter().enumerate() {
            if fd[ci].is_none() && general[ci].is_none() {
                general[ci] = Some(build_gen_index(self.db.catalog(), c)?);
                fresh[ci] = true;
            }
        }
        let old = &self.graph;

        // New graph with the identical relation-interning order, so
        // vertex `rel` indices stay comparable across the copy.
        let mut g = ConflictHypergraph::new();
        for r in 0..old.relation_count() as u32 {
            g.intern(old.relation_name(r));
        }

        // Fold the pending log: net deleted vertices, net inserted
        // tuples per table (an insert later deleted in the same batch
        // cancels out), and FD/join index maintenance for deletes. An
        // in-place update arrives as delete-then-insert of one tuple
        // id: the delete unhooks the old content (recorded row), the
        // insert re-detects the id with its new content.
        let mut deleted: FxHashSet<Vertex> = FxHashSet::default();
        let mut inserted_by_table: FxHashMap<String, Vec<TupleId>> = FxHashMap::default();
        for op in &pending {
            match op {
                PendingOp::Insert { table, tid } => {
                    inserted_by_table
                        .entry(table.clone())
                        .or_default()
                        .push(*tid);
                }
                PendingOp::Delete { table, tid, row } => {
                    if let Some(ri) = old.relation_index(table) {
                        deleted.insert(Vertex { rel: ri, tid: *tid });
                    }
                    for fdix in fd.iter_mut().flatten() {
                        if fdix.rel == *table {
                            fd_delta_delete(fdix, row, *tid);
                        }
                    }
                    for (ci, gix) in general.iter_mut().enumerate() {
                        if fresh[ci] {
                            continue; // built post-batch: already current
                        }
                        if let Some(gix) = gix {
                            gix.remove_tuple(table, *tid, row);
                        }
                    }
                    if let Some(list) = inserted_by_table.get_mut(table) {
                        list.retain(|t| t != tid);
                    }
                }
            }
        }

        // ---- Foreign-key orphan reconciliation ----
        //
        // Net change per touched (table, tid): the *first* Delete op for
        // a tid records its pre-batch row, presence in the (post-batch)
        // catalog gives its final row; insert-then-delete transients net
        // to nothing. Feeding the per-FK orphan-count indexes with these
        // nets yields, per FK, the parent keys that crossed zero — keys
        // whose count rose from 0 un-orphan their children (their
        // singleton edges are *not* carried over below), keys whose
        // count fell to 0 orphan all their live children (fresh
        // singleton edges are added after the denial deltas). Work is
        // O(batch + affected children), never the instance.
        let mut fk_newly_matched: Vec<FxHashSet<Row>> = Vec::new();
        let mut fk_orphan_adds: Vec<Vec<TupleId>> = Vec::new();
        if !self.foreign_keys.is_empty() {
            let mut net_map: FxHashMap<(String, TupleId), Option<Row>> = FxHashMap::default();
            for op in &pending {
                match op {
                    PendingOp::Insert { table, tid } => {
                        net_map.entry((table.clone(), *tid)).or_insert(None);
                    }
                    PendingOp::Delete { table, tid, row } => {
                        net_map
                            .entry((table.clone(), *tid))
                            .or_insert_with(|| Some(row.clone()));
                    }
                }
            }
            // Resolve each tuple's post-batch row once (FK-independent),
            // sorted so the per-FK passes — and therefore orphan-edge
            // insertion order — are canonical.
            type NetChange<'a> = ((String, TupleId), Option<Row>, Option<&'a Row>);
            let mut net: Vec<NetChange<'_>> = net_map
                .into_iter()
                .map(|((table, tid), pre)| {
                    let post = self
                        .db
                        .catalog()
                        .table(&table)
                        .ok()
                        .and_then(|t| t.get(tid));
                    ((table, tid), pre, post)
                })
                .collect();
            net.sort_by(|a, b| a.0.cmp(&b.0));
            for (fk, fkix) in self.foreign_keys.iter().zip(&mut self.fk_indexes) {
                let mut parent_delta: FxHashMap<Row, i64> = FxHashMap::default();
                let mut inserted_children: Vec<(TupleId, Row)> = Vec::new();
                for ((table, tid), pre, post) in &net {
                    let post = *post;
                    if *table == fk.parent {
                        if let Some(r) = pre {
                            *parent_delta.entry(fk.parent_key(r)).or_insert(0) -= 1;
                        }
                        if let Some(r) = post {
                            *parent_delta.entry(fk.parent_key(r)).or_insert(0) += 1;
                        }
                    }
                    if *table == fk.child {
                        if let Some(key) = pre.as_ref().and_then(|r| fk.child_key(r)) {
                            fkix.remove_child(&key, *tid);
                        }
                        if let Some(key) = post.and_then(|r| fk.child_key(r)) {
                            fkix.add_child(key.clone(), *tid);
                            inserted_children.push((*tid, key));
                        }
                    }
                }
                let mut newly_matched: FxHashSet<Row> = FxHashSet::default();
                let mut newly_orphaned: Vec<Row> = Vec::new();
                for (key, delta) in parent_delta {
                    if delta == 0 {
                        continue;
                    }
                    let old_count = fkix.parent_count(&key);
                    for _ in 0..delta.max(0) {
                        fkix.add_parent(key.clone());
                    }
                    for _ in 0..(-delta).max(0) {
                        fkix.remove_parent(&key);
                    }
                    let new_count = fkix.parent_count(&key);
                    if old_count == 0 && new_count > 0 {
                        newly_matched.insert(key);
                    } else if old_count > 0 && new_count == 0 {
                        newly_orphaned.push(key);
                    }
                }
                // Orphan-edge additions: net-inserted children with no
                // parent, plus every live child of a key that lost its
                // last parent. Sorted for deterministic edge ids;
                // overlaps collapse in the graph's edge dedup.
                let mut adds: Vec<TupleId> = inserted_children
                    .into_iter()
                    .filter(|(_, key)| fkix.parent_count(key) == 0)
                    .map(|(tid, _)| tid)
                    .collect();
                newly_orphaned.sort();
                for key in &newly_orphaned {
                    adds.extend_from_slice(fkix.children_of(key));
                }
                adds.sort_unstable();
                adds.dedup();
                fk_newly_matched.push(newly_matched);
                fk_orphan_adds.push(adds);
            }
        }

        // Register the net inserts with the carried-over (non-fresh)
        // join indexes *before* the delta joins run, so new-new
        // combinations across different atom positions are visible to
        // every seed pass. Fresh indexes scanned the post-batch catalog
        // and contain the inserts already.
        let stale_general: Vec<usize> = general
            .iter()
            .enumerate()
            .filter(|(ci, g)| g.is_some() && !fresh[*ci])
            .map(|(ci, _)| ci)
            .collect();
        if !stale_general.is_empty() {
            for (table, tids) in &inserted_by_table {
                let t = self.db.catalog().table(table)?;
                for &tid in tids {
                    if let Some(row) = t.get(tid) {
                        for &ci in &stale_general {
                            general[ci]
                                .as_mut()
                                .expect("filtered to Some above")
                                .insert_tuple(table, tid, row);
                        }
                    }
                }
            }
        }

        // Carry surviving edges over. Every edge vertex is present in
        // the old fact table (add_edge interns each vertex's fact), so
        // a fact reverse-map recovers the rows without touching the
        // catalog.
        let mut vertex_fact: FxHashMap<Vertex, FactId> =
            FxHashMap::with_capacity_and_hasher(old.fact_count(), Default::default());
        for f in 0..old.fact_count() as u32 {
            for &v in old.vertices_of_fact_id(FactId(f)) {
                vertex_fact.insert(v, FactId(f));
            }
        }
        let mut rows_buf: Vec<&Row> = Vec::new();
        let n_denials = self.constraints.len();
        for (eid, edge) in old.edges() {
            if edge.iter().any(|v| deleted.contains(v)) {
                continue;
            }
            let constraint = old.edge_constraint(eid);
            // Orphan edges whose parent key just gained a parent are
            // resolved: drop them instead of carrying them over.
            if constraint >= n_denials {
                let fk_i = constraint - n_denials;
                if let (Some(fk), Some(matched)) =
                    (self.foreign_keys.get(fk_i), fk_newly_matched.get(fk_i))
                {
                    debug_assert_eq!(edge.len(), 1, "orphan edges are singletons");
                    let row = old.fact(vertex_fact[&edge[0]]).1;
                    if fk.child_key(row).is_some_and(|key| matched.contains(&key)) {
                        continue;
                    }
                }
            }
            rows_buf.clear();
            rows_buf.extend(edge.iter().map(|v| old.fact(vertex_fact[v]).1));
            g.add_edge(edge, &rows_buf, constraint);
        }

        // Delta-detect the inserted tuples, constraint by constraint:
        // FDs probe their LHS-hash group index, general denials seed
        // their joins from the delta through the persistent per-atom
        // join indexes. Both are O(delta × matches), never O(instance).
        for (ci, c) in self.constraints.iter().enumerate() {
            match fd[ci].as_mut() {
                Some(fdix) => {
                    if let Some(tids) = inserted_by_table.get(&fdix.rel) {
                        fd_delta_insert(self.db.catalog(), &mut g, ci, fdix, tids, &mut stats)?;
                    }
                }
                None => {
                    let gix = general[ci]
                        .as_ref()
                        .expect("general index exists for every non-FD constraint");
                    general_delta_insert(
                        self.db.catalog(),
                        &mut g,
                        ci,
                        c,
                        gix,
                        &inserted_by_table,
                        &mut stats,
                    )?;
                }
            }
        }

        // New orphan edges: children inserted without a parent plus
        // children whose key lost its last parent (computed above).
        for (fk_i, adds) in fk_orphan_adds.into_iter().enumerate() {
            if adds.is_empty() {
                continue;
            }
            let fk = &self.foreign_keys[fk_i];
            let child = self.db.catalog().table(&fk.child)?;
            let rel = g.intern(&fk.child);
            for tid in adds {
                let row = child
                    .get(tid)
                    .expect("orphan candidate is live in the catalog");
                g.add_edge(&[Vertex { rel, tid }], &[row], n_denials + fk_i);
                stats.edges_emitted += 1;
            }
        }

        g.finalize();
        self.graph = Arc::new(g);
        self.invalidate_verdicts();
        stats.elapsed = start.elapsed();
        self.detect_stats = stats;
        self.catalog_dirty = false; // reconciliation fully succeeded
        Ok(stats)
    }

    /// The conflict hypergraph.
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// The constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// The restricted foreign keys (empty unless built via
    /// [`Hippo::with_foreign_keys`]). The durability layer needs these
    /// to rebuild an equivalent `Hippo` around a recovered database —
    /// constraints are code, not data, so they are re-supplied at
    /// recovery rather than serialized.
    pub fn foreign_keys(&self) -> &[crate::inclusion::ForeignKey] {
        &self.foreign_keys
    }

    /// Number of recorded-but-unreconciled changes (inserts + deletes
    /// recorded since the last [`Hippo::redetect`]). The write-ahead log
    /// frames a transaction only once this is back to zero — a non-zero
    /// count at frame time would mean logging a state the hypergraph
    /// does not yet reflect.
    pub fn pending_changes(&self) -> usize {
        self.pending.len()
    }

    /// Conflict-detection statistics.
    pub fn detect_stats(&self) -> DetectStats {
        self.detect_stats
    }

    /// Build the system with restricted foreign keys in addition to denial
    /// constraints (the paper's future-work extension — see
    /// [`crate::inclusion`]): parents must be constraint-free; orphaned
    /// child tuples become singleton hyperedges.
    pub fn with_foreign_keys(
        db: Database,
        constraints: Vec<DenialConstraint>,
        foreign_keys: Vec<crate::inclusion::ForeignKey>,
    ) -> Result<Hippo, EngineError> {
        if foreign_keys.is_empty() {
            // No orphan edges to derive: identical to `new`, which keeps
            // the incremental redetection path available.
            return Hippo::new(db, constraints);
        }
        crate::inclusion::validate_restricted(&foreign_keys, &constraints, db.catalog())?;
        // Un-finalized: orphan edges are still coming; freeze once, below.
        let gov = crate::budget::Governance::default();
        let (mut graph, mut detect_stats, index) =
            crate::detect::detect_unfinalized_with_index(db.catalog(), &constraints, &gov)?;
        let mut fk_indexes = Vec::with_capacity(foreign_keys.len());
        for (i, fk) in foreign_keys.iter().enumerate() {
            let added = crate::inclusion::orphan_edges(
                &mut graph,
                db.catalog(),
                fk,
                constraints.len() + i,
            )?;
            detect_stats.edges_emitted += added;
            fk_indexes.push(crate::inclusion::FkIndex::build(db.catalog(), fk)?);
        }
        graph.finalize();
        Ok(Hippo {
            db,
            constraints,
            graph: Arc::new(graph),
            detect_stats,
            foreign_keys,
            fk_indexes,
            detect_index: Some(index),
            pending: Vec::new(),
            catalog_dirty: false,
            verdict_cache: Arc::new(Mutex::new(VerdictCache::default())),
            options: HippoOptions::default(),
        })
    }

    /// Compute the consistent answers to `query`. Returns sorted rows.
    ///
    /// When the options carry a budget ([`HippoOptions::with_deadline`]
    /// etc.) this is the strict governed call: a trip surfaces as a
    /// structured error. Degraded callers who want the partial result
    /// use [`Hippo::consistent_answers_governed`].
    pub fn consistent_answers(&self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_governed(query)?.rows)
    }

    /// Compute the consistent answers to a SQL `SELECT` (see
    /// [`crate::sql_front`] for the accepted class).
    pub fn consistent_answers_sql(&self, sql: &str) -> Result<Vec<Row>, EngineError> {
        let q = crate::sql_front::sjud_from_sql(sql, self.db.catalog())
            .map_err(|e| EngineError::new(e.to_string()))?;
        self.consistent_answers(&q)
    }

    /// Compute consistent answers plus run statistics.
    ///
    /// The answer-filtering stage is a **shard → merge pipeline**
    /// mirroring detection's, with no serial prefix beyond candidate
    /// collection: the candidate list is cut into [`PROVER_SHARDS`]
    /// contiguous slices, and each shard dedups, probes the core
    /// filter, resolves membership (prefetched flags in KG mode, one
    /// shared read-only [`DbSnapshot`] with per-shard memoized SQL in
    /// base mode) and proves, with a private closure-signature verdict
    /// cache seeded by previous calls' verdicts. Shard outputs are
    /// merged in shard order, so answers and stats are identical for
    /// any worker count.
    pub fn consistent_answers_with_stats(
        &self,
        query: &SjudQuery,
    ) -> Result<(Vec<Row>, AnswerStats), EngineError> {
        let a = self.consistent_answers_governed(query)?;
        Ok((a.rows, a.stats))
    }

    /// The governed entry point: compute consistent answers under the
    /// options' resource budget and report how complete the result is.
    ///
    /// * Ungoverned options (the default): identical to
    ///   [`Hippo::consistent_answers_with_stats`] — no budget object is
    ///   even created, every stage runs the exact pre-governance path,
    ///   and the result is [`Completeness::Complete`].
    /// * Governed, **strict** (default mode): a deadline / row-budget /
    ///   cancellation trip anywhere in the pipeline returns
    ///   `Err` with kind `Budget { stage, spent, limit }` or
    ///   `Cancelled { stage }`.
    /// * Governed, **degraded** ([`HippoOptions::degraded`]): a trip
    ///   yields `Ok` with the *sound subset* proved before the trip and
    ///   [`Completeness::TruncatedAt`] naming the stage — an
    ///   envelope/core-filter trip truncates to the empty set, a
    ///   prover-stage trip keeps every candidate fully proved before
    ///   the budget ran out (each stopped shard counts in
    ///   [`AnswerStats::cancelled_shards`]).
    ///
    /// A worker panic in the prover stage is contained either way: the
    /// sibling shards drain, the error is `WorkerPanic { stage, shard }`,
    /// no partial merge happens, and this `Hippo` (including its
    /// persistent verdict cache) stays fully usable.
    pub fn consistent_answers_governed(
        &self,
        query: &SjudQuery,
    ) -> Result<ConsistentAnswer, EngineError> {
        let gov = self.options.governance();
        answers_pipeline(
            &Backend::Live(&self.db),
            &self.graph,
            &self.options,
            &self.verdict_cache,
            query,
            &gov,
        )
    }

    /// Freeze the current state into an immutable, `Send + Sync`
    /// [`FrozenHippo`]: the catalog snapshot, the conflict hypergraph
    /// and the persistent verdict cache, all shared by cheap `Arc`
    /// clones (no data is copied).
    ///
    /// The frozen view answers queries concurrently with further
    /// mutation of this `Hippo`: redetection *replaces* the graph and
    /// verdict-cache `Arc`s, so the view keeps exactly the state it
    /// captured. Refuses while changes are recorded but not yet
    /// reconciled (`redetect` first) — freezing then would pair a
    /// pre-change hypergraph with post-change data, making every
    /// prover verdict unsound.
    pub fn freeze(&self) -> Result<FrozenHippo, EngineError> {
        if self.catalog_dirty || !self.pending.is_empty() {
            return Err(EngineError::new(
                "cannot freeze: data changes recorded since the last detection \
                 (call redetect() before freeze())",
            ));
        }
        Ok(FrozenHippo {
            snapshot: self.db.snapshot(),
            graph: Arc::clone(&self.graph),
            verdict_cache: Arc::clone(&self.verdict_cache),
            options: self.options.clone(),
        })
    }
}

/// An immutable, `Send + Sync` view of a [`Hippo`] at one point in
/// time: the frozen catalog snapshot, the conflict hypergraph and the
/// persistent verdict cache, produced by [`Hippo::freeze`].
///
/// Any number of threads may run [`FrozenHippo::consistent_answers`]
/// (or plain [`FrozenHippo::query`]) on one view — or on clones, which
/// share everything — with no locks beyond the verdict cache's
/// merge-phase write-back, entirely independent of the live `Hippo`
/// the view came from. This is the unit the service layer
/// (`crates/server`) publishes as an epoch.
#[derive(Clone, Debug)]
pub struct FrozenHippo {
    snapshot: DbSnapshot,
    graph: Arc<ConflictHypergraph>,
    verdict_cache: Arc<Mutex<VerdictCache>>,
    /// Default options for answer runs on this view (captured from the
    /// `Hippo` at freeze time; per-request governance goes through
    /// [`FrozenHippo::consistent_answers_with`]).
    pub options: HippoOptions,
}

// The whole point of freezing: readers share one view across threads.
// Compile-time proof, not a convention.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<FrozenHippo>();
};

impl FrozenHippo {
    /// The frozen catalog.
    pub fn catalog(&self) -> &Catalog {
        self.snapshot.catalog()
    }

    /// The frozen database snapshot.
    pub fn snapshot(&self) -> &DbSnapshot {
        &self.snapshot
    }

    /// The frozen conflict hypergraph.
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// Run a plain (non-CQA) SQL query against the frozen snapshot.
    pub fn query(&self, sql: &str) -> Result<QueryResult, EngineError> {
        self.snapshot.query(sql)
    }

    /// Run a plain SQL query under an explicit budget.
    pub fn query_governed(
        &self,
        sql: &str,
        budget: Option<&Budget>,
    ) -> Result<QueryResult, EngineError> {
        self.snapshot.query_governed(sql, budget, "engine")
    }

    /// Consistent answers on the frozen view (sorted rows; governance
    /// per [`FrozenHippo::options`]).
    pub fn consistent_answers(&self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_governed(query)?.rows)
    }

    /// The governed entry point, mirroring
    /// [`Hippo::consistent_answers_governed`] — identical answers,
    /// stats and degradation semantics, just sourced from the frozen
    /// snapshot instead of the live database.
    pub fn consistent_answers_governed(
        &self,
        query: &SjudQuery,
    ) -> Result<ConsistentAnswer, EngineError> {
        self.consistent_answers_with(query, &self.options)
    }

    /// Run with per-request options (the service layer's deadline
    /// propagation: each request derives its own governance without
    /// touching the shared view).
    pub fn consistent_answers_with(
        &self,
        query: &SjudQuery,
        options: &HippoOptions,
    ) -> Result<ConsistentAnswer, EngineError> {
        let gov = options.governance();
        answers_pipeline(
            &Backend::Frozen(&self.snapshot),
            &self.graph,
            options,
            &self.verdict_cache,
            query,
            &gov,
        )
    }
}

/// Where the answer pipeline reads data from: the live database (a
/// [`Hippo`] answering in place) or a frozen snapshot (a
/// [`FrozenHippo`] / published epoch). Both expose the same catalog
/// and governed-query surface; the only behavioural difference is how
/// base mode obtains its shared membership snapshot.
enum Backend<'a> {
    Live(&'a Database),
    Frozen(&'a DbSnapshot),
}

impl Backend<'_> {
    fn catalog(&self) -> &Catalog {
        match self {
            Backend::Live(db) => db.catalog(),
            Backend::Frozen(s) => s.catalog(),
        }
    }

    fn query_governed(
        &self,
        sql: &str,
        budget: Option<&Budget>,
        stage: &'static str,
    ) -> Result<QueryResult, EngineError> {
        match self {
            Backend::Live(db) => db.query_governed(sql, budget, stage),
            Backend::Frozen(s) => s.query_governed(sql, budget, stage),
        }
    }

    /// Base mode's shared membership snapshot: freeze the live
    /// database once per run, or hand out the already-frozen snapshot
    /// (an `Arc` clone).
    fn membership_snapshot(&self) -> DbSnapshot {
        match self {
            Backend::Live(db) => db.snapshot(),
            Backend::Frozen(s) => (*s).clone(),
        }
    }
}

/// The shared answer pipeline behind both [`Hippo`] (live) and
/// [`FrozenHippo`] (epoch) entry points: envelope → core filter →
/// sharded prove/merge, all reads through `backend`.
fn answers_pipeline(
    backend: &Backend<'_>,
    graph: &ConflictHypergraph,
    options: &HippoOptions,
    verdict_cache: &Mutex<VerdictCache>,
    query: &SjudQuery,
    gov: &Governance,
) -> Result<ConsistentAnswer, EngineError> {
    let t0 = Instant::now();
    let mut stats = AnswerStats {
        degraded: gov.degraded,
        ..AnswerStats::default()
    };
    let arity = query.validate(backend.catalog())?;
    let template = MembershipTemplate::build(query, backend.catalog())?;
    let env = envelope(query);

    // ---- Enveloping + Evaluation ----
    let te = Instant::now();
    let env_res: Result<_, EngineError> = (|| {
        gov.checkpoint("envelope", 0)?;
        if options.knowledge_gathering {
            let sql_q = extended_envelope_sql(&env, &template, backend.catalog())?;
            let sql = hippo_sql::print_query(&sql_q);
            let rows = backend
                .query_governed(&sql, gov.budget_ref(), "envelope")?
                .rows;
            let gathered = split_gathered(rows, arity, template.literals.len());
            Ok((gathered.candidates, Some(gathered.flags)))
        } else {
            let sql = env.to_sql(backend.catalog())?;
            let rows = backend
                .query_governed(&sql, gov.budget_ref(), "envelope")?
                .rows;
            Ok((rows, None))
        }
    })();
    let (candidates, flags) = match env_res {
        Ok(v) => v,
        Err(e) if gov.degraded && e.is_governance() => {
            return Ok(truncated(stats, &e, gov, t0));
        }
        Err(e) => return Err(e),
    };
    stats.candidates = candidates.len();
    stats.t_envelope = te.elapsed();

    // ---- Core filter (optional): compute the accepting set ----
    let tf = Instant::now();
    let filtered: Option<FxHashSet<Row>> = if options.core_filter {
        match core_filter_set_governed(query, backend.catalog(), graph, gov) {
            Ok(set) => Some(set),
            Err(e) if gov.degraded && e.is_governance() => {
                return Ok(truncated(stats, &e, gov, t0));
            }
            Err(e) => return Err(e),
        }
    } else {
        None
    };
    stats.t_filter = tf.elapsed();

    // ---- Sharded answer stage ----
    //
    // No serial prefix beyond candidate collection: dedup, the
    // core-filter probe and the prover all run inside the shards.
    // Dedup is shard-local (a duplicate crossing a shard boundary is
    // decided twice and collapsed by the final sort+dedup — the
    // envelope is set-semantics, so this is a belt-and-braces case),
    // which keeps every counter an exact sum over fixed shards.
    let tp = Instant::now();
    let shards = parallel::split_ranges(candidates.len(), PROVER_SHARDS);
    let threads = options.resolved_prover_threads();
    let use_cache = options.prover_cache;
    // Base mode: freeze the instance once; all workers share the one
    // snapshot `Arc` and issue their membership SQL against it.
    let snapshot: Option<DbSnapshot> = if flags.is_none() {
        Some(backend.membership_snapshot())
    } else {
        None
    };
    // Cross-call verdicts: take the persistent map for this query
    // under the lock, then read it lock-free from every shard.
    let query_key = use_cache.then(|| query.to_string());
    let persistent: Option<Arc<FxHashMap<Vec<u64>, bool>>> = query_key.as_ref().map(|k| {
        let cache = verdict_cache.lock().unwrap();
        cache.by_query.get(k).cloned().unwrap_or_default()
    });
    let input = ShardInput {
        graph,
        template: &template,
        candidates: &candidates,
        flags: flags.as_deref(),
        snapshot: snapshot.as_ref(),
        filtered: filtered.as_ref(),
        use_cache,
        index_probes: options.index_probes,
        persistent: persistent.as_deref(),
        gov,
    };
    // Panic-isolating runner: a panicking shard poisons only its
    // slot; every sibling drains. The first failure — in shard
    // order, panic or error alike — is surfaced *after* the drain,
    // and the merge (including the verdict-cache write-back) is
    // skipped entirely, so the `Hippo` and its caches stay valid.
    let outs = parallel::run_indexed_isolated(shards.len(), threads, |si| {
        prove_shard(&input, si, shards[si].0, shards[si].1)
    });
    // Deterministic merge: shard order, exact stat sums.
    stats.shards_used = shards.len();
    let mut answers: Vec<Row> = Vec::new();
    let mut fresh: Vec<(Vec<u64>, bool)> = Vec::new();
    let mut verdicts: Vec<ShardVerdicts> = Vec::with_capacity(outs.len());
    let mut first_err: Option<EngineError> = None;
    for out in outs {
        match out {
            Err(p) => {
                if first_err.is_none() {
                    first_err = Some(EngineError::worker_panic("prover", p.task, &p.message));
                }
            }
            Ok(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Ok(Ok(v)) => verdicts.push(v),
        }
    }
    if let Some(e) = first_err {
        if gov.degraded && e.is_governance() {
            return Ok(truncated(stats, &e, gov, t0));
        }
        return Err(e);
    }
    for out in verdicts {
        if out.cancelled {
            stats.cancelled_shards += 1;
        }
        stats.prover = merge(stats.prover, out.stats);
        stats.prover_calls += out.prover_calls;
        stats.prover_cache_hits += out.cache_hits;
        stats.prover_cache_cross_hits += out.cross_hits;
        stats.filtered_consistent += out.filtered_consistent;
        stats.membership_queries += out.membership_queries;
        stats.membership_memo_hits += out.membership_memo_hits;
        stats.index_probes += out.index_probes;
        stats.scan_probes += out.scan_probes;
        for i in out.accepted {
            answers.push(candidates[i as usize].clone());
        }
        fresh.extend(out.fresh);
    }
    // Merge-phase write-back of newly proved signatures (shard
    // order, first writer wins — verdicts for equal signatures are
    // equal anyway). The lock is only held here, never by a shard.
    if let Some(k) = query_key {
        if !fresh.is_empty() {
            let mut cache = verdict_cache.lock().unwrap();
            if cache.by_query.len() >= VERDICT_CACHE_MAX_QUERIES && !cache.by_query.contains_key(&k)
            {
                cache.by_query.clear();
            }
            let entry = cache.by_query.entry(k).or_default();
            let map = Arc::make_mut(entry);
            map.reserve(fresh.len());
            for (sig, verdict) in fresh {
                map.entry(sig).or_insert(verdict);
            }
        }
    }
    stats.t_prover = tp.elapsed();

    answers.sort();
    answers.dedup();
    stats.answers = answers.len();
    if let Some(b) = gov.budget_ref() {
        stats.budget_checks = b.checks();
    }
    stats.t_total = t0.elapsed();
    let completeness = if stats.cancelled_shards > 0 {
        Completeness::TruncatedAt("prover")
    } else {
        Completeness::Complete
    };
    Ok(ConsistentAnswer {
        rows: answers,
        completeness,
        stats,
    })
}

/// Degraded-mode truncation: finalize the stats collected so far and
/// wrap the (empty — nothing proved yet) answer set with the tripped
/// stage. Prover-stage truncation takes the partial path in
/// `answers_pipeline` instead; this is for trips before any candidate
/// was proved.
fn truncated(
    mut stats: AnswerStats,
    e: &EngineError,
    gov: &Governance,
    t0: Instant,
) -> ConsistentAnswer {
    stats.degraded = true;
    if let Some(b) = gov.budget_ref() {
        stats.budget_checks = b.checks();
    }
    stats.t_total = t0.elapsed();
    ConsistentAnswer {
        rows: Vec::new(),
        completeness: Completeness::TruncatedAt(trip_stage(e)),
        stats,
    }
}

/// Read-only state shared by every shard of one answer run. Everything
/// here is `Sync`: the frozen graph, the compiled template, the
/// candidate rows, the prefetched flag matrix (KG mode) *or* the frozen
/// database snapshot (base mode), the core-filter accepting set, and
/// the previous calls' verdict map.
struct ShardInput<'a> {
    graph: &'a ConflictHypergraph,
    template: &'a MembershipTemplate,
    candidates: &'a [Row],
    /// KG mode: per-candidate prefetched membership flags.
    flags: Option<&'a [Vec<bool>]>,
    /// Base mode: the snapshot all shards issue membership SQL against.
    snapshot: Option<&'a DbSnapshot>,
    /// Core-filter accepting set (candidates in it skip the prover).
    filtered: Option<&'a FxHashSet<Row>>,
    use_cache: bool,
    /// Base mode: let the prepared probes use index access paths.
    index_probes: bool,
    /// Cross-call verdicts proved by earlier runs on this graph.
    persistent: Option<&'a FxHashMap<Vec<u64>, bool>>,
    /// The call's governance (inactive on ungoverned calls: every
    /// check is a no-op and the shard runs the pre-governance path).
    gov: &'a Governance,
}

/// Decide the candidate slice `lo..hi`: dedup (shard-local), probe the
/// core filter, resolve membership flags (prefetched in KG mode,
/// memoized snapshot SQL in base mode), then decide by signature cache
/// or prover run. Runs on a worker thread; mutates nothing shared.
///
/// Governance: the shard checkpoints at entry (fault-injection point
/// `("prover", si)`) and ticks the budget per candidate. In degraded
/// mode a trip sets [`ShardVerdicts::cancelled`] and returns the
/// accepted-so-far prefix — every accepted candidate was fully proved,
/// so the prefix is sound; in strict mode the trip is returned as an
/// error.
fn prove_shard(
    input: &ShardInput<'_>,
    si: usize,
    lo: usize,
    hi: usize,
) -> Result<ShardVerdicts, EngineError> {
    let mut out = ShardVerdicts::default();
    if let Err(e) = input.gov.checkpoint("prover", si) {
        if input.gov.degraded && e.is_governance() {
            out.cancelled = true;
            return Ok(out);
        }
        return Err(e);
    }
    let mut prover = Prover::new(input.graph, input.template);
    let mut local: FxHashMap<Vec<u64>, bool> = FxHashMap::default();
    let mut sig: Vec<u64> = Vec::new();
    let mut seen: FxHashSet<&Row> =
        FxHashSet::with_capacity_and_hasher(hi - lo, Default::default());
    let mut sql = match input.snapshot {
        Some(s) => Some(
            MemoSqlMembership::new(s, input.template, input.index_probes)?
                .with_budget(input.gov.budget_ref()),
        ),
        None => None,
    };
    let mut flag_buf: Vec<bool> = Vec::new();
    // Cooperative per-candidate checkpoint, flattened by hand: one
    // local increment and a predicted branch per candidate; every
    // CHECK_STRIDE candidates the locally-accumulated row charges are
    // flushed to the shared budget and one full check runs. Charging
    // the shared atomic per candidate would ping-pong the budget's
    // cache line across worker threads (and costs ~10% of this loop
    // even single-threaded).
    let budget = input.gov.budget_ref();
    let mut work = 0u32;
    let mut pending_rows = 0u64;
    for i in lo..hi {
        work = work.wrapping_add(1);
        if work & (crate::budget::CHECK_STRIDE - 1) == 0 {
            if let Some(b) = budget {
                b.charge_rows(std::mem::take(&mut pending_rows));
                if let Err(e) = b.check("prover") {
                    if input.gov.degraded && e.is_governance() {
                        out.cancelled = true;
                        break;
                    }
                    return Err(e);
                }
            }
        }
        let cand = &input.candidates[i];
        if !seen.insert(cand) {
            continue; // duplicate candidate within the shard
        }
        if let Some(f) = input.filtered {
            if f.contains(cand) {
                out.filtered_consistent += 1;
                out.accepted.push(i as u32);
                continue;
            }
        }
        out.prover_calls += 1;
        pending_rows += 1;
        // Membership flags: prefetched (KG) or gathered through the
        // shard's memoized snapshot-SQL probe (base). A governance trip
        // inside the probe (stage "membership") cancels the shard in
        // degraded mode — the candidate was not decided, so it is not
        // counted or accepted.
        let cand_flags: &[bool] = match input.flags {
            Some(fl) => &fl[i],
            None => {
                let gather = input.gov.fault_point("membership", si).and_then(|()| {
                    sql.as_mut()
                        .expect("base mode carries a snapshot")
                        .gather_flags(cand, &mut flag_buf)
                });
                match gather {
                    Ok(()) => &flag_buf,
                    Err(e) if input.gov.degraded && e.is_governance() => {
                        out.prover_calls -= 1;
                        out.cancelled = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        let ok = if input.use_cache {
            prover.closure_signature(cand, cand_flags, &mut sig);
            if let Some(&v) = local.get(&sig) {
                out.cache_hits += 1;
                v
            } else if let Some(&v) = input.persistent.and_then(|p| p.get(&sig)) {
                out.cache_hits += 1;
                out.cross_hits += 1;
                v
            } else {
                let mut membership =
                    GatheredMembership::for_candidate(input.template, cand, cand_flags);
                let v = prover.is_consistent_answer(cand, &mut membership)?;
                let key = std::mem::take(&mut sig);
                out.fresh.push((key.clone(), v));
                local.insert(key, v);
                v
            }
        } else {
            let mut membership =
                GatheredMembership::for_candidate(input.template, cand, cand_flags);
            prover.is_consistent_answer(cand, &mut membership)?
        };
        if ok {
            out.accepted.push(i as u32);
        }
    }
    if let Some(b) = budget {
        b.charge_rows(pending_rows);
    }
    out.stats = prover.stats;
    if let Some(sql) = sql {
        sql.flush_backend_stats();
        out.membership_queries = sql.queries_issued;
        out.membership_memo_hits = sql.memo_hits;
        out.index_probes = sql.index_probes;
        out.scan_probes = sql.scan_probes;
    }
    Ok(out)
}

/// One prover shard's output (merged in shard order).
#[derive(Debug, Default)]
struct ShardVerdicts {
    /// Accepted candidate indices (core-filtered or proved), in
    /// candidate order.
    accepted: Vec<u32>,
    /// Signatures first proved by this shard, in discovery order
    /// (folded into the persistent cache at merge).
    fresh: Vec<(Vec<u64>, bool)>,
    /// The shard prover's counters.
    stats: ProverRunStats,
    /// Candidates reaching the prover stage in this shard.
    prover_calls: usize,
    /// Candidates accepted by the core filter in this shard.
    filtered_consistent: usize,
    /// Entries answered from a signature cache (local or persistent).
    cache_hits: usize,
    /// Subset of `cache_hits` answered from the persistent map.
    cross_hits: usize,
    /// Base mode: probes executed (memo misses).
    membership_queries: usize,
    /// Base mode: probes answered from the shard memo.
    membership_memo_hits: usize,
    /// Base mode: executed probes that ran as `IndexLookup`s.
    index_probes: usize,
    /// Base mode: executed probes that ran as sequential scans.
    scan_probes: usize,
    /// Degraded mode: this shard stopped early on a budget trip; its
    /// accepted list is the sound prefix proved before the trip.
    cancelled: bool,
}

fn merge(a: ProverRunStats, b: ProverRunStats) -> ProverRunStats {
    ProverRunStats {
        tuples_checked: a.tuples_checked + b.tuples_checked,
        membership_checks: a.membership_checks + b.membership_checks,
        disjuncts_checked: a.disjuncts_checked + b.disjuncts_checked,
        edge_visits: a.edge_visits + b.edge_visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_consistent_answers;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn fd() -> Vec<DenialConstraint> {
        vec![DenialConstraint::functional_dependency("emp", &[0], 1)]
    }

    fn queries() -> Vec<SjudQuery> {
        vec![
            SjudQuery::rel("emp"),
            SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 150i64)),
            SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
                1,
                CmpOp::Lt,
                150i64,
            ))),
            SjudQuery::rel("emp")
                .select(Pred::cmp_const(1, CmpOp::Lt, 150i64))
                .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 250i64))),
            SjudQuery::rel("emp").permute(vec![1, 0]),
        ]
    }

    #[test]
    fn all_option_levels_agree_with_ground_truth() {
        let rows = [
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("cyd", 50),
            ("cyd", 60),
            ("dee", 400),
        ];
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let db = emp_db(&rows);
            let hippo = Hippo::with_options(db, fd(), opts.clone()).unwrap();
            let truth_graph = hippo.graph();
            for q in queries() {
                let got = hippo.consistent_answers(&q).unwrap();
                let truth = naive_consistent_answers(&q, hippo.db().catalog(), truth_graph);
                assert_eq!(got, truth, "query {q} options {opts:?}");
            }
        }
    }

    #[test]
    fn kg_issues_no_membership_queries_base_does() {
        let rows = [("ann", 100), ("ann", 200), ("bob", 300)];
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::base()).unwrap();
        let (_, base_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert!(
            base_stats.membership_queries > 0,
            "base mode pays per-check queries"
        );

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::kg()).unwrap();
        let (_, kg_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(
            kg_stats.membership_queries, 0,
            "KG answers from gathered flags"
        );
        assert!(
            kg_stats.prover.membership_checks > 0,
            "checks still happen, just locally"
        );
    }

    #[test]
    fn base_mode_probes_plan_as_index_lookups() {
        use crate::workload::FdTableSpec;
        let q = SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            500_000i64,
        )));
        let build = |opts: HippoOptions| {
            let spec = FdTableSpec::new("t", 200, 0.1, 11);
            let mut db = Database::new();
            spec.populate(&mut db).unwrap();
            Hippo::with_options(db, vec![spec.fd()], opts).unwrap()
        };
        // The workload's key column is indexed (auto-built on the
        // primary key), so every executed probe is an IndexLookup…
        let hippo = build(HippoOptions::base());
        let (answers, s) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert!(s.membership_queries > 0);
        assert_eq!(s.index_probes, s.membership_queries, "{s}");
        assert_eq!(s.scan_probes, 0, "{s}");
        // …and disabling index probes flips every probe to a scan with
        // answers and all other counters unchanged.
        let hippo = build(HippoOptions::base().without_index_probes());
        let (answers2, s2) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers, answers2);
        assert_eq!(s2.scan_probes, s2.membership_queries);
        assert_eq!(s2.index_probes, 0);
        assert_eq!(s.membership_queries, s2.membership_queries);
        assert_eq!(s.membership_memo_hits, s2.membership_memo_hits);
        assert_eq!(s.prover_calls, s2.prover_calls);
        assert_eq!(s.answers, s2.answers);
        // The one-line report carries the access-path split.
        assert!(format!("{s}").contains("index"), "{s}");
    }

    #[test]
    fn core_filter_reduces_prover_calls() {
        // Lots of clean tuples, one conflict.
        let mut rows: Vec<(String, i64)> = (0..50).map(|i| (format!("p{i}"), 100 + i)).collect();
        rows.push(("p0".into(), 999)); // conflict with p0
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                .collect(),
        )
        .unwrap();
        let q = SjudQuery::rel("emp");

        let h_kg = Hippo::with_options(
            {
                let mut d = Database::new();
                d.catalog_mut()
                    .create_table(
                        TableSchema::new(
                            "emp",
                            vec![
                                Column::new("name", DataType::Text),
                                Column::new("salary", DataType::Int),
                            ],
                            &[],
                        )
                        .unwrap(),
                    )
                    .unwrap();
                d.insert_rows(
                    "emp",
                    rows.iter()
                        .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                        .collect(),
                )
                .unwrap();
                d
            },
            fd(),
            HippoOptions::kg(),
        )
        .unwrap();
        let (ans_kg, s_kg) = h_kg.consistent_answers_with_stats(&q).unwrap();

        let h_full = Hippo::with_options(db, fd(), HippoOptions::full()).unwrap();
        let (ans_full, s_full) = h_full.consistent_answers_with_stats(&q).unwrap();

        assert_eq!(ans_kg, ans_full);
        assert!(s_full.prover_calls < s_kg.prover_calls);
        assert_eq!(
            s_full.prover_calls, 2,
            "only the two conflicting tuples reach the prover"
        );
        assert_eq!(s_full.filtered_consistent, 49);
    }

    #[test]
    fn stats_populated() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let (_, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.answers, 0);
        assert!(hippo.detect_stats().combinations_checked > 0);
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn redetect_after_mutation() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        hippo
            .db_mut()
            .execute("INSERT INTO emp VALUES ('ann', 999)")
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(
            !stats.incremental,
            "unrecorded db_mut changes force a full rebuild"
        );
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn incremental_insert_detects_new_conflicts() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        let tids = hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(999)]])
            .unwrap();
        assert_eq!(tids.len(), 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental, "recorded inserts take the delta path");
        assert_eq!(stats.shards_used, 0);
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers, vec![vec![Value::text("bob"), Value::Int(200)]]);
    }

    #[test]
    fn incremental_delete_clears_conflicts() {
        let mut hippo =
            Hippo::new(emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 1);
        // Delete one side of the conflicting pair (tid 1 = second row).
        let n = hippo
            .delete_tuples("emp", &[hippo_engine::TupleId(1)])
            .unwrap();
        assert_eq!(n, 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers.len(), 2, "ann(100) is consistent again");
    }

    #[test]
    fn incremental_matches_full_rebuild_over_mixed_batches() {
        // Interleave inserts and deletes (including insert-then-delete of
        // the same tuple within one batch), redetect incrementally, and
        // compare against a freshly built system on the same final data.
        let rows = [("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 50)];
        let mut hippo = Hippo::new(emp_db(&rows), fd()).unwrap();
        let t = hippo
            .insert_tuples(
                "emp",
                vec![
                    vec![Value::text("bob"), Value::Int(301)],
                    vec![Value::text("dee"), Value::Int(7)],
                    vec![Value::text("cyd"), Value::Int(51)],
                ],
            )
            .unwrap();
        hippo
            .delete_tuples("emp", &[hippo_engine::TupleId(0), t[2]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);

        let reference = Hippo::new(
            {
                let mut db = emp_db(&rows);
                let table = db.catalog_mut().table_mut("emp").unwrap();
                table
                    .insert(vec![Value::text("bob"), Value::Int(301)])
                    .unwrap();
                table
                    .insert(vec![Value::text("dee"), Value::Int(7)])
                    .unwrap();
                let c = table
                    .insert(vec![Value::text("cyd"), Value::Int(51)])
                    .unwrap();
                table.delete(hippo_engine::TupleId(0));
                table.delete(c);
                db
            },
            fd(),
        )
        .unwrap();
        let canon = |h: &Hippo| {
            let g = h.graph();
            let mut edges: Vec<(usize, Vec<crate::hypergraph::Vertex>)> = g
                .edges()
                .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(canon(&hippo), canon(&reference));
        assert_eq!(
            hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap(),
            reference
                .consistent_answers(&SjudQuery::rel("emp"))
                .unwrap()
        );
    }

    #[test]
    fn redetect_without_changes_is_a_noop() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let before = hippo.detect_stats();
        let stats = hippo.redetect().unwrap();
        assert_eq!(stats, before, "nothing recorded, nothing re-detected");
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn incremental_chains_across_multiple_redetects() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(200)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        // Second round on top of the incrementally-maintained state.
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(300)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 3, "all pairs of the trio");
        // Full rebuild agrees.
        hippo.redetect_full().unwrap();
        assert_eq!(hippo.graph().edge_count(), 3);
    }

    #[test]
    fn foreign_key_redetect_keeps_orphan_edges() {
        let mut db = Database::new();
        db.execute("CREATE TABLE parent (id INT)").unwrap();
        db.execute("CREATE TABLE child (pid INT, x INT)").unwrap();
        db.execute("INSERT INTO parent VALUES (1)").unwrap();
        db.execute("INSERT INTO child VALUES (1, 10), (2, 20)")
            .unwrap();
        let fk = crate::inclusion::ForeignKey {
            child: "child".into(),
            child_cols: vec![0],
            parent: "parent".into(),
            parent_cols: vec![0],
        };
        let mut hippo = Hippo::with_foreign_keys(db, vec![], vec![fk]).unwrap();
        assert_eq!(hippo.graph().edge_count(), 1, "child(2,·) is orphaned");
        // Regression: redetect used to silently drop orphan edges.
        let stats = hippo.redetect_full().unwrap();
        assert!(!stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        // Recorded changes stay incremental under fks (PR 4): an
        // orphaned insert adds its singleton edge via the orphan-count
        // index, no rebuild.
        hippo
            .insert_tuples("child", vec![vec![Value::Int(3), Value::Int(30)]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental, "fk changes take the delta path now");
        assert_eq!(hippo.graph().edge_count(), 2);
    }

    #[test]
    fn fk_incremental_flips_orphans_in_both_directions() {
        let mut db = Database::new();
        db.execute("CREATE TABLE parent (id INT)").unwrap();
        db.execute("CREATE TABLE child (pid INT, x INT)").unwrap();
        db.execute("INSERT INTO parent VALUES (1)").unwrap();
        db.execute("INSERT INTO child VALUES (1, 10), (2, 20), (2, 21)")
            .unwrap();
        let fk = crate::inclusion::ForeignKey {
            child: "child".into(),
            child_cols: vec![0],
            parent: "parent".into(),
            parent_cols: vec![0],
        };
        let mut hippo = Hippo::with_foreign_keys(db, vec![], vec![fk]).unwrap();
        assert_eq!(
            hippo.graph().edge_count(),
            2,
            "both pid=2 children orphaned"
        );
        // Inserting parent 2 un-orphans both children incrementally.
        let p2 = hippo
            .insert_tuples("parent", vec![vec![Value::Int(2)]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
        // Deleting parent 1 orphans child (1, 10); deleting parent 2
        // re-orphans the pid=2 pair — all via the orphan-count index.
        hippo
            .delete_tuples("parent", &[hippo_engine::TupleId(0), p2[0]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 3, "every child is orphaned");
        // Differential: a forced full rebuild agrees edge-for-edge.
        let canon = |h: &Hippo| {
            let g = h.graph();
            let mut edges: Vec<(usize, Vec<crate::hypergraph::Vertex>)> = g
                .edges()
                .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
                .collect();
            edges.sort();
            edges
        };
        let inc = canon(&hippo);
        hippo.redetect_full().unwrap();
        assert_eq!(inc, canon(&hippo));
        // An in-place child update that dodges the orphan: update pid
        // 2 → re-insert parent 2 first, then move a child onto a
        // missing parent.
        hippo
            .insert_tuples("parent", vec![vec![Value::Int(2)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        hippo
            .update_tuples(
                "child",
                vec![(
                    hippo_engine::TupleId(1),
                    vec![Value::Int(9), Value::Int(20)],
                )],
            )
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        // child(1,10) orphan (parent 1 gone), child(9,20) orphan
        // (parent 9 never existed), child(2,21) matched by parent 2.
        assert_eq!(hippo.graph().edge_count(), 2);
        let inc = canon(&hippo);
        hippo.redetect_full().unwrap();
        assert_eq!(inc, canon(&hippo));
    }

    #[test]
    fn update_tuples_stays_incremental() {
        // Create a conflict by updating, then resolve it by updating back.
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        let n = hippo
            .update_tuples(
                "emp",
                vec![(
                    hippo_engine::TupleId(1),
                    vec![Value::text("ann"), Value::Int(999)],
                )],
            )
            .unwrap();
        assert_eq!(n, 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental, "recorded updates take the delta path");
        assert_eq!(hippo.graph().edge_count(), 1, "ann now disagrees with ann");
        assert!(hippo
            .consistent_answers(&SjudQuery::rel("emp"))
            .unwrap()
            .is_empty());
        // Update the same tuple id again to clear the conflict.
        hippo
            .update_tuples(
                "emp",
                vec![(
                    hippo_engine::TupleId(1),
                    vec![Value::text("bob"), Value::Int(200)],
                )],
            )
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
        assert_eq!(
            hippo
                .consistent_answers(&SjudQuery::rel("emp"))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn update_tuples_validates_batch_upfront() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        // Second entry targets a missing tuple: whole batch rejected.
        let err = hippo.update_tuples(
            "emp",
            vec![
                (
                    hippo_engine::TupleId(0),
                    vec![Value::text("ann"), Value::Int(7)],
                ),
                (
                    hippo_engine::TupleId(9),
                    vec![Value::text("x"), Value::Int(8)],
                ),
            ],
        );
        assert!(err.is_err());
        assert_eq!(
            hippo
                .db()
                .catalog()
                .table("emp")
                .unwrap()
                .get(hippo_engine::TupleId(0)),
            Some(&vec![Value::text("ann"), Value::Int(100)]),
            "failed batch leaves the database untouched"
        );
        // Nothing was recorded, so redetect is a no-op on the old stats.
        assert!(!hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
    }

    #[test]
    fn general_denial_delta_is_seeded_not_outer_scanned() {
        // Exclusion between emp and contractor; the delta lands in the
        // *second* atom, which used to force an O(outer) rescan of emp.
        let mut db = emp_db(&[("ann", 100), ("bob", 200), ("cyd", 300), ("dee", 400)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "contractor",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("rate", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        let constraints = vec![DenialConstraint::exclusion("emp", "contractor", &[(0, 0)])];
        let mut hippo = Hippo::new(db, constraints.clone()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        hippo
            .insert_tuples("contractor", vec![vec![Value::text("bob"), Value::Int(50)]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 1, "bob is in both relations");
        // Seeded delta: the new tuple plus its single join match — not
        // the 4-row emp outer atom.
        assert!(
            stats.combinations_checked <= 2,
            "delta join must not rescan the outer atom (checked {})",
            stats.combinations_checked
        );
        // Deleting the tuple clears the conflict incrementally too.
        let last = hippo
            .db()
            .catalog()
            .table("contractor")
            .unwrap()
            .slot_count()
            - 1;
        hippo
            .delete_tuples("contractor", &[hippo_engine::TupleId(last as u32)])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
    }

    #[test]
    fn prover_thread_count_never_changes_answers_or_stats() {
        let mut rows: Vec<(String, i64)> = (0..60).map(|i| (format!("p{i}"), 100 + i)).collect();
        for c in 0..12 {
            rows.push((format!("p{c}"), 5000 + c)); // conflicting duplicates
        }
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            5000i64,
        )));
        let build = |threads: usize| {
            let mut db = Database::new();
            db.catalog_mut()
                .create_table(
                    TableSchema::new(
                        "emp",
                        vec![
                            Column::new("name", DataType::Text),
                            Column::new("salary", DataType::Int),
                        ],
                        &[],
                    )
                    .unwrap(),
                )
                .unwrap();
            db.insert_rows(
                "emp",
                rows.iter()
                    .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                    .collect(),
            )
            .unwrap();
            Hippo::with_options(db, fd(), HippoOptions::kg().with_prover_threads(threads)).unwrap()
        };
        let (ans1, s1) = build(1).consistent_answers_with_stats(&q).unwrap();
        assert!(s1.prover_calls > 0);
        for threads in [2usize, 4, 8] {
            let (ans, s) = build(threads).consistent_answers_with_stats(&q).unwrap();
            assert_eq!(ans, ans1, "threads={threads}");
            assert_eq!(s.prover_calls, s1.prover_calls);
            assert_eq!(s.prover_cache_hits, s1.prover_cache_hits);
            assert_eq!(s.filtered_consistent, s1.filtered_consistent);
            assert_eq!(s.prover, s1.prover, "prover counters at threads={threads}");
            assert_eq!(s.answers, s1.answers);
        }
    }

    #[test]
    fn columnar_toggle_never_changes_answers_or_stats() {
        // The vectorized engine claims bit-identical behaviour: same
        // answers and the same AnswerStats counters (only wall-clock
        // may differ) in base and KG mode, serial and sharded alike.
        let mut rows: Vec<(String, i64)> = (0..50).map(|i| (format!("p{i}"), 100 + i)).collect();
        for c in 0..10 {
            rows.push((format!("p{c}"), 5000 + c)); // conflicting duplicates
        }
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            5000i64,
        )));
        let build = |opts: HippoOptions| {
            let mut db = Database::new();
            db.catalog_mut()
                .create_table(
                    TableSchema::new(
                        "emp",
                        vec![
                            Column::new("name", DataType::Text),
                            Column::new("salary", DataType::Int),
                        ],
                        &[],
                    )
                    .unwrap(),
                )
                .unwrap();
            db.insert_rows(
                "emp",
                rows.iter()
                    .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                    .collect(),
            )
            .unwrap();
            Hippo::with_options(db, fd(), opts).unwrap()
        };
        // Every counter except the timings must match exactly.
        let counters = |mut s: AnswerStats| {
            s.t_envelope = Duration::ZERO;
            s.t_filter = Duration::ZERO;
            s.t_prover = Duration::ZERO;
            s.t_total = Duration::ZERO;
            format!("{s:?}")
        };
        for threads in [1usize, 4] {
            for opts in [HippoOptions::base(), HippoOptions::kg()] {
                let label = format!("threads={threads} options={opts:?}");
                let run = |columnar: bool| {
                    hippo_engine::set_columnar_override(Some(columnar));
                    let out = build(opts.clone().with_prover_threads(threads))
                        .consistent_answers_with_stats(&q)
                        .unwrap();
                    hippo_engine::set_columnar_override(None);
                    out
                };
                let (ans_on, s_on) = run(true);
                let (ans_off, s_off) = run(false);
                assert!(s_on.candidates > 0, "{label}");
                assert_eq!(ans_on, ans_off, "answers diverged: {label}");
                assert_eq!(counters(s_on), counters(s_off), "stats diverged: {label}");
            }
        }
    }

    #[test]
    fn closure_cache_collapses_equivalence_classes() {
        // Many conflict-free tuples share one signature class; only the
        // conflicting pair needs real prover runs.
        let mut rows: Vec<(&str, i64)> = vec![("ann", 1), ("ann", 2)];
        let names: Vec<String> = (0..40).map(|i| format!("p{i}")).collect();
        for n in &names {
            rows.push((n.as_str(), 500));
        }
        let db = emp_db(&rows);
        let q = SjudQuery::rel("emp");
        let hippo = Hippo::with_options(db, fd(), HippoOptions::kg()).unwrap();
        let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers.len(), 40);
        assert_eq!(stats.prover_calls, 42, "no core filter: everything proved");
        // The cache is per shard (16 shards here), so each shard pays at
        // most one miss per signature class it sees: ≥ 42 − 16 − 2 hits.
        assert!(
            stats.prover_cache_hits >= 24,
            "conflict-free candidates collapse (hits = {})",
            stats.prover_cache_hits
        );
        assert!(stats.prover.tuples_checked < stats.prover_calls);

        // Differential: disabling the cache changes no answer.
        let db2 = emp_db(&rows);
        let hippo2 =
            Hippo::with_options(db2, fd(), HippoOptions::kg().without_prover_cache()).unwrap();
        let (answers2, stats2) = hippo2.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers, answers2);
        assert_eq!(stats2.prover_cache_hits, 0);
        assert_eq!(stats2.prover.tuples_checked, stats2.prover_calls);
    }

    #[test]
    fn verdict_cache_persists_across_calls_and_invalidates_on_redetect() {
        let mut rows: Vec<(&str, i64)> = vec![("ann", 1), ("ann", 2)];
        let names: Vec<String> = (0..30).map(|i| format!("p{i}")).collect();
        for n in &names {
            rows.push((n.as_str(), 500));
        }
        let q = SjudQuery::rel("emp");
        let mut hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::kg()).unwrap();
        let (ans1, s1) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(s1.prover_cache_cross_hits, 0, "first call has no history");
        assert!(s1.prover.tuples_checked > 0);
        // Second identical call: every signature class was proved by the
        // first call, so no prover runs at all — all hits are cross-call.
        let (ans2, s2) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(ans2, ans1);
        assert_eq!(s2.prover.tuples_checked, 0, "everything served from cache");
        assert_eq!(s2.prover_cache_cross_hits, s2.prover_cache_hits);
        assert_eq!(s2.prover_cache_hits, s2.prover_calls);
        // Replacing the graph drops the cross-call verdicts.
        hippo
            .insert_tuples("emp", vec![vec![Value::text("zzz"), Value::Int(7)]])
            .unwrap();
        hippo.redetect().unwrap();
        let (_, s3) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(s3.prover_cache_cross_hits, 0, "cache cleared on redetect");
        assert!(s3.prover.tuples_checked > 0);
    }

    #[test]
    fn base_mode_shards_report_and_memoize_membership() {
        // Product query: candidates are pairs, so many candidates in one
        // shard share each side's literal projection — the shard's SQL
        // memo must absorb the repeats.
        let mut rows: Vec<(String, i64)> = (0..10).map(|i| (format!("p{i}"), 100)).collect();
        rows.push(("p0".into(), 999)); // one conflict
        let rows: Vec<(&str, i64)> = rows.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let q = SjudQuery::rel("emp").product(SjudQuery::rel("emp"));
        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::base()).unwrap();
        let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers.len(), 9 * 9, "pairs of the 9 conflict-free rows");
        assert!(stats.shards_used > 1, "base mode shards now");
        assert!(stats.membership_queries > 0, "base mode still pays SQL");
        assert!(
            stats.membership_memo_hits > 0,
            "repeated projections answered from the shard memo"
        );
        // The Display impl reports shards for base mode.
        let line = stats.to_string();
        assert!(line.contains("shards="), "{line}");
        assert!(line.contains("membership_queries="), "{line}");
    }

    #[test]
    fn consistent_database_passes_everything_through() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        let (answers, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.answers, 2);
        assert_eq!(stats.prover_calls, 0, "core filter accepts everything");
    }

    #[test]
    fn frozen_view_matches_live_in_every_mode() {
        let rows = [
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("cyd", 50),
            ("cyd", 60),
        ];
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let hippo = Hippo::with_options(emp_db(&rows), fd(), opts.clone()).unwrap();
            let frozen = hippo.freeze().unwrap();
            for q in queries() {
                let live = hippo.consistent_answers_governed(&q).unwrap();
                let cold = frozen.consistent_answers_governed(&q).unwrap();
                assert_eq!(live.rows, cold.rows, "query {q} options {opts:?}");
                assert_eq!(live.stats.candidates, cold.stats.candidates);
                assert_eq!(live.stats.answers, cold.stats.answers);
                // Plain SQL flows through the snapshot too.
                let via_sql = frozen.query("SELECT * FROM emp").unwrap();
                assert_eq!(via_sql.rows.len(), rows.len());
            }
        }
    }

    #[test]
    fn frozen_view_survives_live_mutation_and_redetect() {
        let mut hippo =
            Hippo::new(emp_db(&[("ann", 100), ("ann", 200), ("bob", 1)]), fd()).unwrap();
        let q = SjudQuery::rel("emp");
        let frozen = hippo.freeze().unwrap();
        let before = frozen.consistent_answers(&q).unwrap();
        assert_eq!(before, vec![vec![Value::text("bob"), Value::Int(1)]]);
        // Mutate and reconcile the live system: bob becomes conflicted.
        hippo
            .insert_tuples("emp", vec![vec![Value::text("bob"), Value::Int(999)]])
            .unwrap();
        hippo.redetect().unwrap();
        assert!(hippo.consistent_answers(&q).unwrap().is_empty());
        // The frozen view still answers from its captured state: old
        // data, old graph, old verdict cache.
        assert_eq!(frozen.consistent_answers(&q).unwrap(), before);
        assert_eq!(frozen.graph().edge_count(), 1, "pre-mutation graph");
        assert_eq!(hippo.graph().edge_count(), 2);
    }

    #[test]
    fn freeze_refuses_unreconciled_changes() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(2)]])
            .unwrap();
        let err = hippo.freeze().unwrap_err();
        assert!(err.to_string().contains("cannot freeze"), "{err}");
        hippo.redetect().unwrap();
        hippo.freeze().unwrap();
        // Unrecorded mutation (catalog dirty) refuses as well.
        hippo.db_mut();
        assert!(hippo.freeze().is_err());
        hippo.redetect().unwrap();
        hippo.freeze().unwrap();
    }

    #[test]
    fn frozen_view_answers_concurrently_across_threads() {
        let mut rows: Vec<(String, i64)> = (0..64).map(|i| (format!("p{i}"), 100 + i)).collect();
        rows.push(("p0".into(), 999));
        let rows: Vec<(&str, i64)> = rows.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let hippo = Hippo::new(emp_db(&rows), fd()).unwrap();
        let frozen = hippo.freeze().unwrap();
        let expected = frozen.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let view = frozen.clone();
                let expected = &expected;
                s.spawn(move || {
                    for q in queries() {
                        let _ = view.consistent_answers(&q).unwrap();
                    }
                    let got = view.consistent_answers(&SjudQuery::rel("emp")).unwrap();
                    assert_eq!(&got, expected);
                });
            }
        });
    }

    #[test]
    fn incremental_redetect_contains_injected_panic() {
        use crate::budget::{FaultKind, FaultPlan};
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        hippo.options =
            HippoOptions::full().with_faults(FaultPlan::new("detect", Some(0), FaultKind::Panic));
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(999)]])
            .unwrap();
        // The injected panic fires on the incremental path and is
        // contained as a structured error; nothing was published.
        let err = hippo.redetect().unwrap_err();
        assert!(err.is_worker_panic(), "{err}");
        assert_eq!(hippo.graph().edge_count(), 0, "old graph still in place");
        // The plan is spent and the dirty flag forces a full rebuild:
        // the same instance recovers on the next call.
        let stats = hippo.redetect().unwrap();
        assert!(!stats.incremental, "poisoned state takes the full path");
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers, vec![vec![Value::text("bob"), Value::Int(200)]]);
    }

    #[test]
    fn incremental_redetect_budget_trip_is_structured_and_recoverable() {
        use crate::budget::{FaultKind, FaultPlan};
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        hippo.options =
            HippoOptions::full().with_faults(FaultPlan::new("detect", None, FaultKind::BudgetTrip));
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(2)]])
            .unwrap();
        let err = hippo.redetect().unwrap_err();
        assert!(err.is_budget(), "{err}");
        assert!(hippo.freeze().is_err(), "failed reconciliation is dirty");
        let stats = hippo.redetect().unwrap();
        assert!(!stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        hippo.freeze().unwrap();
    }
}
