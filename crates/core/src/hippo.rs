//! The Hippo system facade: the data flow of the paper's Figure 1.
//!
//! ```text
//! Query ──▶ Enveloping ──▶ Candidates(SQL) ──▶ Evaluation (RDBMS) ──▶ Prover ──▶ Answer Set
//! IC, DB ──▶ Conflict Detection ──▶ Conflict Hypergraph (main memory) ──▶ Prover
//! ```
//!
//! [`Hippo::new`] performs conflict detection once; each
//! [`Hippo::consistent_answers`] run envelopes the query, evaluates the
//! candidates on the SQL backend, and filters them through the Prover.
//! [`HippoOptions`] selects the optimization level:
//!
//! * **base** — the prover issues one SQL membership query per literal
//!   check (the costly behaviour the paper describes);
//! * **knowledge gathering** — the envelope is extended to prefetch every
//!   membership flag; zero membership queries;
//! * **core filter** — additionally, tuples provably consistent from the
//!   conflict-free core skip the prover.

use crate::constraint::DenialConstraint;
use crate::corefilter::core_filter_on_catalog;
use crate::detect::{detect_conflicts, DetectStats};
use crate::envelope::envelope;
use crate::formula::MembershipTemplate;
use crate::hypergraph::ConflictHypergraph;
use crate::kg::{extended_envelope_sql, split_gathered, GatheredMembership, SqlMembership};
use crate::prover::{Prover, ProverRunStats};
use crate::query::SjudQuery;
use hippo_engine::{Database, EngineError, Row};
use rustc_hash::FxHashSet;
use std::time::{Duration, Instant};

/// Optimization switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HippoOptions {
    /// Prefetch membership flags in the envelope query (knowledge
    /// gathering) instead of issuing per-check SQL queries.
    pub knowledge_gathering: bool,
    /// Skip the prover for tuples caught by the core filter.
    pub core_filter: bool,
}

impl HippoOptions {
    /// Base system: no optimizations.
    pub fn base() -> Self {
        HippoOptions {
            knowledge_gathering: false,
            core_filter: false,
        }
    }

    /// Knowledge gathering only.
    pub fn kg() -> Self {
        HippoOptions {
            knowledge_gathering: true,
            core_filter: false,
        }
    }

    /// Knowledge gathering + core filter (the fully optimized system).
    pub fn full() -> Self {
        HippoOptions {
            knowledge_gathering: true,
            core_filter: true,
        }
    }
}

impl Default for HippoOptions {
    fn default() -> Self {
        HippoOptions::full()
    }
}

/// Statistics of one consistent-query-answering run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Candidate tuples returned by the envelope.
    pub candidates: usize,
    /// Tuples accepted without the prover by the core filter.
    pub filtered_consistent: usize,
    /// Prover invocations.
    pub prover_calls: usize,
    /// Prover-internal counters.
    pub prover: ProverRunStats,
    /// SQL membership queries issued against the backend (base mode).
    pub membership_queries: usize,
    /// Consistent answers produced.
    pub answers: usize,
    /// Time enveloping + evaluating candidates.
    pub t_envelope: Duration,
    /// Time in the core filter.
    pub t_filter: Duration,
    /// Time proving.
    pub t_prover: Duration,
    /// Total wall-clock for the run.
    pub t_total: Duration,
}

/// The Hippo system: database + constraints + conflict hypergraph.
pub struct Hippo {
    db: Database,
    constraints: Vec<DenialConstraint>,
    graph: ConflictHypergraph,
    detect_stats: DetectStats,
    /// Options applied to subsequent runs.
    pub options: HippoOptions,
}

impl Hippo {
    /// Build the system: validates constraints and performs conflict
    /// detection (Figure 1's lower path).
    pub fn new(db: Database, constraints: Vec<DenialConstraint>) -> Result<Hippo, EngineError> {
        let (graph, detect_stats) = detect_conflicts(db.catalog(), &constraints)?;
        Ok(Hippo {
            db,
            constraints,
            graph,
            detect_stats,
            options: HippoOptions::default(),
        })
    }

    /// Build with explicit options.
    pub fn with_options(
        db: Database,
        constraints: Vec<DenialConstraint>,
        options: HippoOptions,
    ) -> Result<Hippo, EngineError> {
        let mut h = Hippo::new(db, constraints)?;
        h.options = options;
        Ok(h)
    }

    /// The underlying database (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access. Mutations invalidate the hypergraph — call
    /// [`Hippo::redetect`] afterwards.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Tear down the system, returning the owned database (e.g. to rebuild
    /// with different constraints).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Re-run conflict detection after data changes.
    pub fn redetect(&mut self) -> Result<DetectStats, EngineError> {
        let (graph, stats) = detect_conflicts(self.db.catalog(), &self.constraints)?;
        self.graph = graph;
        self.detect_stats = stats;
        Ok(stats)
    }

    /// The conflict hypergraph.
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// The constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// Conflict-detection statistics.
    pub fn detect_stats(&self) -> DetectStats {
        self.detect_stats
    }

    /// Build the system with restricted foreign keys in addition to denial
    /// constraints (the paper's future-work extension — see
    /// [`crate::inclusion`]): parents must be constraint-free; orphaned
    /// child tuples become singleton hyperedges.
    pub fn with_foreign_keys(
        db: Database,
        constraints: Vec<DenialConstraint>,
        foreign_keys: Vec<crate::inclusion::ForeignKey>,
    ) -> Result<Hippo, EngineError> {
        crate::inclusion::validate_restricted(&foreign_keys, &constraints, db.catalog())?;
        // Un-finalized: orphan edges are still coming; freeze once, below.
        let (mut graph, mut detect_stats) =
            crate::detect::detect_conflicts_unfinalized(db.catalog(), &constraints)?;
        for (i, fk) in foreign_keys.iter().enumerate() {
            let added = crate::inclusion::orphan_edges(
                &mut graph,
                db.catalog(),
                fk,
                constraints.len() + i,
            )?;
            detect_stats.edges_emitted += added;
        }
        graph.finalize();
        Ok(Hippo {
            db,
            constraints,
            graph,
            detect_stats,
            options: HippoOptions::default(),
        })
    }

    /// Compute the consistent answers to `query`. Returns sorted rows.
    pub fn consistent_answers(&self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_with_stats(query)?.0)
    }

    /// Compute the consistent answers to a SQL `SELECT` (see
    /// [`crate::sql_front`] for the accepted class).
    pub fn consistent_answers_sql(&self, sql: &str) -> Result<Vec<Row>, EngineError> {
        let q = crate::sql_front::sjud_from_sql(sql, self.db.catalog())
            .map_err(|e| EngineError::new(e.to_string()))?;
        self.consistent_answers(&q)
    }

    /// Compute consistent answers plus run statistics.
    pub fn consistent_answers_with_stats(
        &self,
        query: &SjudQuery,
    ) -> Result<(Vec<Row>, RunStats), EngineError> {
        let t0 = Instant::now();
        let mut stats = RunStats::default();
        let arity = query.validate(self.db.catalog())?;
        let template = MembershipTemplate::build(query, self.db.catalog())?;
        let env = envelope(query);

        // ---- Enveloping + Evaluation ----
        let te = Instant::now();
        let (candidates, flags) = if self.options.knowledge_gathering {
            let sql_q = extended_envelope_sql(&env, &template, self.db.catalog())?;
            let sql = hippo_sql::print_query(&sql_q);
            let rows = self.db.query(&sql)?.rows;
            let gathered = split_gathered(rows, arity, template.literals.len());
            (gathered.candidates, Some(gathered.flags))
        } else {
            let sql = env.to_sql(self.db.catalog())?;
            (self.db.query(&sql)?.rows, None)
        };
        stats.candidates = candidates.len();
        stats.t_envelope = te.elapsed();

        // ---- Core filter (optional) ----
        let tf = Instant::now();
        let filtered: FxHashSet<Row> = if self.options.core_filter {
            core_filter_on_catalog(query, self.db.catalog(), &self.graph)
                .into_iter()
                .collect()
        } else {
            FxHashSet::default()
        };
        stats.t_filter = tf.elapsed();

        // ---- Prover ----
        let tp = Instant::now();
        let mut answers: Vec<Row> = Vec::new();
        let mut seen: FxHashSet<Row> =
            FxHashSet::with_capacity_and_hasher(candidates.len(), Default::default());
        let mut prover_stats = ProverRunStats::default();
        let mut membership_queries = 0usize;
        for (i, cand) in candidates.iter().enumerate() {
            if !seen.insert(cand.clone()) {
                continue; // duplicate candidate (envelope is set-semantics, but be safe)
            }
            if self.options.core_filter && filtered.contains(cand) {
                stats.filtered_consistent += 1;
                answers.push(cand.clone());
                continue;
            }
            stats.prover_calls += 1;
            let ok = if let Some(flags) = &flags {
                let membership = GatheredMembership::for_candidate(&template, cand, &flags[i]);
                let mut prover = Prover::new(&self.graph, &template, membership);
                let ok = prover.is_consistent_answer(cand)?;
                prover_stats = merge(prover_stats, prover.stats);
                ok
            } else {
                let membership = SqlMembership::new(&self.db);
                let mut prover = Prover::new(&self.graph, &template, membership);
                let ok = prover.is_consistent_answer(cand)?;
                prover_stats = merge(prover_stats, prover.stats);
                membership_queries += prover.into_membership().queries_issued;
                ok
            };
            if ok {
                answers.push(cand.clone());
            }
        }
        stats.prover = prover_stats;
        stats.membership_queries = membership_queries;
        stats.t_prover = tp.elapsed();

        answers.sort();
        answers.dedup();
        stats.answers = answers.len();
        stats.t_total = t0.elapsed();
        Ok((answers, stats))
    }
}

fn merge(a: ProverRunStats, b: ProverRunStats) -> ProverRunStats {
    ProverRunStats {
        tuples_checked: a.tuples_checked + b.tuples_checked,
        membership_checks: a.membership_checks + b.membership_checks,
        disjuncts_checked: a.disjuncts_checked + b.disjuncts_checked,
        edge_visits: a.edge_visits + b.edge_visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_consistent_answers;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn fd() -> Vec<DenialConstraint> {
        vec![DenialConstraint::functional_dependency("emp", &[0], 1)]
    }

    fn queries() -> Vec<SjudQuery> {
        vec![
            SjudQuery::rel("emp"),
            SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 150i64)),
            SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
                1,
                CmpOp::Lt,
                150i64,
            ))),
            SjudQuery::rel("emp")
                .select(Pred::cmp_const(1, CmpOp::Lt, 150i64))
                .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 250i64))),
            SjudQuery::rel("emp").permute(vec![1, 0]),
        ]
    }

    #[test]
    fn all_option_levels_agree_with_ground_truth() {
        let rows = [
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("cyd", 50),
            ("cyd", 60),
            ("dee", 400),
        ];
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let db = emp_db(&rows);
            let hippo = Hippo::with_options(db, fd(), opts).unwrap();
            let truth_graph = hippo.graph();
            for q in queries() {
                let got = hippo.consistent_answers(&q).unwrap();
                let truth = naive_consistent_answers(&q, hippo.db().catalog(), truth_graph);
                assert_eq!(got, truth, "query {q} options {opts:?}");
            }
        }
    }

    #[test]
    fn kg_issues_no_membership_queries_base_does() {
        let rows = [("ann", 100), ("ann", 200), ("bob", 300)];
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::base()).unwrap();
        let (_, base_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert!(
            base_stats.membership_queries > 0,
            "base mode pays per-check queries"
        );

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::kg()).unwrap();
        let (_, kg_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(
            kg_stats.membership_queries, 0,
            "KG answers from gathered flags"
        );
        assert!(
            kg_stats.prover.membership_checks > 0,
            "checks still happen, just locally"
        );
    }

    #[test]
    fn core_filter_reduces_prover_calls() {
        // Lots of clean tuples, one conflict.
        let mut rows: Vec<(String, i64)> = (0..50).map(|i| (format!("p{i}"), 100 + i)).collect();
        rows.push(("p0".into(), 999)); // conflict with p0
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                .collect(),
        )
        .unwrap();
        let q = SjudQuery::rel("emp");

        let h_kg = Hippo::with_options(
            {
                let mut d = Database::new();
                d.catalog_mut()
                    .create_table(
                        TableSchema::new(
                            "emp",
                            vec![
                                Column::new("name", DataType::Text),
                                Column::new("salary", DataType::Int),
                            ],
                            &[],
                        )
                        .unwrap(),
                    )
                    .unwrap();
                d.insert_rows(
                    "emp",
                    rows.iter()
                        .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                        .collect(),
                )
                .unwrap();
                d
            },
            fd(),
            HippoOptions::kg(),
        )
        .unwrap();
        let (ans_kg, s_kg) = h_kg.consistent_answers_with_stats(&q).unwrap();

        let h_full = Hippo::with_options(db, fd(), HippoOptions::full()).unwrap();
        let (ans_full, s_full) = h_full.consistent_answers_with_stats(&q).unwrap();

        assert_eq!(ans_kg, ans_full);
        assert!(s_full.prover_calls < s_kg.prover_calls);
        assert_eq!(
            s_full.prover_calls, 2,
            "only the two conflicting tuples reach the prover"
        );
        assert_eq!(s_full.filtered_consistent, 49);
    }

    #[test]
    fn stats_populated() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let (_, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.answers, 0);
        assert!(hippo.detect_stats().combinations_checked > 0);
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn redetect_after_mutation() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        hippo
            .db_mut()
            .execute("INSERT INTO emp VALUES ('ann', 999)")
            .unwrap();
        hippo.redetect().unwrap();
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn consistent_database_passes_everything_through() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        let (answers, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.answers, 2);
        assert_eq!(stats.prover_calls, 0, "core filter accepts everything");
    }
}
