//! The Hippo system facade: the data flow of the paper's Figure 1.
//!
//! ```text
//! Query ──▶ Enveloping ──▶ Candidates(SQL) ──▶ Evaluation (RDBMS) ──▶ Prover ──▶ Answer Set
//! IC, DB ──▶ Conflict Detection ──▶ Conflict Hypergraph (main memory) ──▶ Prover
//! ```
//!
//! [`Hippo::new`] performs conflict detection once; each
//! [`Hippo::consistent_answers`] run envelopes the query, evaluates the
//! candidates on the SQL backend, and filters them through the Prover.
//! [`HippoOptions`] selects the optimization level:
//!
//! * **base** — the prover issues one SQL membership query per literal
//!   check (the costly behaviour the paper describes);
//! * **knowledge gathering** — the envelope is extended to prefetch every
//!   membership flag; zero membership queries;
//! * **core filter** — additionally, tuples provably consistent from the
//!   conflict-free core skip the prover.
//!
//! # Incremental maintenance
//!
//! Database changes made through [`Hippo::insert_tuples`] /
//! [`Hippo::delete_tuples`] are *recorded*, and the next
//! [`Hippo::redetect`] reconciles the hypergraph **incrementally**:
//! edges touching deleted tuples are dropped while surviving edges are
//! carried over verbatim, and inserted tuples are delta-detected. For
//! FD constraints the delta probes the persistent LHS-hash group index,
//! so the work is proportional to the conflict graph plus the change —
//! never the instance. General denials re-run a position-restricted
//! join instead: far cheaper than a rebuild in practice (the join
//! indexes prune to the delta), but still a scan of the constraint's
//! outer atom. Mutating the database any other way ([`Hippo::db_mut`])
//! marks the catalog dirty and the next `redetect` falls back to a full
//! sharded rebuild.

use crate::constraint::DenialConstraint;
use crate::corefilter::core_filter_on_catalog;
use crate::detect::{
    detect_with_index, fd_delta_delete, fd_delta_insert, general_delta_insert, DetectIndex,
    DetectOptions, DetectStats,
};
use crate::envelope::envelope;
use crate::formula::MembershipTemplate;
use crate::hypergraph::{ConflictHypergraph, FactId, Vertex};
use crate::kg::{extended_envelope_sql, split_gathered, GatheredMembership, SqlMembership};
use crate::prover::{Prover, ProverRunStats};
use crate::query::SjudQuery;
use hippo_engine::{Database, EngineError, Row, TupleId};
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::{Duration, Instant};

/// Optimization switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HippoOptions {
    /// Prefetch membership flags in the envelope query (knowledge
    /// gathering) instead of issuing per-check SQL queries.
    pub knowledge_gathering: bool,
    /// Skip the prover for tuples caught by the core filter.
    pub core_filter: bool,
}

impl HippoOptions {
    /// Base system: no optimizations.
    pub fn base() -> Self {
        HippoOptions {
            knowledge_gathering: false,
            core_filter: false,
        }
    }

    /// Knowledge gathering only.
    pub fn kg() -> Self {
        HippoOptions {
            knowledge_gathering: true,
            core_filter: false,
        }
    }

    /// Knowledge gathering + core filter (the fully optimized system).
    pub fn full() -> Self {
        HippoOptions {
            knowledge_gathering: true,
            core_filter: true,
        }
    }
}

impl Default for HippoOptions {
    fn default() -> Self {
        HippoOptions::full()
    }
}

/// Statistics of one consistent-query-answering run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Candidate tuples returned by the envelope.
    pub candidates: usize,
    /// Tuples accepted without the prover by the core filter.
    pub filtered_consistent: usize,
    /// Prover invocations.
    pub prover_calls: usize,
    /// Prover-internal counters.
    pub prover: ProverRunStats,
    /// SQL membership queries issued against the backend (base mode).
    pub membership_queries: usize,
    /// Consistent answers produced.
    pub answers: usize,
    /// Time enveloping + evaluating candidates.
    pub t_envelope: Duration,
    /// Time in the core filter.
    pub t_filter: Duration,
    /// Time proving.
    pub t_prover: Duration,
    /// Total wall-clock for the run.
    pub t_total: Duration,
}

/// One recorded database change, awaiting reconciliation by
/// [`Hippo::redetect`].
#[derive(Debug, Clone)]
enum PendingOp {
    /// A tuple inserted through [`Hippo::insert_tuples`].
    Insert { table: String, tid: TupleId },
    /// A tuple deleted through [`Hippo::delete_tuples`]; `row` is its
    /// content as of deletion (needed to unhook the FD index and the
    /// fact table without the tuple still being readable).
    Delete {
        table: String,
        tid: TupleId,
        row: Row,
    },
}

/// The Hippo system: database + constraints + conflict hypergraph.
pub struct Hippo {
    db: Database,
    constraints: Vec<DenialConstraint>,
    graph: ConflictHypergraph,
    detect_stats: DetectStats,
    /// Restricted foreign keys (orphan edges re-derived on full
    /// redetection; non-empty disables the incremental path).
    foreign_keys: Vec<crate::inclusion::ForeignKey>,
    /// Persistent detection state for incremental redetection; `None`
    /// when unavailable (foreign keys present).
    detect_index: Option<DetectIndex>,
    /// Changes recorded since the last (re)detection, in order.
    pending: Vec<PendingOp>,
    /// Set by [`Hippo::db_mut`]: the database may have changed in ways
    /// the pending log does not capture, so only a full rebuild is safe.
    catalog_dirty: bool,
    /// Options applied to subsequent runs.
    pub options: HippoOptions,
}

impl Hippo {
    /// Build the system: validates constraints and performs conflict
    /// detection (Figure 1's lower path).
    pub fn new(db: Database, constraints: Vec<DenialConstraint>) -> Result<Hippo, EngineError> {
        let (graph, detect_stats, index) =
            detect_with_index(db.catalog(), &constraints, &DetectOptions::default())?;
        Ok(Hippo {
            db,
            constraints,
            graph,
            detect_stats,
            foreign_keys: Vec::new(),
            detect_index: Some(index),
            pending: Vec::new(),
            catalog_dirty: false,
            options: HippoOptions::default(),
        })
    }

    /// Build with explicit options.
    pub fn with_options(
        db: Database,
        constraints: Vec<DenialConstraint>,
        options: HippoOptions,
    ) -> Result<Hippo, EngineError> {
        let mut h = Hippo::new(db, constraints)?;
        h.options = options;
        Ok(h)
    }

    /// The underlying database (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access. Mutations invalidate the hypergraph — call
    /// [`Hippo::redetect`] afterwards. Changes made through this handle
    /// are *not* recorded, so the next redetection is a full rebuild;
    /// prefer [`Hippo::insert_tuples`] / [`Hippo::delete_tuples`] for
    /// updates that should be reconciled incrementally.
    pub fn db_mut(&mut self) -> &mut Database {
        self.catalog_dirty = true;
        &mut self.db
    }

    /// Insert rows into `table`, recording them so the next
    /// [`Hippo::redetect`] can reconcile the hypergraph incrementally.
    /// Returns the new tuples' stable ids. The batch is validated
    /// up-front: a bad row rejects the whole call before anything is
    /// inserted, so `Err` means the database is unchanged.
    pub fn insert_tuples(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<TupleId>, EngineError> {
        let t = self.db.catalog_mut().table_mut(table)?;
        // Validate/coerce every row before inserting any — no
        // half-applied batches whose ids the caller never learns.
        let rows = rows
            .into_iter()
            .map(|row| t.schema.check_row(row))
            .collect::<Result<Vec<Row>, _>>()?;
        let mut tids = Vec::with_capacity(rows.len());
        for row in rows {
            // Pre-validated, so this only fails on table exhaustion;
            // recording each insert as it lands keeps the pending log
            // consistent with the database even then.
            let tid = t.insert(row)?;
            tids.push(tid);
            self.pending.push(PendingOp::Insert {
                table: table.to_string(),
                tid,
            });
        }
        Ok(tids)
    }

    /// Delete tuples from `table` by id, recording them so the next
    /// [`Hippo::redetect`] can reconcile the hypergraph incrementally.
    /// Unknown or already-deleted ids are skipped; returns the number of
    /// tuples actually deleted.
    pub fn delete_tuples(&mut self, table: &str, tids: &[TupleId]) -> Result<usize, EngineError> {
        let mut removed: Vec<(TupleId, Row)> = Vec::new();
        {
            let t = self.db.catalog_mut().table_mut(table)?;
            for &tid in tids {
                if let Some(row) = t.get(tid).cloned() {
                    t.delete(tid);
                    removed.push((tid, row));
                }
            }
        }
        let n = removed.len();
        for (tid, row) in removed {
            self.pending.push(PendingOp::Delete {
                table: table.to_string(),
                tid,
                row,
            });
        }
        Ok(n)
    }

    /// Tear down the system, returning the owned database (e.g. to rebuild
    /// with different constraints).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Bring the hypergraph up to date after data changes.
    ///
    /// If every change since the last detection was recorded through
    /// [`Hippo::insert_tuples`] / [`Hippo::delete_tuples`] (and no
    /// foreign keys are configured), this takes the **incremental**
    /// path: surviving edges are carried over, deleted tuples' edges
    /// are dropped, and inserted tuples are delta-detected — the
    /// returned stats have `incremental == true` and count only the
    /// delta work. Otherwise (the catalog was touched via
    /// [`Hippo::db_mut`]) it falls back to a full sharded rebuild. With
    /// no changes at all it returns the current stats untouched.
    pub fn redetect(&mut self) -> Result<DetectStats, EngineError> {
        if self.catalog_dirty || self.detect_index.is_none() {
            return self.redetect_full();
        }
        if self.pending.is_empty() {
            return Ok(self.detect_stats);
        }
        self.redetect_incremental()
    }

    /// Unconditionally re-run full conflict detection (including
    /// foreign-key orphan edges when configured), discarding any
    /// recorded pending changes.
    pub fn redetect_full(&mut self) -> Result<DetectStats, EngineError> {
        if self.foreign_keys.is_empty() {
            let (graph, stats, index) = detect_with_index(
                self.db.catalog(),
                &self.constraints,
                &DetectOptions::default(),
            )?;
            self.graph = graph;
            self.detect_stats = stats;
            self.detect_index = Some(index);
        } else {
            let start = Instant::now();
            let (mut graph, mut stats) =
                crate::detect::detect_conflicts_unfinalized(self.db.catalog(), &self.constraints)?;
            for (i, fk) in self.foreign_keys.iter().enumerate() {
                let added = crate::inclusion::orphan_edges(
                    &mut graph,
                    self.db.catalog(),
                    fk,
                    self.constraints.len() + i,
                )?;
                stats.edges_emitted += added;
            }
            graph.finalize();
            stats.elapsed = start.elapsed();
            self.graph = graph;
            self.detect_stats = stats;
            self.detect_index = None;
        }
        self.pending.clear();
        self.catalog_dirty = false;
        Ok(self.detect_stats)
    }

    /// The incremental path: reconcile the recorded pending operations
    /// against the existing graph. For FD-only constraint sets the cost
    /// is proportional to the graph size plus the delta; general
    /// denials additionally re-scan their outer atom (see
    /// `general_delta_insert`).
    fn redetect_incremental(&mut self) -> Result<DetectStats, EngineError> {
        let start = Instant::now();
        let mut stats = DetectStats {
            incremental: true,
            shards_used: 0,
            ..DetectStats::default()
        };
        let pending = std::mem::take(&mut self.pending);
        let index = self
            .detect_index
            .as_mut()
            .expect("incremental path requires a detect index");
        let old = &self.graph;

        // New graph with the identical relation-interning order, so
        // vertex `rel` indices stay comparable across the copy.
        let mut g = ConflictHypergraph::new();
        for r in 0..old.relation_count() as u32 {
            g.intern(old.relation_name(r));
        }

        // Fold the pending log: net deleted vertices, net inserted
        // tuples per table (an insert later deleted in the same batch
        // cancels out), and FD index maintenance for deletes.
        let mut deleted: FxHashSet<Vertex> = FxHashSet::default();
        let mut inserted_by_table: FxHashMap<String, Vec<TupleId>> = FxHashMap::default();
        for op in &pending {
            match op {
                PendingOp::Insert { table, tid } => {
                    inserted_by_table
                        .entry(table.clone())
                        .or_default()
                        .push(*tid);
                }
                PendingOp::Delete { table, tid, row } => {
                    if let Some(ri) = old.relation_index(table) {
                        deleted.insert(Vertex { rel: ri, tid: *tid });
                    }
                    for fdix in index.fd.iter_mut().flatten() {
                        if fdix.rel == *table {
                            fd_delta_delete(fdix, row, *tid);
                        }
                    }
                    if let Some(list) = inserted_by_table.get_mut(table) {
                        list.retain(|t| t != tid);
                    }
                }
            }
        }

        // Carry surviving edges over. Every edge vertex is present in
        // the old fact table (add_edge interns each vertex's fact), so
        // a fact reverse-map recovers the rows without touching the
        // catalog.
        let mut vertex_fact: FxHashMap<Vertex, FactId> =
            FxHashMap::with_capacity_and_hasher(old.fact_count(), Default::default());
        for f in 0..old.fact_count() as u32 {
            for &v in old.vertices_of_fact_id(FactId(f)) {
                vertex_fact.insert(v, FactId(f));
            }
        }
        let mut rows_buf: Vec<&Row> = Vec::new();
        for (eid, edge) in old.edges() {
            if edge.iter().any(|v| deleted.contains(v)) {
                continue;
            }
            rows_buf.clear();
            rows_buf.extend(edge.iter().map(|v| old.fact(vertex_fact[v]).1));
            g.add_edge(edge, &rows_buf, old.edge_constraint(eid));
        }

        // Delta-detect the inserted tuples, constraint by constraint.
        for (ci, c) in self.constraints.iter().enumerate() {
            match index.fd[ci].as_mut() {
                Some(fdix) => {
                    if let Some(tids) = inserted_by_table.get(&fdix.rel) {
                        fd_delta_insert(self.db.catalog(), &mut g, ci, fdix, tids, &mut stats)?;
                    }
                }
                None => {
                    general_delta_insert(
                        self.db.catalog(),
                        &mut g,
                        ci,
                        c,
                        &inserted_by_table,
                        &mut stats,
                    )?;
                }
            }
        }

        g.finalize();
        self.graph = g;
        stats.elapsed = start.elapsed();
        self.detect_stats = stats;
        Ok(stats)
    }

    /// The conflict hypergraph.
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// The constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// Conflict-detection statistics.
    pub fn detect_stats(&self) -> DetectStats {
        self.detect_stats
    }

    /// Build the system with restricted foreign keys in addition to denial
    /// constraints (the paper's future-work extension — see
    /// [`crate::inclusion`]): parents must be constraint-free; orphaned
    /// child tuples become singleton hyperedges.
    pub fn with_foreign_keys(
        db: Database,
        constraints: Vec<DenialConstraint>,
        foreign_keys: Vec<crate::inclusion::ForeignKey>,
    ) -> Result<Hippo, EngineError> {
        if foreign_keys.is_empty() {
            // No orphan edges to derive: identical to `new`, which keeps
            // the incremental redetection path available.
            return Hippo::new(db, constraints);
        }
        crate::inclusion::validate_restricted(&foreign_keys, &constraints, db.catalog())?;
        // Un-finalized: orphan edges are still coming; freeze once, below.
        let (mut graph, mut detect_stats) =
            crate::detect::detect_conflicts_unfinalized(db.catalog(), &constraints)?;
        for (i, fk) in foreign_keys.iter().enumerate() {
            let added = crate::inclusion::orphan_edges(
                &mut graph,
                db.catalog(),
                fk,
                constraints.len() + i,
            )?;
            detect_stats.edges_emitted += added;
        }
        graph.finalize();
        Ok(Hippo {
            db,
            constraints,
            graph,
            detect_stats,
            foreign_keys,
            // Orphan edges are outside the incremental model: redetect
            // always rebuilds in full (re-deriving them — see
            // `redetect_full`).
            detect_index: None,
            pending: Vec::new(),
            catalog_dirty: false,
            options: HippoOptions::default(),
        })
    }

    /// Compute the consistent answers to `query`. Returns sorted rows.
    pub fn consistent_answers(&self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_with_stats(query)?.0)
    }

    /// Compute the consistent answers to a SQL `SELECT` (see
    /// [`crate::sql_front`] for the accepted class).
    pub fn consistent_answers_sql(&self, sql: &str) -> Result<Vec<Row>, EngineError> {
        let q = crate::sql_front::sjud_from_sql(sql, self.db.catalog())
            .map_err(|e| EngineError::new(e.to_string()))?;
        self.consistent_answers(&q)
    }

    /// Compute consistent answers plus run statistics.
    pub fn consistent_answers_with_stats(
        &self,
        query: &SjudQuery,
    ) -> Result<(Vec<Row>, RunStats), EngineError> {
        let t0 = Instant::now();
        let mut stats = RunStats::default();
        let arity = query.validate(self.db.catalog())?;
        let template = MembershipTemplate::build(query, self.db.catalog())?;
        let env = envelope(query);

        // ---- Enveloping + Evaluation ----
        let te = Instant::now();
        let (candidates, flags) = if self.options.knowledge_gathering {
            let sql_q = extended_envelope_sql(&env, &template, self.db.catalog())?;
            let sql = hippo_sql::print_query(&sql_q);
            let rows = self.db.query(&sql)?.rows;
            let gathered = split_gathered(rows, arity, template.literals.len());
            (gathered.candidates, Some(gathered.flags))
        } else {
            let sql = env.to_sql(self.db.catalog())?;
            (self.db.query(&sql)?.rows, None)
        };
        stats.candidates = candidates.len();
        stats.t_envelope = te.elapsed();

        // ---- Core filter (optional) ----
        let tf = Instant::now();
        let filtered: FxHashSet<Row> = if self.options.core_filter {
            core_filter_on_catalog(query, self.db.catalog(), &self.graph)
                .into_iter()
                .collect()
        } else {
            FxHashSet::default()
        };
        stats.t_filter = tf.elapsed();

        // ---- Prover ----
        let tp = Instant::now();
        let mut answers: Vec<Row> = Vec::new();
        let mut seen: FxHashSet<Row> =
            FxHashSet::with_capacity_and_hasher(candidates.len(), Default::default());
        let mut prover_stats = ProverRunStats::default();
        let mut membership_queries = 0usize;
        for (i, cand) in candidates.iter().enumerate() {
            if !seen.insert(cand.clone()) {
                continue; // duplicate candidate (envelope is set-semantics, but be safe)
            }
            if self.options.core_filter && filtered.contains(cand) {
                stats.filtered_consistent += 1;
                answers.push(cand.clone());
                continue;
            }
            stats.prover_calls += 1;
            let ok = if let Some(flags) = &flags {
                let membership = GatheredMembership::for_candidate(&template, cand, &flags[i]);
                let mut prover = Prover::new(&self.graph, &template, membership);
                let ok = prover.is_consistent_answer(cand)?;
                prover_stats = merge(prover_stats, prover.stats);
                ok
            } else {
                let membership = SqlMembership::new(&self.db);
                let mut prover = Prover::new(&self.graph, &template, membership);
                let ok = prover.is_consistent_answer(cand)?;
                prover_stats = merge(prover_stats, prover.stats);
                membership_queries += prover.into_membership().queries_issued;
                ok
            };
            if ok {
                answers.push(cand.clone());
            }
        }
        stats.prover = prover_stats;
        stats.membership_queries = membership_queries;
        stats.t_prover = tp.elapsed();

        answers.sort();
        answers.dedup();
        stats.answers = answers.len();
        stats.t_total = t0.elapsed();
        Ok((answers, stats))
    }
}

fn merge(a: ProverRunStats, b: ProverRunStats) -> ProverRunStats {
    ProverRunStats {
        tuples_checked: a.tuples_checked + b.tuples_checked,
        membership_checks: a.membership_checks + b.membership_checks,
        disjuncts_checked: a.disjuncts_checked + b.disjuncts_checked,
        edge_visits: a.edge_visits + b.edge_visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_consistent_answers;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn fd() -> Vec<DenialConstraint> {
        vec![DenialConstraint::functional_dependency("emp", &[0], 1)]
    }

    fn queries() -> Vec<SjudQuery> {
        vec![
            SjudQuery::rel("emp"),
            SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 150i64)),
            SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
                1,
                CmpOp::Lt,
                150i64,
            ))),
            SjudQuery::rel("emp")
                .select(Pred::cmp_const(1, CmpOp::Lt, 150i64))
                .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 250i64))),
            SjudQuery::rel("emp").permute(vec![1, 0]),
        ]
    }

    #[test]
    fn all_option_levels_agree_with_ground_truth() {
        let rows = [
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("cyd", 50),
            ("cyd", 60),
            ("dee", 400),
        ];
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let db = emp_db(&rows);
            let hippo = Hippo::with_options(db, fd(), opts).unwrap();
            let truth_graph = hippo.graph();
            for q in queries() {
                let got = hippo.consistent_answers(&q).unwrap();
                let truth = naive_consistent_answers(&q, hippo.db().catalog(), truth_graph);
                assert_eq!(got, truth, "query {q} options {opts:?}");
            }
        }
    }

    #[test]
    fn kg_issues_no_membership_queries_base_does() {
        let rows = [("ann", 100), ("ann", 200), ("bob", 300)];
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::base()).unwrap();
        let (_, base_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert!(
            base_stats.membership_queries > 0,
            "base mode pays per-check queries"
        );

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::kg()).unwrap();
        let (_, kg_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(
            kg_stats.membership_queries, 0,
            "KG answers from gathered flags"
        );
        assert!(
            kg_stats.prover.membership_checks > 0,
            "checks still happen, just locally"
        );
    }

    #[test]
    fn core_filter_reduces_prover_calls() {
        // Lots of clean tuples, one conflict.
        let mut rows: Vec<(String, i64)> = (0..50).map(|i| (format!("p{i}"), 100 + i)).collect();
        rows.push(("p0".into(), 999)); // conflict with p0
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                .collect(),
        )
        .unwrap();
        let q = SjudQuery::rel("emp");

        let h_kg = Hippo::with_options(
            {
                let mut d = Database::new();
                d.catalog_mut()
                    .create_table(
                        TableSchema::new(
                            "emp",
                            vec![
                                Column::new("name", DataType::Text),
                                Column::new("salary", DataType::Int),
                            ],
                            &[],
                        )
                        .unwrap(),
                    )
                    .unwrap();
                d.insert_rows(
                    "emp",
                    rows.iter()
                        .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                        .collect(),
                )
                .unwrap();
                d
            },
            fd(),
            HippoOptions::kg(),
        )
        .unwrap();
        let (ans_kg, s_kg) = h_kg.consistent_answers_with_stats(&q).unwrap();

        let h_full = Hippo::with_options(db, fd(), HippoOptions::full()).unwrap();
        let (ans_full, s_full) = h_full.consistent_answers_with_stats(&q).unwrap();

        assert_eq!(ans_kg, ans_full);
        assert!(s_full.prover_calls < s_kg.prover_calls);
        assert_eq!(
            s_full.prover_calls, 2,
            "only the two conflicting tuples reach the prover"
        );
        assert_eq!(s_full.filtered_consistent, 49);
    }

    #[test]
    fn stats_populated() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let (_, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.answers, 0);
        assert!(hippo.detect_stats().combinations_checked > 0);
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn redetect_after_mutation() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        hippo
            .db_mut()
            .execute("INSERT INTO emp VALUES ('ann', 999)")
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(
            !stats.incremental,
            "unrecorded db_mut changes force a full rebuild"
        );
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn incremental_insert_detects_new_conflicts() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        let tids = hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(999)]])
            .unwrap();
        assert_eq!(tids.len(), 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental, "recorded inserts take the delta path");
        assert_eq!(stats.shards_used, 0);
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers, vec![vec![Value::text("bob"), Value::Int(200)]]);
    }

    #[test]
    fn incremental_delete_clears_conflicts() {
        let mut hippo =
            Hippo::new(emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 1);
        // Delete one side of the conflicting pair (tid 1 = second row).
        let n = hippo
            .delete_tuples("emp", &[hippo_engine::TupleId(1)])
            .unwrap();
        assert_eq!(n, 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers.len(), 2, "ann(100) is consistent again");
    }

    #[test]
    fn incremental_matches_full_rebuild_over_mixed_batches() {
        // Interleave inserts and deletes (including insert-then-delete of
        // the same tuple within one batch), redetect incrementally, and
        // compare against a freshly built system on the same final data.
        let rows = [("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 50)];
        let mut hippo = Hippo::new(emp_db(&rows), fd()).unwrap();
        let t = hippo
            .insert_tuples(
                "emp",
                vec![
                    vec![Value::text("bob"), Value::Int(301)],
                    vec![Value::text("dee"), Value::Int(7)],
                    vec![Value::text("cyd"), Value::Int(51)],
                ],
            )
            .unwrap();
        hippo
            .delete_tuples("emp", &[hippo_engine::TupleId(0), t[2]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);

        let reference = Hippo::new(
            {
                let mut db = emp_db(&rows);
                let table = db.catalog_mut().table_mut("emp").unwrap();
                table
                    .insert(vec![Value::text("bob"), Value::Int(301)])
                    .unwrap();
                table
                    .insert(vec![Value::text("dee"), Value::Int(7)])
                    .unwrap();
                let c = table
                    .insert(vec![Value::text("cyd"), Value::Int(51)])
                    .unwrap();
                table.delete(hippo_engine::TupleId(0));
                table.delete(c);
                db
            },
            fd(),
        )
        .unwrap();
        let canon = |h: &Hippo| {
            let g = h.graph();
            let mut edges: Vec<(usize, Vec<crate::hypergraph::Vertex>)> = g
                .edges()
                .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(canon(&hippo), canon(&reference));
        assert_eq!(
            hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap(),
            reference
                .consistent_answers(&SjudQuery::rel("emp"))
                .unwrap()
        );
    }

    #[test]
    fn redetect_without_changes_is_a_noop() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let before = hippo.detect_stats();
        let stats = hippo.redetect().unwrap();
        assert_eq!(stats, before, "nothing recorded, nothing re-detected");
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn incremental_chains_across_multiple_redetects() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(200)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        // Second round on top of the incrementally-maintained state.
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(300)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 3, "all pairs of the trio");
        // Full rebuild agrees.
        hippo.redetect_full().unwrap();
        assert_eq!(hippo.graph().edge_count(), 3);
    }

    #[test]
    fn foreign_key_redetect_keeps_orphan_edges() {
        let mut db = Database::new();
        db.execute("CREATE TABLE parent (id INT)").unwrap();
        db.execute("CREATE TABLE child (pid INT, x INT)").unwrap();
        db.execute("INSERT INTO parent VALUES (1)").unwrap();
        db.execute("INSERT INTO child VALUES (1, 10), (2, 20)")
            .unwrap();
        let fk = crate::inclusion::ForeignKey {
            child: "child".into(),
            child_cols: vec![0],
            parent: "parent".into(),
            parent_cols: vec![0],
        };
        let mut hippo = Hippo::with_foreign_keys(db, vec![], vec![fk]).unwrap();
        assert_eq!(hippo.graph().edge_count(), 1, "child(2,·) is orphaned");
        // Regression: redetect used to silently drop orphan edges.
        let stats = hippo.redetect_full().unwrap();
        assert!(!stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        // Recorded updates also fall back to a full rebuild under fks.
        hippo
            .insert_tuples("child", vec![vec![Value::Int(3), Value::Int(30)]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(!stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 2);
    }

    #[test]
    fn consistent_database_passes_everything_through() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        let (answers, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.answers, 2);
        assert_eq!(stats.prover_calls, 0, "core filter accepts everything");
    }
}
