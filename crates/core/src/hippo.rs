//! The Hippo system facade: the data flow of the paper's Figure 1.
//!
//! ```text
//! Query ──▶ Enveloping ──▶ Candidates(SQL) ──▶ Evaluation (RDBMS) ──▶ Prover ──▶ Answer Set
//! IC, DB ──▶ Conflict Detection ──▶ Conflict Hypergraph (main memory) ──▶ Prover
//! ```
//!
//! [`Hippo::new`] performs conflict detection once; each
//! [`Hippo::consistent_answers`] run envelopes the query, evaluates the
//! candidates on the SQL backend, and filters them through the Prover.
//! [`HippoOptions`] selects the optimization level:
//!
//! * **base** — the prover issues one SQL membership query per literal
//!   check (the costly behaviour the paper describes);
//! * **knowledge gathering** — the envelope is extended to prefetch every
//!   membership flag; zero membership queries;
//! * **core filter** — additionally, tuples provably consistent from the
//!   conflict-free core skip the prover.
//!
//! # The shard → merge answer pipeline
//!
//! Candidate decisions are independent of each other — each depends
//! only on the candidate's conflict neighbourhood — so the prover stage
//! mirrors detection's shard → merge design. A sequential prepass
//! dedups candidates and applies the core filter; the surviving
//! worklist is split into [`PROVER_SHARDS`] contiguous slices run
//! across the [`crate::parallel`] pool (`HIPPO_PROVER_THREADS` or
//! [`HippoOptions::prover_threads`]). Each shard owns a read-only view
//! of the graph, one reusable [`Prover`] workspace, a borrowed
//! [`GatheredMembership`] per candidate, and a private
//! **closure-signature cache**: candidates whose guard outcomes,
//! membership flags and per-literal conflict facts coincide (see
//! [`Prover::closure_signature`]) share one verdict, so on low-conflict
//! workloads prover work collapses to one call per equivalence class
//! ([`AnswerStats::prover_cache_hits`] counts the collapses). Shard
//! outputs merge in shard order — answers and every [`AnswerStats`]
//! counter are bit-identical for any worker count. Base mode (per-check
//! SQL membership) stays sequential: the engine handle is not `Sync`,
//! and its cost model is the paper's motivating *worst case* anyway.
//!
//! # Incremental maintenance
//!
//! Database changes made through [`Hippo::insert_tuples`] /
//! [`Hippo::delete_tuples`] / [`Hippo::update_tuples`] are *recorded*,
//! and the next [`Hippo::redetect`] reconciles the hypergraph
//! **incrementally**: edges touching deleted tuples are dropped while
//! surviving edges are carried over verbatim, and inserted tuples are
//! delta-detected (an in-place update is recorded as delete + insert
//! of the same tuple id). For FD constraints the delta probes the
//! persistent LHS-hash group index; general denials **seed** their
//! joins from the changed tuples and extend through persistent
//! per-atom join indexes (`GenIndex`) — in both cases the work is
//! proportional to the conflict graph plus the change and its join
//! matches, never the instance or the constraint's outer atom.
//! Mutating the database any other way ([`Hippo::db_mut`]) marks the
//! catalog dirty and the next `redetect` falls back to a full sharded
//! rebuild.

use crate::constraint::DenialConstraint;
use crate::corefilter::core_filter_on_catalog;
use crate::detect::{
    build_gen_index, detect_with_index, fd_delta_delete, fd_delta_insert, general_delta_insert,
    DetectIndex, DetectOptions, DetectStats,
};
use crate::envelope::envelope;
use crate::formula::MembershipTemplate;
use crate::hypergraph::{ConflictHypergraph, FactId, Vertex};
use crate::kg::{extended_envelope_sql, split_gathered, GatheredMembership, SqlMembership};
use crate::parallel;
use crate::prover::{Prover, ProverRunStats};
use crate::query::SjudQuery;
use hippo_engine::{Database, EngineError, Row, TupleId};
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::{Duration, Instant};

/// Fixed shard count of the answer pipeline. Like detection's
/// `DEFAULT_SHARDS`, the decomposition depends only on the worklist
/// length — never on the worker count — so answer order, every
/// [`AnswerStats`] counter and the cache-hit totals are bit-identical
/// for any `HIPPO_PROVER_THREADS` setting.
pub const PROVER_SHARDS: usize = 16;

/// Optimization switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HippoOptions {
    /// Prefetch membership flags in the envelope query (knowledge
    /// gathering) instead of issuing per-check SQL queries.
    pub knowledge_gathering: bool,
    /// Skip the prover for tuples caught by the core filter.
    pub core_filter: bool,
    /// Worker threads for the answer pipeline's prover stage; `0` =
    /// auto (the `HIPPO_PROVER_THREADS` environment variable if set,
    /// else available parallelism). Only the knowledge-gathering path
    /// shards — base mode issues per-check SQL through the (non-`Sync`)
    /// engine handle and stays sequential. The thread count never
    /// affects answers or stats, only wall-clock.
    pub prover_threads: usize,
    /// Memoize prover verdicts by conflict-closure signature (see
    /// [`crate::prover::Prover::closure_signature`]); candidates whose
    /// signatures match an already-proved candidate in the same shard
    /// are decided without running the prover.
    pub prover_cache: bool,
}

impl HippoOptions {
    /// Base system: no optimizations.
    pub fn base() -> Self {
        HippoOptions {
            knowledge_gathering: false,
            core_filter: false,
            prover_threads: 0,
            prover_cache: true,
        }
    }

    /// Knowledge gathering only.
    pub fn kg() -> Self {
        HippoOptions {
            knowledge_gathering: true,
            ..HippoOptions::base()
        }
    }

    /// Knowledge gathering + core filter (the fully optimized system).
    pub fn full() -> Self {
        HippoOptions {
            core_filter: true,
            ..HippoOptions::kg()
        }
    }

    /// Explicit prover worker count (`0` = auto).
    pub fn with_prover_threads(mut self, threads: usize) -> Self {
        self.prover_threads = threads;
        self
    }

    /// Disable the closure-signature verdict cache (every candidate
    /// reaching the prover stage is proved from scratch; used by the
    /// differential tests and the cache-ablation experiments).
    pub fn without_prover_cache(mut self) -> Self {
        self.prover_cache = false;
        self
    }

    fn resolved_prover_threads(&self) -> usize {
        if self.prover_threads == 0 {
            parallel::prover_threads()
        } else {
            self.prover_threads
        }
    }
}

impl Default for HippoOptions {
    fn default() -> Self {
        HippoOptions::full()
    }
}

/// Statistics of one consistent-query-answering run. Every counter is
/// an exact sum over the answer pipeline's shards, independent of the
/// prover worker count.
#[derive(Debug, Clone, Default)]
pub struct AnswerStats {
    /// Candidate tuples returned by the envelope.
    pub candidates: usize,
    /// Tuples accepted without the prover by the core filter.
    pub filtered_consistent: usize,
    /// Candidates reaching the prover stage (each is decided either by
    /// a prover run or by a closure-signature cache hit).
    pub prover_calls: usize,
    /// Prover-stage candidates decided from the per-shard
    /// closure-signature cache without running the prover.
    pub prover_cache_hits: usize,
    /// Prover-internal counters.
    pub prover: ProverRunStats,
    /// SQL membership queries issued against the backend (base mode).
    pub membership_queries: usize,
    /// Consistent answers produced.
    pub answers: usize,
    /// Time enveloping + evaluating candidates.
    pub t_envelope: Duration,
    /// Time in the core filter.
    pub t_filter: Duration,
    /// Time proving.
    pub t_prover: Duration,
    /// Total wall-clock for the run.
    pub t_total: Duration,
}

/// Former name of [`AnswerStats`].
pub type RunStats = AnswerStats;

/// One recorded database change, awaiting reconciliation by
/// [`Hippo::redetect`].
#[derive(Debug, Clone)]
enum PendingOp {
    /// A tuple inserted through [`Hippo::insert_tuples`].
    Insert { table: String, tid: TupleId },
    /// A tuple deleted through [`Hippo::delete_tuples`]; `row` is its
    /// content as of deletion (needed to unhook the FD index and the
    /// fact table without the tuple still being readable).
    Delete {
        table: String,
        tid: TupleId,
        row: Row,
    },
}

/// The Hippo system: database + constraints + conflict hypergraph.
pub struct Hippo {
    db: Database,
    constraints: Vec<DenialConstraint>,
    graph: ConflictHypergraph,
    detect_stats: DetectStats,
    /// Restricted foreign keys (orphan edges re-derived on full
    /// redetection; non-empty disables the incremental path).
    foreign_keys: Vec<crate::inclusion::ForeignKey>,
    /// Persistent detection state for incremental redetection; `None`
    /// when unavailable (foreign keys present).
    detect_index: Option<DetectIndex>,
    /// Changes recorded since the last (re)detection, in order.
    pending: Vec<PendingOp>,
    /// Set by [`Hippo::db_mut`]: the database may have changed in ways
    /// the pending log does not capture, so only a full rebuild is safe.
    catalog_dirty: bool,
    /// Options applied to subsequent runs.
    pub options: HippoOptions,
}

impl Hippo {
    /// Build the system: validates constraints and performs conflict
    /// detection (Figure 1's lower path).
    pub fn new(db: Database, constraints: Vec<DenialConstraint>) -> Result<Hippo, EngineError> {
        let (graph, detect_stats, index) =
            detect_with_index(db.catalog(), &constraints, &DetectOptions::default())?;
        Ok(Hippo {
            db,
            constraints,
            graph,
            detect_stats,
            foreign_keys: Vec::new(),
            detect_index: Some(index),
            pending: Vec::new(),
            catalog_dirty: false,
            options: HippoOptions::default(),
        })
    }

    /// Build with explicit options.
    pub fn with_options(
        db: Database,
        constraints: Vec<DenialConstraint>,
        options: HippoOptions,
    ) -> Result<Hippo, EngineError> {
        let mut h = Hippo::new(db, constraints)?;
        h.options = options;
        Ok(h)
    }

    /// The underlying database (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access. Mutations invalidate the hypergraph — call
    /// [`Hippo::redetect`] afterwards. Changes made through this handle
    /// are *not* recorded, so the next redetection is a full rebuild;
    /// prefer [`Hippo::insert_tuples`] / [`Hippo::delete_tuples`] for
    /// updates that should be reconciled incrementally.
    pub fn db_mut(&mut self) -> &mut Database {
        self.catalog_dirty = true;
        &mut self.db
    }

    /// Insert rows into `table`, recording them so the next
    /// [`Hippo::redetect`] can reconcile the hypergraph incrementally.
    /// Returns the new tuples' stable ids. The batch is validated
    /// up-front: a bad row rejects the whole call before anything is
    /// inserted, so `Err` means the database is unchanged.
    pub fn insert_tuples(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<TupleId>, EngineError> {
        let t = self.db.catalog_mut().table_mut(table)?;
        // Validate/coerce every row before inserting any — no
        // half-applied batches whose ids the caller never learns.
        let rows = rows
            .into_iter()
            .map(|row| t.schema.check_row(row))
            .collect::<Result<Vec<Row>, _>>()?;
        let mut tids = Vec::with_capacity(rows.len());
        for row in rows {
            // Pre-validated, so this only fails on table exhaustion;
            // recording each insert as it lands keeps the pending log
            // consistent with the database even then.
            let tid = t.insert(row)?;
            tids.push(tid);
            self.pending.push(PendingOp::Insert {
                table: table.to_string(),
                tid,
            });
        }
        Ok(tids)
    }

    /// Delete tuples from `table` by id, recording them so the next
    /// [`Hippo::redetect`] can reconcile the hypergraph incrementally.
    /// Unknown or already-deleted ids are skipped; returns the number of
    /// tuples actually deleted.
    pub fn delete_tuples(&mut self, table: &str, tids: &[TupleId]) -> Result<usize, EngineError> {
        let mut removed: Vec<(TupleId, Row)> = Vec::new();
        {
            let t = self.db.catalog_mut().table_mut(table)?;
            for &tid in tids {
                if let Some(row) = t.get(tid).cloned() {
                    t.delete(tid);
                    removed.push((tid, row));
                }
            }
        }
        let n = removed.len();
        for (tid, row) in removed {
            self.pending.push(PendingOp::Delete {
                table: table.to_string(),
                tid,
                row,
            });
        }
        Ok(n)
    }

    /// Update tuples **in place** (the tuple ids survive), recording each
    /// change as a delete of the old content plus a re-insert — so the
    /// next [`Hippo::redetect`] stays on the incremental path instead of
    /// falling back to a full rebuild (which mutating through
    /// [`Hippo::db_mut`] would force). The batch is validated up-front:
    /// an unknown tuple id or a bad row rejects the whole call before
    /// anything changes, so `Err` means the database is untouched.
    /// Returns the number of tuples updated.
    pub fn update_tuples(
        &mut self,
        table: &str,
        updates: Vec<(TupleId, Row)>,
    ) -> Result<usize, EngineError> {
        let mut replaced: Vec<(TupleId, Row)> = Vec::with_capacity(updates.len());
        {
            let t = self.db.catalog_mut().table_mut(table)?;
            let updates = updates
                .into_iter()
                .map(|(tid, row)| {
                    if t.get(tid).is_none() {
                        return Err(EngineError::new(format!(
                            "update of missing tuple {} in {table}",
                            tid.0
                        )));
                    }
                    Ok((tid, t.schema.check_row(row)?))
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            for (tid, row) in updates {
                // Pre-validated: `update` can only fail on a missing
                // tuple, which we just ruled out.
                let old = t.update(tid, row)?;
                replaced.push((tid, old));
            }
        }
        let n = replaced.len();
        for (tid, old) in replaced {
            // Delete-then-insert of the *same* tuple id: the fold in
            // `redetect_incremental` drops the old content's edges and
            // index entries via the recorded row, then delta-detects the
            // id again with its new content.
            self.pending.push(PendingOp::Delete {
                table: table.to_string(),
                tid,
                row: old,
            });
            self.pending.push(PendingOp::Insert {
                table: table.to_string(),
                tid,
            });
        }
        Ok(n)
    }

    /// Tear down the system, returning the owned database (e.g. to rebuild
    /// with different constraints).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Bring the hypergraph up to date after data changes.
    ///
    /// If every change since the last detection was recorded through
    /// [`Hippo::insert_tuples`] / [`Hippo::delete_tuples`] (and no
    /// foreign keys are configured), this takes the **incremental**
    /// path: surviving edges are carried over, deleted tuples' edges
    /// are dropped, and inserted tuples are delta-detected — the
    /// returned stats have `incremental == true` and count only the
    /// delta work. Otherwise (the catalog was touched via
    /// [`Hippo::db_mut`]) it falls back to a full sharded rebuild. With
    /// no changes at all it returns the current stats untouched.
    pub fn redetect(&mut self) -> Result<DetectStats, EngineError> {
        if self.catalog_dirty || self.detect_index.is_none() {
            return self.redetect_full();
        }
        if self.pending.is_empty() {
            return Ok(self.detect_stats);
        }
        self.redetect_incremental()
    }

    /// Unconditionally re-run full conflict detection (including
    /// foreign-key orphan edges when configured), discarding any
    /// recorded pending changes.
    pub fn redetect_full(&mut self) -> Result<DetectStats, EngineError> {
        if self.foreign_keys.is_empty() {
            let (graph, stats, index) = detect_with_index(
                self.db.catalog(),
                &self.constraints,
                &DetectOptions::default(),
            )?;
            self.graph = graph;
            self.detect_stats = stats;
            self.detect_index = Some(index);
        } else {
            let start = Instant::now();
            let (mut graph, mut stats) =
                crate::detect::detect_conflicts_unfinalized(self.db.catalog(), &self.constraints)?;
            for (i, fk) in self.foreign_keys.iter().enumerate() {
                let added = crate::inclusion::orphan_edges(
                    &mut graph,
                    self.db.catalog(),
                    fk,
                    self.constraints.len() + i,
                )?;
                stats.edges_emitted += added;
            }
            graph.finalize();
            stats.elapsed = start.elapsed();
            self.graph = graph;
            self.detect_stats = stats;
            self.detect_index = None;
        }
        self.pending.clear();
        self.catalog_dirty = false;
        Ok(self.detect_stats)
    }

    /// The incremental path: reconcile the recorded pending operations
    /// against the existing graph. The cost is proportional to the
    /// graph size plus the delta for **all** denial classes: FDs probe
    /// the persistent LHS-hash group index, general denials seed their
    /// joins from the changed tuples through the persistent per-atom
    /// join indexes (see `general_delta_insert`).
    fn redetect_incremental(&mut self) -> Result<DetectStats, EngineError> {
        let start = Instant::now();
        let mut stats = DetectStats {
            incremental: true,
            shards_used: 0,
            ..DetectStats::default()
        };
        let pending = std::mem::take(&mut self.pending);
        let DetectIndex { fd, general } = self
            .detect_index
            .as_mut()
            .expect("incremental path requires a detect index");
        // Materialise any missing general-denial join indexes **lazily**
        // from the current catalog. The catalog already reflects this
        // pending batch, so a freshly built index is up to date and must
        // skip the batch's fold maintenance below (`fresh` marks them);
        // read-only systems never pay for these owned indexes at all.
        let mut fresh = vec![false; self.constraints.len()];
        for (ci, c) in self.constraints.iter().enumerate() {
            if fd[ci].is_none() && general[ci].is_none() {
                general[ci] = Some(build_gen_index(self.db.catalog(), c)?);
                fresh[ci] = true;
            }
        }
        let old = &self.graph;

        // New graph with the identical relation-interning order, so
        // vertex `rel` indices stay comparable across the copy.
        let mut g = ConflictHypergraph::new();
        for r in 0..old.relation_count() as u32 {
            g.intern(old.relation_name(r));
        }

        // Fold the pending log: net deleted vertices, net inserted
        // tuples per table (an insert later deleted in the same batch
        // cancels out), and FD/join index maintenance for deletes. An
        // in-place update arrives as delete-then-insert of one tuple
        // id: the delete unhooks the old content (recorded row), the
        // insert re-detects the id with its new content.
        let mut deleted: FxHashSet<Vertex> = FxHashSet::default();
        let mut inserted_by_table: FxHashMap<String, Vec<TupleId>> = FxHashMap::default();
        for op in &pending {
            match op {
                PendingOp::Insert { table, tid } => {
                    inserted_by_table
                        .entry(table.clone())
                        .or_default()
                        .push(*tid);
                }
                PendingOp::Delete { table, tid, row } => {
                    if let Some(ri) = old.relation_index(table) {
                        deleted.insert(Vertex { rel: ri, tid: *tid });
                    }
                    for fdix in fd.iter_mut().flatten() {
                        if fdix.rel == *table {
                            fd_delta_delete(fdix, row, *tid);
                        }
                    }
                    for (ci, gix) in general.iter_mut().enumerate() {
                        if fresh[ci] {
                            continue; // built post-batch: already current
                        }
                        if let Some(gix) = gix {
                            gix.remove_tuple(table, *tid, row);
                        }
                    }
                    if let Some(list) = inserted_by_table.get_mut(table) {
                        list.retain(|t| t != tid);
                    }
                }
            }
        }

        // Register the net inserts with the carried-over (non-fresh)
        // join indexes *before* the delta joins run, so new-new
        // combinations across different atom positions are visible to
        // every seed pass. Fresh indexes scanned the post-batch catalog
        // and contain the inserts already.
        let stale_general: Vec<usize> = general
            .iter()
            .enumerate()
            .filter(|(ci, g)| g.is_some() && !fresh[*ci])
            .map(|(ci, _)| ci)
            .collect();
        if !stale_general.is_empty() {
            for (table, tids) in &inserted_by_table {
                let t = self.db.catalog().table(table)?;
                for &tid in tids {
                    if let Some(row) = t.get(tid) {
                        for &ci in &stale_general {
                            general[ci]
                                .as_mut()
                                .expect("filtered to Some above")
                                .insert_tuple(table, tid, row);
                        }
                    }
                }
            }
        }

        // Carry surviving edges over. Every edge vertex is present in
        // the old fact table (add_edge interns each vertex's fact), so
        // a fact reverse-map recovers the rows without touching the
        // catalog.
        let mut vertex_fact: FxHashMap<Vertex, FactId> =
            FxHashMap::with_capacity_and_hasher(old.fact_count(), Default::default());
        for f in 0..old.fact_count() as u32 {
            for &v in old.vertices_of_fact_id(FactId(f)) {
                vertex_fact.insert(v, FactId(f));
            }
        }
        let mut rows_buf: Vec<&Row> = Vec::new();
        for (eid, edge) in old.edges() {
            if edge.iter().any(|v| deleted.contains(v)) {
                continue;
            }
            rows_buf.clear();
            rows_buf.extend(edge.iter().map(|v| old.fact(vertex_fact[v]).1));
            g.add_edge(edge, &rows_buf, old.edge_constraint(eid));
        }

        // Delta-detect the inserted tuples, constraint by constraint:
        // FDs probe their LHS-hash group index, general denials seed
        // their joins from the delta through the persistent per-atom
        // join indexes. Both are O(delta × matches), never O(instance).
        for (ci, c) in self.constraints.iter().enumerate() {
            match fd[ci].as_mut() {
                Some(fdix) => {
                    if let Some(tids) = inserted_by_table.get(&fdix.rel) {
                        fd_delta_insert(self.db.catalog(), &mut g, ci, fdix, tids, &mut stats)?;
                    }
                }
                None => {
                    let gix = general[ci]
                        .as_ref()
                        .expect("general index exists for every non-FD constraint");
                    general_delta_insert(
                        self.db.catalog(),
                        &mut g,
                        ci,
                        c,
                        gix,
                        &inserted_by_table,
                        &mut stats,
                    )?;
                }
            }
        }

        g.finalize();
        self.graph = g;
        stats.elapsed = start.elapsed();
        self.detect_stats = stats;
        Ok(stats)
    }

    /// The conflict hypergraph.
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// The constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// Conflict-detection statistics.
    pub fn detect_stats(&self) -> DetectStats {
        self.detect_stats
    }

    /// Build the system with restricted foreign keys in addition to denial
    /// constraints (the paper's future-work extension — see
    /// [`crate::inclusion`]): parents must be constraint-free; orphaned
    /// child tuples become singleton hyperedges.
    pub fn with_foreign_keys(
        db: Database,
        constraints: Vec<DenialConstraint>,
        foreign_keys: Vec<crate::inclusion::ForeignKey>,
    ) -> Result<Hippo, EngineError> {
        if foreign_keys.is_empty() {
            // No orphan edges to derive: identical to `new`, which keeps
            // the incremental redetection path available.
            return Hippo::new(db, constraints);
        }
        crate::inclusion::validate_restricted(&foreign_keys, &constraints, db.catalog())?;
        // Un-finalized: orphan edges are still coming; freeze once, below.
        let (mut graph, mut detect_stats) =
            crate::detect::detect_conflicts_unfinalized(db.catalog(), &constraints)?;
        for (i, fk) in foreign_keys.iter().enumerate() {
            let added = crate::inclusion::orphan_edges(
                &mut graph,
                db.catalog(),
                fk,
                constraints.len() + i,
            )?;
            detect_stats.edges_emitted += added;
        }
        graph.finalize();
        Ok(Hippo {
            db,
            constraints,
            graph,
            detect_stats,
            foreign_keys,
            // Orphan edges are outside the incremental model: redetect
            // always rebuilds in full (re-deriving them — see
            // `redetect_full`).
            detect_index: None,
            pending: Vec::new(),
            catalog_dirty: false,
            options: HippoOptions::default(),
        })
    }

    /// Compute the consistent answers to `query`. Returns sorted rows.
    pub fn consistent_answers(&self, query: &SjudQuery) -> Result<Vec<Row>, EngineError> {
        Ok(self.consistent_answers_with_stats(query)?.0)
    }

    /// Compute the consistent answers to a SQL `SELECT` (see
    /// [`crate::sql_front`] for the accepted class).
    pub fn consistent_answers_sql(&self, sql: &str) -> Result<Vec<Row>, EngineError> {
        let q = crate::sql_front::sjud_from_sql(sql, self.db.catalog())
            .map_err(|e| EngineError::new(e.to_string()))?;
        self.consistent_answers(&q)
    }

    /// Compute consistent answers plus run statistics.
    ///
    /// The answer-filtering stage is a **shard → merge pipeline**
    /// mirroring detection's: a sequential prepass dedups candidates
    /// and applies the core filter, then the surviving worklist is cut
    /// into [`PROVER_SHARDS`] contiguous slices proved in parallel
    /// (knowledge-gathering mode), each shard owning one reusable
    /// [`Prover`] workspace, a borrowed [`GatheredMembership`] view per
    /// candidate, and a private closure-signature verdict cache. Shard
    /// outputs are merged in shard order, so answers and stats are
    /// identical for any worker count.
    pub fn consistent_answers_with_stats(
        &self,
        query: &SjudQuery,
    ) -> Result<(Vec<Row>, AnswerStats), EngineError> {
        let t0 = Instant::now();
        let mut stats = AnswerStats::default();
        let arity = query.validate(self.db.catalog())?;
        let template = MembershipTemplate::build(query, self.db.catalog())?;
        let env = envelope(query);

        // ---- Enveloping + Evaluation ----
        let te = Instant::now();
        let (candidates, flags) = if self.options.knowledge_gathering {
            let sql_q = extended_envelope_sql(&env, &template, self.db.catalog())?;
            let sql = hippo_sql::print_query(&sql_q);
            let rows = self.db.query(&sql)?.rows;
            let gathered = split_gathered(rows, arity, template.literals.len());
            (gathered.candidates, Some(gathered.flags))
        } else {
            let sql = env.to_sql(self.db.catalog())?;
            (self.db.query(&sql)?.rows, None)
        };
        stats.candidates = candidates.len();
        stats.t_envelope = te.elapsed();

        // ---- Core filter (optional) ----
        let tf = Instant::now();
        let filtered: FxHashSet<Row> = if self.options.core_filter {
            core_filter_on_catalog(query, self.db.catalog(), &self.graph)
                .into_iter()
                .collect()
        } else {
            FxHashSet::default()
        };
        stats.t_filter = tf.elapsed();

        // ---- Prover prepass (sequential): dedup + core filter ----
        let tp = Instant::now();
        let mut answers: Vec<Row> = Vec::new();
        let mut seen: FxHashSet<&Row> =
            FxHashSet::with_capacity_and_hasher(candidates.len(), Default::default());
        let mut work: Vec<u32> = Vec::new();
        for (i, cand) in candidates.iter().enumerate() {
            if !seen.insert(cand) {
                continue; // duplicate candidate (envelope is set-semantics, but be safe)
            }
            if self.options.core_filter && filtered.contains(cand) {
                stats.filtered_consistent += 1;
                answers.push(cand.clone());
                continue;
            }
            work.push(i as u32);
        }
        stats.prover_calls = work.len();

        // ---- Prover stage ----
        let mut prover_stats = ProverRunStats::default();
        let mut membership_queries = 0usize;
        if let Some(flags) = &flags {
            // Knowledge gathering: membership is prefetched, so shards
            // only read the graph, the template and the flag rows —
            // embarrassingly parallel.
            let shards = parallel::split_ranges(work.len(), PROVER_SHARDS);
            let threads = self.options.resolved_prover_threads();
            let use_cache = self.options.prover_cache;
            // Workers see only `Sync` state: the frozen graph, the
            // template and the prefetched flags (not the engine handle).
            let graph = &self.graph;
            let outs = parallel::run_indexed(shards.len(), threads, |si| {
                prove_shard(
                    graph,
                    &candidates,
                    flags,
                    &template,
                    &work[shards[si].0..shards[si].1],
                    use_cache,
                )
            });
            // Deterministic merge: shard order, exact stat sums.
            for out in outs {
                let out = out?;
                prover_stats = merge(prover_stats, out.stats);
                stats.prover_cache_hits += out.cache_hits;
                for i in out.accepted {
                    answers.push(candidates[i as usize].clone());
                }
            }
        } else {
            // Base mode: one SQL round trip per membership check through
            // the engine handle, inherently sequential. One prover
            // workspace is still reused across the whole batch.
            let mut prover = Prover::new(&self.graph, &template);
            let mut membership = SqlMembership::new(&self.db);
            for &i in &work {
                let cand = &candidates[i as usize];
                if prover.is_consistent_answer(cand, &mut membership)? {
                    answers.push(cand.clone());
                }
            }
            prover_stats = prover.stats;
            membership_queries = membership.queries_issued;
        }
        stats.prover = prover_stats;
        stats.membership_queries = membership_queries;
        stats.t_prover = tp.elapsed();

        answers.sort();
        answers.dedup();
        stats.answers = answers.len();
        stats.t_total = t0.elapsed();
        Ok((answers, stats))
    }
}

/// Decide one shard of the prover worklist: `work` holds candidate
/// indices; returns the accepted indices (in worklist order) plus the
/// shard's exact counters. Runs on a worker thread — reads the graph,
/// template and flags read-only (never the engine handle, which is not
/// `Sync`).
fn prove_shard(
    graph: &ConflictHypergraph,
    candidates: &[Row],
    flags: &[Vec<bool>],
    template: &MembershipTemplate,
    work: &[u32],
    use_cache: bool,
) -> Result<ShardVerdicts, EngineError> {
    let mut prover = Prover::new(graph, template);
    let mut cache: FxHashMap<Vec<u64>, bool> = FxHashMap::default();
    let mut sig: Vec<u64> = Vec::new();
    let mut out = ShardVerdicts::default();
    for &i in work {
        let cand = &candidates[i as usize];
        let cand_flags = &flags[i as usize];
        let ok = if use_cache {
            prover.closure_signature(cand, cand_flags, &mut sig);
            match cache.get(&sig) {
                Some(&v) => {
                    out.cache_hits += 1;
                    v
                }
                None => {
                    let mut membership =
                        GatheredMembership::for_candidate(template, cand, cand_flags);
                    let v = prover.is_consistent_answer(cand, &mut membership)?;
                    cache.insert(std::mem::take(&mut sig), v);
                    v
                }
            }
        } else {
            let mut membership = GatheredMembership::for_candidate(template, cand, cand_flags);
            prover.is_consistent_answer(cand, &mut membership)?
        };
        if ok {
            out.accepted.push(i);
        }
    }
    out.stats = prover.stats;
    Ok(out)
}

/// One prover shard's output (merged in shard order).
#[derive(Debug, Default)]
struct ShardVerdicts {
    /// Accepted candidate indices, in worklist order.
    accepted: Vec<u32>,
    /// The shard prover's counters.
    stats: ProverRunStats,
    /// Worklist entries answered from the signature cache.
    cache_hits: usize,
}

fn merge(a: ProverRunStats, b: ProverRunStats) -> ProverRunStats {
    ProverRunStats {
        tuples_checked: a.tuples_checked + b.tuples_checked,
        membership_checks: a.membership_checks + b.membership_checks,
        disjuncts_checked: a.disjuncts_checked + b.disjuncts_checked,
        edge_visits: a.edge_visits + b.edge_visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_consistent_answers;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn fd() -> Vec<DenialConstraint> {
        vec![DenialConstraint::functional_dependency("emp", &[0], 1)]
    }

    fn queries() -> Vec<SjudQuery> {
        vec![
            SjudQuery::rel("emp"),
            SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 150i64)),
            SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
                1,
                CmpOp::Lt,
                150i64,
            ))),
            SjudQuery::rel("emp")
                .select(Pred::cmp_const(1, CmpOp::Lt, 150i64))
                .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 250i64))),
            SjudQuery::rel("emp").permute(vec![1, 0]),
        ]
    }

    #[test]
    fn all_option_levels_agree_with_ground_truth() {
        let rows = [
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("cyd", 50),
            ("cyd", 60),
            ("dee", 400),
        ];
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let db = emp_db(&rows);
            let hippo = Hippo::with_options(db, fd(), opts).unwrap();
            let truth_graph = hippo.graph();
            for q in queries() {
                let got = hippo.consistent_answers(&q).unwrap();
                let truth = naive_consistent_answers(&q, hippo.db().catalog(), truth_graph);
                assert_eq!(got, truth, "query {q} options {opts:?}");
            }
        }
    }

    #[test]
    fn kg_issues_no_membership_queries_base_does() {
        let rows = [("ann", 100), ("ann", 200), ("bob", 300)];
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::base()).unwrap();
        let (_, base_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert!(
            base_stats.membership_queries > 0,
            "base mode pays per-check queries"
        );

        let hippo = Hippo::with_options(emp_db(&rows), fd(), HippoOptions::kg()).unwrap();
        let (_, kg_stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(
            kg_stats.membership_queries, 0,
            "KG answers from gathered flags"
        );
        assert!(
            kg_stats.prover.membership_checks > 0,
            "checks still happen, just locally"
        );
    }

    #[test]
    fn core_filter_reduces_prover_calls() {
        // Lots of clean tuples, one conflict.
        let mut rows: Vec<(String, i64)> = (0..50).map(|i| (format!("p{i}"), 100 + i)).collect();
        rows.push(("p0".into(), 999)); // conflict with p0
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                .collect(),
        )
        .unwrap();
        let q = SjudQuery::rel("emp");

        let h_kg = Hippo::with_options(
            {
                let mut d = Database::new();
                d.catalog_mut()
                    .create_table(
                        TableSchema::new(
                            "emp",
                            vec![
                                Column::new("name", DataType::Text),
                                Column::new("salary", DataType::Int),
                            ],
                            &[],
                        )
                        .unwrap(),
                    )
                    .unwrap();
                d.insert_rows(
                    "emp",
                    rows.iter()
                        .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                        .collect(),
                )
                .unwrap();
                d
            },
            fd(),
            HippoOptions::kg(),
        )
        .unwrap();
        let (ans_kg, s_kg) = h_kg.consistent_answers_with_stats(&q).unwrap();

        let h_full = Hippo::with_options(db, fd(), HippoOptions::full()).unwrap();
        let (ans_full, s_full) = h_full.consistent_answers_with_stats(&q).unwrap();

        assert_eq!(ans_kg, ans_full);
        assert!(s_full.prover_calls < s_kg.prover_calls);
        assert_eq!(
            s_full.prover_calls, 2,
            "only the two conflicting tuples reach the prover"
        );
        assert_eq!(s_full.filtered_consistent, 49);
    }

    #[test]
    fn stats_populated() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let (_, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.answers, 0);
        assert!(hippo.detect_stats().combinations_checked > 0);
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn redetect_after_mutation() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        hippo
            .db_mut()
            .execute("INSERT INTO emp VALUES ('ann', 999)")
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(
            !stats.incremental,
            "unrecorded db_mut changes force a full rebuild"
        );
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn incremental_insert_detects_new_conflicts() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        let tids = hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(999)]])
            .unwrap();
        assert_eq!(tids.len(), 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental, "recorded inserts take the delta path");
        assert_eq!(stats.shards_used, 0);
        assert_eq!(hippo.graph().edge_count(), 1);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers, vec![vec![Value::text("bob"), Value::Int(200)]]);
    }

    #[test]
    fn incremental_delete_clears_conflicts() {
        let mut hippo =
            Hippo::new(emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 1);
        // Delete one side of the conflicting pair (tid 1 = second row).
        let n = hippo
            .delete_tuples("emp", &[hippo_engine::TupleId(1)])
            .unwrap();
        assert_eq!(n, 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
        let answers = hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap();
        assert_eq!(answers.len(), 2, "ann(100) is consistent again");
    }

    #[test]
    fn incremental_matches_full_rebuild_over_mixed_batches() {
        // Interleave inserts and deletes (including insert-then-delete of
        // the same tuple within one batch), redetect incrementally, and
        // compare against a freshly built system on the same final data.
        let rows = [("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 50)];
        let mut hippo = Hippo::new(emp_db(&rows), fd()).unwrap();
        let t = hippo
            .insert_tuples(
                "emp",
                vec![
                    vec![Value::text("bob"), Value::Int(301)],
                    vec![Value::text("dee"), Value::Int(7)],
                    vec![Value::text("cyd"), Value::Int(51)],
                ],
            )
            .unwrap();
        hippo
            .delete_tuples("emp", &[hippo_engine::TupleId(0), t[2]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);

        let reference = Hippo::new(
            {
                let mut db = emp_db(&rows);
                let table = db.catalog_mut().table_mut("emp").unwrap();
                table
                    .insert(vec![Value::text("bob"), Value::Int(301)])
                    .unwrap();
                table
                    .insert(vec![Value::text("dee"), Value::Int(7)])
                    .unwrap();
                let c = table
                    .insert(vec![Value::text("cyd"), Value::Int(51)])
                    .unwrap();
                table.delete(hippo_engine::TupleId(0));
                table.delete(c);
                db
            },
            fd(),
        )
        .unwrap();
        let canon = |h: &Hippo| {
            let g = h.graph();
            let mut edges: Vec<(usize, Vec<crate::hypergraph::Vertex>)> = g
                .edges()
                .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(canon(&hippo), canon(&reference));
        assert_eq!(
            hippo.consistent_answers(&SjudQuery::rel("emp")).unwrap(),
            reference
                .consistent_answers(&SjudQuery::rel("emp"))
                .unwrap()
        );
    }

    #[test]
    fn redetect_without_changes_is_a_noop() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("ann", 200)]), fd()).unwrap();
        let before = hippo.detect_stats();
        let stats = hippo.redetect().unwrap();
        assert_eq!(stats, before, "nothing recorded, nothing re-detected");
        assert_eq!(hippo.graph().edge_count(), 1);
    }

    #[test]
    fn incremental_chains_across_multiple_redetects() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(200)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        // Second round on top of the incrementally-maintained state.
        hippo
            .insert_tuples("emp", vec![vec![Value::text("ann"), Value::Int(300)]])
            .unwrap();
        assert!(hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 3, "all pairs of the trio");
        // Full rebuild agrees.
        hippo.redetect_full().unwrap();
        assert_eq!(hippo.graph().edge_count(), 3);
    }

    #[test]
    fn foreign_key_redetect_keeps_orphan_edges() {
        let mut db = Database::new();
        db.execute("CREATE TABLE parent (id INT)").unwrap();
        db.execute("CREATE TABLE child (pid INT, x INT)").unwrap();
        db.execute("INSERT INTO parent VALUES (1)").unwrap();
        db.execute("INSERT INTO child VALUES (1, 10), (2, 20)")
            .unwrap();
        let fk = crate::inclusion::ForeignKey {
            child: "child".into(),
            child_cols: vec![0],
            parent: "parent".into(),
            parent_cols: vec![0],
        };
        let mut hippo = Hippo::with_foreign_keys(db, vec![], vec![fk]).unwrap();
        assert_eq!(hippo.graph().edge_count(), 1, "child(2,·) is orphaned");
        // Regression: redetect used to silently drop orphan edges.
        let stats = hippo.redetect_full().unwrap();
        assert!(!stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 1);
        // Recorded updates also fall back to a full rebuild under fks.
        hippo
            .insert_tuples("child", vec![vec![Value::Int(3), Value::Int(30)]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(!stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 2);
    }

    #[test]
    fn update_tuples_stays_incremental() {
        // Create a conflict by updating, then resolve it by updating back.
        let mut hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        let n = hippo
            .update_tuples(
                "emp",
                vec![(
                    hippo_engine::TupleId(1),
                    vec![Value::text("ann"), Value::Int(999)],
                )],
            )
            .unwrap();
        assert_eq!(n, 1);
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental, "recorded updates take the delta path");
        assert_eq!(hippo.graph().edge_count(), 1, "ann now disagrees with ann");
        assert!(hippo
            .consistent_answers(&SjudQuery::rel("emp"))
            .unwrap()
            .is_empty());
        // Update the same tuple id again to clear the conflict.
        hippo
            .update_tuples(
                "emp",
                vec![(
                    hippo_engine::TupleId(1),
                    vec![Value::text("bob"), Value::Int(200)],
                )],
            )
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
        assert_eq!(
            hippo
                .consistent_answers(&SjudQuery::rel("emp"))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn update_tuples_validates_batch_upfront() {
        let mut hippo = Hippo::new(emp_db(&[("ann", 100)]), fd()).unwrap();
        // Second entry targets a missing tuple: whole batch rejected.
        let err = hippo.update_tuples(
            "emp",
            vec![
                (
                    hippo_engine::TupleId(0),
                    vec![Value::text("ann"), Value::Int(7)],
                ),
                (
                    hippo_engine::TupleId(9),
                    vec![Value::text("x"), Value::Int(8)],
                ),
            ],
        );
        assert!(err.is_err());
        assert_eq!(
            hippo
                .db()
                .catalog()
                .table("emp")
                .unwrap()
                .get(hippo_engine::TupleId(0)),
            Some(&vec![Value::text("ann"), Value::Int(100)]),
            "failed batch leaves the database untouched"
        );
        // Nothing was recorded, so redetect is a no-op on the old stats.
        assert!(!hippo.redetect().unwrap().incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
    }

    #[test]
    fn general_denial_delta_is_seeded_not_outer_scanned() {
        // Exclusion between emp and contractor; the delta lands in the
        // *second* atom, which used to force an O(outer) rescan of emp.
        let mut db = emp_db(&[("ann", 100), ("bob", 200), ("cyd", 300), ("dee", 400)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "contractor",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("rate", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        let constraints = vec![DenialConstraint::exclusion("emp", "contractor", &[(0, 0)])];
        let mut hippo = Hippo::new(db, constraints.clone()).unwrap();
        assert_eq!(hippo.graph().edge_count(), 0);
        hippo
            .insert_tuples("contractor", vec![vec![Value::text("bob"), Value::Int(50)]])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 1, "bob is in both relations");
        // Seeded delta: the new tuple plus its single join match — not
        // the 4-row emp outer atom.
        assert!(
            stats.combinations_checked <= 2,
            "delta join must not rescan the outer atom (checked {})",
            stats.combinations_checked
        );
        // Deleting the tuple clears the conflict incrementally too.
        let last = hippo
            .db()
            .catalog()
            .table("contractor")
            .unwrap()
            .slot_count()
            - 1;
        hippo
            .delete_tuples("contractor", &[hippo_engine::TupleId(last as u32)])
            .unwrap();
        let stats = hippo.redetect().unwrap();
        assert!(stats.incremental);
        assert_eq!(hippo.graph().edge_count(), 0);
    }

    #[test]
    fn prover_thread_count_never_changes_answers_or_stats() {
        let mut rows: Vec<(String, i64)> = (0..60).map(|i| (format!("p{i}"), 100 + i)).collect();
        for c in 0..12 {
            rows.push((format!("p{c}"), 5000 + c)); // conflicting duplicates
        }
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            5000i64,
        )));
        let build = |threads: usize| {
            let mut db = Database::new();
            db.catalog_mut()
                .create_table(
                    TableSchema::new(
                        "emp",
                        vec![
                            Column::new("name", DataType::Text),
                            Column::new("salary", DataType::Int),
                        ],
                        &[],
                    )
                    .unwrap(),
                )
                .unwrap();
            db.insert_rows(
                "emp",
                rows.iter()
                    .map(|(n, s)| vec![Value::text(n.clone()), Value::Int(*s)])
                    .collect(),
            )
            .unwrap();
            Hippo::with_options(db, fd(), HippoOptions::kg().with_prover_threads(threads)).unwrap()
        };
        let (ans1, s1) = build(1).consistent_answers_with_stats(&q).unwrap();
        assert!(s1.prover_calls > 0);
        for threads in [2usize, 4, 8] {
            let (ans, s) = build(threads).consistent_answers_with_stats(&q).unwrap();
            assert_eq!(ans, ans1, "threads={threads}");
            assert_eq!(s.prover_calls, s1.prover_calls);
            assert_eq!(s.prover_cache_hits, s1.prover_cache_hits);
            assert_eq!(s.filtered_consistent, s1.filtered_consistent);
            assert_eq!(s.prover, s1.prover, "prover counters at threads={threads}");
            assert_eq!(s.answers, s1.answers);
        }
    }

    #[test]
    fn closure_cache_collapses_equivalence_classes() {
        // Many conflict-free tuples share one signature class; only the
        // conflicting pair needs real prover runs.
        let mut rows: Vec<(&str, i64)> = vec![("ann", 1), ("ann", 2)];
        let names: Vec<String> = (0..40).map(|i| format!("p{i}")).collect();
        for n in &names {
            rows.push((n.as_str(), 500));
        }
        let db = emp_db(&rows);
        let q = SjudQuery::rel("emp");
        let hippo = Hippo::with_options(db, fd(), HippoOptions::kg()).unwrap();
        let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers.len(), 40);
        assert_eq!(stats.prover_calls, 42, "no core filter: everything proved");
        // The cache is per shard (16 shards here), so each shard pays at
        // most one miss per signature class it sees: ≥ 42 − 16 − 2 hits.
        assert!(
            stats.prover_cache_hits >= 24,
            "conflict-free candidates collapse (hits = {})",
            stats.prover_cache_hits
        );
        assert!(stats.prover.tuples_checked < stats.prover_calls);

        // Differential: disabling the cache changes no answer.
        let db2 = emp_db(&rows);
        let hippo2 =
            Hippo::with_options(db2, fd(), HippoOptions::kg().without_prover_cache()).unwrap();
        let (answers2, stats2) = hippo2.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers, answers2);
        assert_eq!(stats2.prover_cache_hits, 0);
        assert_eq!(stats2.prover.tuples_checked, stats2.prover_calls);
    }

    #[test]
    fn consistent_database_passes_everything_through() {
        let hippo = Hippo::new(emp_db(&[("ann", 100), ("bob", 200)]), fd()).unwrap();
        let (answers, stats) = hippo
            .consistent_answers_with_stats(&SjudQuery::rel("emp"))
            .unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.answers, 2);
        assert_eq!(stats.prover_calls, 0, "core filter accepts everything");
    }
}
