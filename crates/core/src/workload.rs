//! Seeded synthetic workload generators for the experiments and examples.
//!
//! The demonstration's measurements parameterise two knobs: **relation
//! cardinality** and **conflict rate**. [`FdTableSpec`] generates a
//! relation with an FD `key → value` and a controlled fraction of
//! key-colliding, value-disagreeing tuple pairs; [`JoinWorkload`] builds
//! the two-relation join scenario; [`IntegrationWorkload`] mimics the data
//! integration motivation (two autonomous sources merged into one
//! relation, producing conflicts).

use crate::constraint::DenialConstraint;
use hippo_engine::{Column, DataType, Database, EngineError, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Spec for a single relation `name(k INT, v INT, payload INT)` with an FD
/// `k → v` and a controlled number of conflicting pairs.
#[derive(Debug, Clone)]
pub struct FdTableSpec {
    /// Table name.
    pub name: String,
    /// Number of base tuples.
    pub rows: usize,
    /// Fraction of base tuples that receive a conflicting duplicate
    /// (0.0–1.0). Each conflict adds one extra tuple sharing `k` with a
    /// base tuple but carrying a different `v`.
    pub conflict_rate: f64,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl FdTableSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, rows: usize, conflict_rate: f64, seed: u64) -> Self {
        FdTableSpec {
            name: name.into(),
            rows,
            conflict_rate,
            seed,
        }
    }

    /// The relation's FD constraint (`k → v`, i.e. column 0 → column 1).
    pub fn fd(&self) -> DenialConstraint {
        DenialConstraint::functional_dependency(self.name.clone(), &[0], 1)
    }

    /// Create the table and populate it; returns the number of rows
    /// inserted (base + conflicting extras).
    pub fn populate(&self, db: &mut Database) -> Result<usize, EngineError> {
        // `k` is declared as the (violated) primary key: the engine
        // auto-builds a hash index on key columns, which is what lets
        // base-mode membership probes plan as `IndexLookup`s. Key
        // uniqueness is *not* enforced — conflicting pairs share a key,
        // exactly the paper's inconsistent-database setting.
        db.catalog_mut().create_table(TableSchema::new(
            self.name.clone(),
            vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
                Column::new("payload", DataType::Int),
            ],
            &["k"],
        )?)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rows = Vec::with_capacity(self.rows + self.rows / 10);
        for i in 0..self.rows {
            let k = i as i64;
            let v = rng.gen_range(0..1_000_000);
            let payload = rng.gen_range(0..1_000);
            rows.push(vec![Value::Int(k), Value::Int(v), Value::Int(payload)]);
        }
        let n_conflicts = (self.rows as f64 * self.conflict_rate).round() as usize;
        for c in 0..n_conflicts {
            // Conflict with base tuple c: same key, different value.
            let base_v = match &rows[c][1] {
                Value::Int(v) => *v,
                _ => unreachable!(),
            };
            let v = base_v + 1 + rng.gen_range(0..1000);
            let payload = rng.gen_range(0..1_000);
            rows.push(vec![
                Value::Int(c as i64),
                Value::Int(v),
                Value::Int(payload),
            ]);
        }
        let n = rows.len();
        db.insert_rows(&self.name, rows)?;
        Ok(n)
    }
}

/// The two-relation join workload: `r(k, v, payload)` and `s(k, v,
/// payload)` with FDs on both, joinable on `k`.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// Spec for relation `r`.
    pub r: FdTableSpec,
    /// Spec for relation `s`.
    pub s: FdTableSpec,
}

impl JoinWorkload {
    /// Build with equal sizes and a common conflict rate.
    pub fn new(rows: usize, conflict_rate: f64, seed: u64) -> Self {
        JoinWorkload {
            r: FdTableSpec::new("r", rows, conflict_rate, seed),
            s: FdTableSpec::new("s", rows, conflict_rate, seed.wrapping_add(1)),
        }
    }

    /// Populate both relations; returns the Database.
    pub fn build(&self) -> Result<Database, EngineError> {
        let mut db = Database::new();
        self.r.populate(&mut db)?;
        self.s.populate(&mut db)?;
        Ok(db)
    }

    /// Both FD constraints.
    pub fn constraints(&self) -> Vec<DenialConstraint> {
        vec![self.r.fd(), self.s.fd()]
    }
}

/// Data-integration workload: two sources report `(account, balance)`
/// pairs; the integrated relation `ledger` holds the union, with an FD
/// `account → balance`. Overlapping accounts with disagreeing balances
/// produce conflicts — the paper's opening motivation.
#[derive(Debug, Clone)]
pub struct IntegrationWorkload {
    /// Accounts per source.
    pub accounts_per_source: usize,
    /// Fraction of accounts present in both sources (0.0–1.0).
    pub overlap: f64,
    /// Probability that an overlapping account disagrees between sources.
    pub disagreement: f64,
    /// RNG seed.
    pub seed: u64,
}

impl IntegrationWorkload {
    /// Build the integrated database: relation `ledger(account, balance,
    /// source)`.
    pub fn build(&self) -> Result<Database, EngineError> {
        let mut db = Database::new();
        db.catalog_mut().create_table(TableSchema::new(
            "ledger",
            vec![
                Column::new("account", DataType::Int),
                Column::new("balance", DataType::Int),
                Column::new("source", DataType::Int),
            ],
            &[],
        )?)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.accounts_per_source;
        let n_overlap = (n as f64 * self.overlap).round() as usize;
        let mut rows = Vec::new();
        // Source 1: accounts 0..n
        let mut balances = Vec::with_capacity(n);
        for acct in 0..n {
            let b = rng.gen_range(0..100_000);
            balances.push(b);
            rows.push(vec![Value::Int(acct as i64), Value::Int(b), Value::Int(1)]);
        }
        // Source 2: overlapping accounts 0..n_overlap plus fresh n..(2n - n_overlap)
        for (acct, &balance) in balances.iter().enumerate().take(n_overlap) {
            let disagree = rng.gen_bool(self.disagreement);
            let b = if disagree {
                balance + 1 + rng.gen_range(0..10_000)
            } else {
                balance
            };
            rows.push(vec![Value::Int(acct as i64), Value::Int(b), Value::Int(2)]);
        }
        for acct in n..(2 * n - n_overlap) {
            let b = rng.gen_range(0..100_000);
            rows.push(vec![Value::Int(acct as i64), Value::Int(b), Value::Int(2)]);
        }
        db.insert_rows("ledger", rows)?;
        Ok(db)
    }

    /// The integration constraint: one balance per account.
    pub fn constraint(&self) -> DenialConstraint {
        DenialConstraint::functional_dependency("ledger", &[0], 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_conflicts;

    #[test]
    fn fd_table_row_counts() {
        let spec = FdTableSpec::new("t", 100, 0.1, 42);
        let mut db = Database::new();
        let n = spec.populate(&mut db).unwrap();
        assert_eq!(n, 110);
        assert_eq!(db.catalog().table("t").unwrap().len(), 110);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FdTableSpec::new("t", 50, 0.2, 7);
        let mut db1 = Database::new();
        let mut db2 = Database::new();
        spec.populate(&mut db1).unwrap();
        spec.populate(&mut db2).unwrap();
        assert_eq!(
            db1.catalog().table("t").unwrap().rows(),
            db2.catalog().table("t").unwrap().rows()
        );
    }

    #[test]
    fn conflict_rate_translates_to_edges() {
        let spec = FdTableSpec::new("t", 200, 0.05, 3);
        let mut db = Database::new();
        spec.populate(&mut db).unwrap();
        let (g, _) = detect_conflicts(db.catalog(), &[spec.fd()]).unwrap();
        assert_eq!(
            g.edge_count(),
            10,
            "each conflicting extra pairs with exactly one base row"
        );
        assert_eq!(g.conflicting_vertex_count(), 20);
    }

    #[test]
    fn zero_conflict_rate_is_consistent() {
        let spec = FdTableSpec::new("t", 100, 0.0, 5);
        let mut db = Database::new();
        spec.populate(&mut db).unwrap();
        let (g, _) = detect_conflicts(db.catalog(), &[spec.fd()]).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn join_workload_builds_both_tables() {
        let w = JoinWorkload::new(50, 0.1, 11);
        let db = w.build().unwrap();
        assert!(db.catalog().contains("r"));
        assert!(db.catalog().contains("s"));
        assert_eq!(w.constraints().len(), 2);
    }

    #[test]
    fn integration_workload_overlap_conflicts() {
        let w = IntegrationWorkload {
            accounts_per_source: 100,
            overlap: 0.5,
            disagreement: 1.0,
            seed: 9,
        };
        let db = w.build().unwrap();
        let (g, _) = detect_conflicts(db.catalog(), &[w.constraint()]).unwrap();
        assert_eq!(g.edge_count(), 50, "all overlapping accounts disagree");
        let w2 = IntegrationWorkload {
            disagreement: 0.0,
            ..w
        };
        let db2 = w2.build().unwrap();
        let (g2, _) = detect_conflicts(db2.catalog(), &[w2.constraint()]).unwrap();
        assert_eq!(g2.edge_count(), 0, "agreeing sources are consistent");
    }
}
