//! The SJUD query algebra.
//!
//! Hippo computes consistent answers to **SJUD** queries: relational
//! algebra expressions built from **S**election, cartesian product
//! (**J**oin), **U**nion and **D**ifference over base relations, plus the
//! restricted projection the paper allows — one that introduces no
//! existential quantifiers, i.e. a permutation/duplication of columns
//! ([`SjudQuery::Permute`]).
//!
//! A query can be
//! * validated and schema-checked against a catalog,
//! * rendered to SQL text (the form Hippo ships to its RDBMS backend),
//! * evaluated directly over any *instance view* (a `relation name → rows`
//!   function), which is how the naive repair-based ground truth and the
//!   core-filter optimization evaluate queries over hypothetical instances.

use crate::pred::Pred;
use hippo_engine::{Catalog, EngineError, Row};
use hippo_sql::{Expr, Query, SelectCore, SelectItem, SetOp, TableRef};
use std::collections::BTreeSet;

/// An SJUD relational algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SjudQuery {
    /// A base relation.
    Rel(String),
    /// Selection by a quantifier-free predicate.
    Select {
        /// Input expression.
        input: Box<SjudQuery>,
        /// Selection predicate over the input's columns.
        pred: Pred,
    },
    /// Cartesian product.
    Product(Box<SjudQuery>, Box<SjudQuery>),
    /// Set union (same arity both sides).
    Union(Box<SjudQuery>, Box<SjudQuery>),
    /// Set difference (same arity both sides).
    Diff(Box<SjudQuery>, Box<SjudQuery>),
    /// Existential-free projection: output column `i` is input column
    /// `perm[i]`. Every input column must appear at least once (otherwise
    /// the projection would quantify it existentially, leaving the class).
    Permute {
        /// Input expression.
        input: Box<SjudQuery>,
        /// Output-to-input column mapping.
        perm: Vec<usize>,
    },
}

impl SjudQuery {
    /// Base relation.
    pub fn rel(name: impl Into<String>) -> SjudQuery {
        SjudQuery::Rel(name.into())
    }

    /// `σ_pred(self)`.
    pub fn select(self, pred: Pred) -> SjudQuery {
        SjudQuery::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// `self × other`.
    pub fn product(self, other: SjudQuery) -> SjudQuery {
        SjudQuery::Product(Box::new(self), Box::new(other))
    }

    /// `self ∪ other`.
    pub fn union(self, other: SjudQuery) -> SjudQuery {
        SjudQuery::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn diff(self, other: SjudQuery) -> SjudQuery {
        SjudQuery::Diff(Box::new(self), Box::new(other))
    }

    /// Existential-free projection.
    pub fn permute(self, perm: Vec<usize>) -> SjudQuery {
        SjudQuery::Permute {
            input: Box::new(self),
            perm,
        }
    }

    /// Equi-join convenience: `σ_{left_col = right_col}(self × other)`.
    /// Both column positions are *combined* offsets over the product's
    /// columns (left columns first).
    pub fn join_on(self, left_col: usize, other: SjudQuery, right_col: usize) -> SjudQuery {
        self.product(other)
            .select(Pred::cmp_cols(left_col, crate::pred::CmpOp::Eq, right_col))
    }

    /// All base relations referenced (sorted, deduplicated).
    pub fn relations(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_relations(&mut set);
        set.into_iter().collect()
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            SjudQuery::Rel(r) => {
                out.insert(r.clone());
            }
            SjudQuery::Select { input, .. } | SjudQuery::Permute { input, .. } => {
                input.collect_relations(out)
            }
            SjudQuery::Product(l, r) | SjudQuery::Union(l, r) | SjudQuery::Diff(l, r) => {
                l.collect_relations(out);
                r.collect_relations(out);
            }
        }
    }

    /// Does the query contain a difference?
    pub fn has_diff(&self) -> bool {
        match self {
            SjudQuery::Rel(_) => false,
            SjudQuery::Select { input, .. } | SjudQuery::Permute { input, .. } => input.has_diff(),
            SjudQuery::Product(l, r) | SjudQuery::Union(l, r) => l.has_diff() || r.has_diff(),
            SjudQuery::Diff(_, _) => true,
        }
    }

    /// Does the query contain a union?
    pub fn has_union(&self) -> bool {
        match self {
            SjudQuery::Rel(_) => false,
            SjudQuery::Select { input, .. } | SjudQuery::Permute { input, .. } => input.has_union(),
            SjudQuery::Product(l, r) | SjudQuery::Diff(l, r) => l.has_union() || r.has_union(),
            SjudQuery::Union(_, _) => true,
        }
    }

    /// Validate against a catalog and compute the output arity.
    ///
    /// Checks: relations exist, selection predicates stay within arity,
    /// union/difference arities match, permutations are within range and
    /// existential-free (every input column appears).
    pub fn validate(&self, catalog: &Catalog) -> Result<usize, EngineError> {
        match self {
            SjudQuery::Rel(r) => Ok(catalog.table(r)?.schema.arity()),
            SjudQuery::Select { input, pred } => {
                let arity = input.validate(catalog)?;
                if let Some(m) = pred.max_col() {
                    if m >= arity {
                        return Err(EngineError::new(format!(
                            "selection predicate references column {m} but input arity is {arity}"
                        )));
                    }
                }
                Ok(arity)
            }
            SjudQuery::Product(l, r) => Ok(l.validate(catalog)? + r.validate(catalog)?),
            SjudQuery::Union(l, r) | SjudQuery::Diff(l, r) => {
                let la = l.validate(catalog)?;
                let ra = r.validate(catalog)?;
                if la != ra {
                    return Err(EngineError::new(format!(
                        "set operation arity mismatch: {la} vs {ra}"
                    )));
                }
                Ok(la)
            }
            SjudQuery::Permute { input, perm } => {
                let arity = input.validate(catalog)?;
                for &p in perm {
                    if p >= arity {
                        return Err(EngineError::new(format!(
                            "permutation index {p} out of range (arity {arity})"
                        )));
                    }
                }
                for col in 0..arity {
                    if !perm.contains(&col) {
                        return Err(EngineError::new(format!(
                            "projection drops column {col}: it would introduce an existential \
                             quantifier, leaving the supported PSJUD fragment"
                        )));
                    }
                }
                Ok(perm.len())
            }
        }
    }

    /// Render to a SQL query (set semantics). Every level exposes columns
    /// named `c0..c{n-1}`.
    pub fn to_sql_query(&self, catalog: &Catalog) -> Result<Query, EngineError> {
        self.validate(catalog)?;
        self.render(catalog)
    }

    /// Render to SQL text.
    pub fn to_sql(&self, catalog: &Catalog) -> Result<String, EngineError> {
        Ok(hippo_sql::print_query(&self.to_sql_query(catalog)?))
    }

    fn render(&self, catalog: &Catalog) -> Result<Query, EngineError> {
        match self {
            SjudQuery::Rel(r) => {
                let schema = &catalog.table(r)?.schema;
                let mut core = SelectCore::empty();
                core.distinct = true; // set semantics at the leaves
                core.projection = schema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| SelectItem::Expr {
                        expr: Expr::col(c.name.clone()),
                        alias: Some(format!("c{i}")),
                    })
                    .collect();
                core.from = vec![TableRef::Table {
                    name: r.clone(),
                    alias: None,
                }];
                Ok(Query::Select(Box::new(core)))
            }
            SjudQuery::Select { input, pred } => {
                let inner = input.render(catalog)?;
                let mut core = SelectCore::empty();
                core.projection = vec![SelectItem::Wildcard];
                core.from = vec![TableRef::Subquery {
                    query: Box::new(inner),
                    alias: "s".into(),
                }];
                core.filter = Some(pred.to_sql_expr(&|i| Expr::qcol("s", format!("c{i}"))));
                Ok(Query::Select(Box::new(core)))
            }
            SjudQuery::Product(l, r) => {
                let la = l.validate(catalog)?;
                let ra = r.validate(catalog)?;
                let lq = l.render(catalog)?;
                let rq = r.render(catalog)?;
                let mut core = SelectCore::empty();
                core.projection = (0..la)
                    .map(|i| SelectItem::Expr {
                        expr: Expr::qcol("a", format!("c{i}")),
                        alias: Some(format!("c{i}")),
                    })
                    .chain((0..ra).map(|i| SelectItem::Expr {
                        expr: Expr::qcol("b", format!("c{i}")),
                        alias: Some(format!("c{}", la + i)),
                    }))
                    .collect();
                core.from = vec![
                    TableRef::Subquery {
                        query: Box::new(lq),
                        alias: "a".into(),
                    },
                    TableRef::Subquery {
                        query: Box::new(rq),
                        alias: "b".into(),
                    },
                ];
                Ok(Query::Select(Box::new(core)))
            }
            SjudQuery::Union(l, r) => Ok(Query::SetOp {
                op: SetOp::Union,
                all: false,
                left: Box::new(l.render(catalog)?),
                right: Box::new(r.render(catalog)?),
            }),
            SjudQuery::Diff(l, r) => Ok(Query::SetOp {
                op: SetOp::Except,
                all: false,
                left: Box::new(l.render(catalog)?),
                right: Box::new(r.render(catalog)?),
            }),
            SjudQuery::Permute { input, perm } => {
                let inner = input.render(catalog)?;
                let mut core = SelectCore::empty();
                core.distinct = true;
                core.projection = perm
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| SelectItem::Expr {
                        expr: Expr::qcol("s", format!("c{p}")),
                        alias: Some(format!("c{i}")),
                    })
                    .collect();
                core.from = vec![TableRef::Subquery {
                    query: Box::new(inner),
                    alias: "s".into(),
                }];
                Ok(Query::Select(Box::new(core)))
            }
        }
    }

    /// Evaluate directly over an *instance view*: a function from relation
    /// name to rows (set semantics; duplicates in the input are collapsed).
    pub fn eval_over(&self, instance: &impl Fn(&str) -> Vec<Row>) -> Vec<Row> {
        let mut rows = self.eval_inner(instance);
        rows.sort();
        rows.dedup();
        rows
    }

    fn eval_inner(&self, instance: &impl Fn(&str) -> Vec<Row>) -> Vec<Row> {
        match self {
            SjudQuery::Rel(r) => instance(r),
            SjudQuery::Select { input, pred } => input
                .eval_inner(instance)
                .into_iter()
                .filter(|row| pred.eval(row))
                .collect(),
            SjudQuery::Product(l, r) => {
                let lv = l.eval_inner(instance);
                let rv = r.eval_inner(instance);
                let mut out = Vec::with_capacity(lv.len() * rv.len());
                for a in &lv {
                    for b in &rv {
                        let mut row = a.clone();
                        row.extend(b.iter().cloned());
                        out.push(row);
                    }
                }
                out
            }
            SjudQuery::Union(l, r) => {
                let mut lv = l.eval_inner(instance);
                lv.extend(r.eval_inner(instance));
                lv
            }
            SjudQuery::Diff(l, r) => {
                let rv: std::collections::HashSet<Row> =
                    r.eval_inner(instance).into_iter().collect();
                l.eval_inner(instance)
                    .into_iter()
                    .filter(|row| !rv.contains(row))
                    .collect()
            }
            SjudQuery::Permute { input, perm } => input
                .eval_inner(instance)
                .into_iter()
                .map(|row| perm.iter().map(|&p| row[p].clone()).collect())
                .collect(),
        }
    }

    /// Evaluate over the catalog's current contents (ordinary evaluation,
    /// ignoring inconsistency).
    pub fn eval_on_catalog(&self, catalog: &Catalog) -> Result<Vec<Row>, EngineError> {
        self.validate(catalog)?;
        let mut missing: Option<EngineError> = None;
        let rows = self.eval_over(&|rel: &str| match catalog.table(rel) {
            Ok(t) => t.rows(),
            Err(_) => Vec::new(),
        });
        if let Some(e) = missing.take() {
            return Err(e);
        }
        Ok(rows)
    }
}

/// Short display form, e.g. `((r × s) − u)`.
impl std::fmt::Display for SjudQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SjudQuery::Rel(r) => write!(f, "{r}"),
            SjudQuery::Select { input, .. } => write!(f, "σ({input})"),
            SjudQuery::Product(l, r) => write!(f, "({l} × {r})"),
            SjudQuery::Union(l, r) => write!(f, "({l} ∪ {r})"),
            SjudQuery::Diff(l, r) => write!(f, "({l} − {r})"),
            SjudQuery::Permute { input, perm } => write!(f, "π{perm:?}({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for (name, arity) in [("r", 2), ("s", 2), ("u", 2)] {
            let cols = (0..arity)
                .map(|i| Column::new(format!("x{i}"), DataType::Int))
                .collect();
            db.catalog_mut()
                .create_table(TableSchema::new(name, cols, &[]).unwrap())
                .unwrap();
        }
        let rows = |xs: &[(i64, i64)]| {
            xs.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect()
        };
        db.insert_rows("r", rows(&[(1, 10), (2, 20), (3, 30)]))
            .unwrap();
        db.insert_rows("s", rows(&[(1, 100), (2, 200)])).unwrap();
        db.insert_rows("u", rows(&[(1, 10)])).unwrap();
        db
    }

    #[test]
    fn validates_arities() {
        let db = db();
        let q = SjudQuery::rel("r").product(SjudQuery::rel("s"));
        assert_eq!(q.validate(db.catalog()).unwrap(), 4);
        let q = SjudQuery::rel("r").union(SjudQuery::rel("s"));
        assert_eq!(q.validate(db.catalog()).unwrap(), 2);
        let bad = SjudQuery::rel("r").union(SjudQuery::rel("r").product(SjudQuery::rel("s")));
        assert!(bad.validate(db.catalog()).is_err());
    }

    #[test]
    fn validates_predicates_and_permutations() {
        let db = db();
        let q = SjudQuery::rel("r").select(Pred::cmp_const(5, CmpOp::Eq, 1i64));
        assert!(q.validate(db.catalog()).is_err(), "predicate out of range");
        let q = SjudQuery::rel("r").permute(vec![1, 0]);
        assert_eq!(q.validate(db.catalog()).unwrap(), 2);
        let q = SjudQuery::rel("r").permute(vec![1, 0, 1]);
        assert_eq!(q.validate(db.catalog()).unwrap(), 3, "duplication allowed");
        let q = SjudQuery::rel("r").permute(vec![0]);
        let err = q.validate(db.catalog()).unwrap_err();
        assert!(err.message.contains("existential"), "{err}");
    }

    #[test]
    fn unknown_relation_rejected() {
        let db = db();
        assert!(SjudQuery::rel("nope").validate(db.catalog()).is_err());
    }

    #[test]
    fn sql_rendering_matches_direct_eval() {
        let db = db();
        let queries = vec![
            SjudQuery::rel("r"),
            SjudQuery::rel("r").select(Pred::cmp_const(1, CmpOp::Ge, 20i64)),
            SjudQuery::rel("r")
                .product(SjudQuery::rel("s"))
                .select(Pred::cmp_cols(0, CmpOp::Eq, 2)),
            SjudQuery::rel("r").union(SjudQuery::rel("s")),
            SjudQuery::rel("r").diff(SjudQuery::rel("u")),
            SjudQuery::rel("r").permute(vec![1, 0]),
            SjudQuery::rel("r")
                .diff(SjudQuery::rel("u"))
                .union(SjudQuery::rel("s").select(Pred::cmp_const(0, CmpOp::Eq, 1i64))),
        ];
        for q in queries {
            let sql = q.to_sql(db.catalog()).unwrap();
            let mut via_sql = db.query(&sql).unwrap().rows;
            via_sql.sort();
            via_sql.dedup();
            let direct = q.eval_on_catalog(db.catalog()).unwrap();
            assert_eq!(via_sql, direct, "mismatch for {q} ({sql})");
        }
    }

    #[test]
    fn eval_over_instance_view() {
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("u"));
        let rows = q.eval_over(&|rel: &str| match rel {
            "r" => vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            "u" => vec![vec![Value::Int(2)]],
            _ => vec![],
        });
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn eval_is_set_semantics() {
        let q = SjudQuery::rel("r");
        let rows = q.eval_over(&|_| vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn class_predicates() {
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("u"));
        assert!(q.has_diff());
        assert!(!q.has_union());
        let q = SjudQuery::rel("r").union(SjudQuery::rel("s"));
        assert!(q.has_union());
        assert!(!q.has_diff());
    }

    #[test]
    fn display_is_readable() {
        let q = SjudQuery::rel("r")
            .product(SjudQuery::rel("s"))
            .diff(SjudQuery::rel("u"));
        assert_eq!(q.to_string(), "((r × s) − u)");
    }

    #[test]
    fn permute_duplicates_columns_in_sql() {
        let db = db();
        let q = SjudQuery::rel("r").permute(vec![0, 1, 0]);
        let rows = db.query(&q.to_sql(db.catalog()).unwrap()).unwrap().rows;
        for row in rows {
            assert_eq!(row[0], row[2]);
        }
    }
}
