//! Knowledge gathering: the extended-envelope optimization.
//!
//! In the base system, the Prover resolves every literal `fact ∈ D?` with a
//! separate membership query against the RDBMS — the paper identifies this
//! as the dominant cost. Knowledge gathering rewrites the envelope query so
//! the *same single evaluation* also returns, per candidate tuple, the
//! truth of every membership the prover could ask: one extra boolean
//! column (`EXISTS (SELECT … FROM rel WHERE …)`) per literal template.
//! The prover then answers membership checks from the fetched flags and
//! issues **zero** queries against the database.
//!
//! This module also houses the base-mode membership sources. They target
//! a [`SqlBackend`] — the live [`hippo_engine::Database`] or a frozen,
//! `Sync` [`hippo_engine::DbSnapshot`] — and the answer pipeline runs
//! base mode through snapshots: every prover shard owns a
//! [`MemoSqlMembership`], which compiles each literal's probe **once**
//! into a prepared physical plan (an `IndexLookup` when the relation
//! has a covering hash index) and re-executes it per candidate binding,
//! memoized so the shard pays one probe per distinct fact instead of
//! one per check. No SQL text is rendered, parsed or optimized on the
//! hot path.

use crate::formula::{LitTemplate, MembershipTemplate};
use crate::pred::value_to_sql;
use crate::prover::MembershipSource;
use crate::query::SjudQuery;
use hippo_engine::{Catalog, EngineError, Row};
use hippo_sql::{Expr, Query, SelectCore, SelectItem, TableRef};

/// Build the extended envelope query: envelope columns `c0..c{n-1}` plus
/// one membership flag `f0..f{m-1}` per literal template.
pub fn extended_envelope_sql(
    envelope: &SjudQuery,
    template: &MembershipTemplate,
    catalog: &Catalog,
) -> Result<Query, EngineError> {
    let arity = envelope.validate(catalog)?;
    let inner = envelope.to_sql_query(catalog)?;
    let mut core = SelectCore::empty();
    core.from = vec![TableRef::Subquery {
        query: Box::new(inner),
        alias: "e".into(),
    }];
    core.projection = (0..arity)
        .map(|i| SelectItem::Expr {
            expr: Expr::qcol("e", format!("c{i}")),
            alias: Some(format!("c{i}")),
        })
        .collect();
    for (fi, lit) in template.literals.iter().enumerate() {
        core.projection.push(SelectItem::Expr {
            expr: membership_exists_expr(lit, catalog)?,
            alias: Some(format!("f{fi}")),
        });
    }
    Ok(Query::Select(Box::new(core)))
}

/// `EXISTS (SELECT * FROM rel WHERE rel.col_j = e.c{lit.cols[j]} ...)`.
fn membership_exists_expr(lit: &LitTemplate, catalog: &Catalog) -> Result<Expr, EngineError> {
    let schema = &catalog.table(&lit.rel)?.schema;
    if schema.arity() != lit.cols.len() {
        return Err(EngineError::new(format!(
            "literal template arity mismatch for {:?}",
            lit.rel
        )));
    }
    let mut sub = SelectCore::empty();
    sub.projection = vec![SelectItem::Wildcard];
    sub.from = vec![TableRef::Table {
        name: lit.rel.clone(),
        alias: Some("m".into()),
    }];
    let cond = Expr::conjoin(schema.columns.iter().enumerate().map(|(j, col)| {
        Expr::qcol("m", col.name.clone()).eq(Expr::qcol("e", format!("c{}", lit.cols[j])))
    }))
    .expect("relations have at least one column");
    sub.filter = Some(cond);
    Ok(Expr::Exists {
        query: Box::new(Query::Select(Box::new(sub))),
        negated: false,
    })
}

/// The result of one extended-envelope evaluation: candidates plus their
/// prefetched membership flags.
#[derive(Debug, Clone)]
pub struct GatheredCandidates {
    /// Candidate tuples (envelope columns only).
    pub candidates: Vec<Row>,
    /// `flags[i][fi]` = is literal `fi`'s fact (instantiated with candidate
    /// `i`) present in the database?
    pub flags: Vec<Vec<bool>>,
}

/// Split the raw rows of the extended envelope into candidates and flags.
pub fn split_gathered(rows: Vec<Row>, arity: usize, n_literals: usize) -> GatheredCandidates {
    let mut candidates = Vec::with_capacity(rows.len());
    let mut flags = Vec::with_capacity(rows.len());
    for row in rows {
        debug_assert_eq!(row.len(), arity + n_literals);
        let mut it = row.into_iter();
        let cand: Row = it.by_ref().take(arity).collect();
        let f: Vec<bool> = it.map(|v| v == hippo_engine::Value::Bool(true)).collect();
        candidates.push(cand);
        flags.push(f);
    }
    GatheredCandidates { candidates, flags }
}

/// A [`MembershipSource`] answering from gathered flags for the current
/// candidate. Construction is allocation-free: it borrows the template,
/// the candidate tuple and the flag slice — which is what makes it the
/// per-candidate view of the **parallel answer pipeline** (see
/// [`crate::hippo`]): every prover shard builds one of these per
/// candidate over the shared read-only flag matrix and passes it `&mut`
/// into [`crate::prover::Prover::is_consistent_answer`]; no shard ever
/// touches the engine handle.
///
/// The prover only ever asks about the facts the literal templates produce
/// for the current tuple, and it knows *which* literal it is asking about,
/// so the fast path ([`MembershipSource::literal_in_db`]) is a bare array
/// access into the prefetched flags — no hashing, no allocation, no
/// comparison. The by-value path ([`MembershipSource::fact_in_db`]) is
/// kept for generic callers and matches the (query-size-bounded) literal
/// templates against the borrowed key column-by-column, so no fact is ever
/// instantiated; the former `HashMap<(String, Row), bool>` keyed lookup —
/// which cloned the relation name *and* the row on every probe — is gone.
pub struct GatheredMembership<'a> {
    template: &'a MembershipTemplate,
    tuple: &'a Row,
    flags: &'a [bool],
    /// Checks that could not be answered from gathered knowledge (should
    /// stay zero; tested).
    pub misses: usize,
}

impl<'a> GatheredMembership<'a> {
    /// Build for one candidate; `flags` are the prefetched per-literal
    /// membership answers, parallel to `template.literals`.
    pub fn for_candidate(
        template: &'a MembershipTemplate,
        tuple: &'a Row,
        flags: &'a [bool],
    ) -> GatheredMembership<'a> {
        debug_assert_eq!(template.literals.len(), flags.len());
        GatheredMembership {
            template,
            tuple,
            flags,
            misses: 0,
        }
    }

    /// Would literal `lit`, instantiated with the current tuple, produce
    /// exactly the fact `(rel, values)`? Borrowed comparison, no build.
    fn literal_matches(&self, lit: &LitTemplate, rel: &str, values: &Row) -> bool {
        lit.rel == rel
            && lit.cols.len() == values.len()
            && lit
                .cols
                .iter()
                .zip(values)
                .all(|(&c, v)| &self.tuple[c] == v)
    }
}

impl MembershipSource for GatheredMembership<'_> {
    fn fact_in_db(&mut self, rel: &str, values: &Row) -> Result<bool, EngineError> {
        match self
            .template
            .literals
            .iter()
            .position(|lit| self.literal_matches(lit, rel, values))
        {
            Some(fi) => Ok(self.flags[fi]),
            None => {
                self.misses += 1;
                Err(EngineError::new(format!(
                    "knowledge gathering miss for fact {rel}{values:?}"
                )))
            }
        }
    }

    fn literal_in_db(&mut self, li: usize, _rel: &str, _values: &Row) -> Result<bool, EngineError> {
        Ok(self.flags[li])
    }
}

/// A read-only SQL backend the base-mode membership path can target:
/// either the live engine handle ([`hippo_engine::Database`]) or a
/// frozen, `Sync` [`hippo_engine::DbSnapshot`] — the latter is what lets
/// base-mode prover shards issue membership SQL from worker threads.
pub trait SqlBackend {
    /// The catalog the membership SQL is built against.
    fn catalog(&self) -> &Catalog;
    /// Evaluate one `SELECT` and return its rows.
    fn query_rows(&self, sql: &str) -> Result<Vec<Row>, EngineError>;
}

impl SqlBackend for hippo_engine::Database {
    fn catalog(&self) -> &Catalog {
        hippo_engine::Database::catalog(self)
    }
    fn query_rows(&self, sql: &str) -> Result<Vec<Row>, EngineError> {
        Ok(self.query(sql)?.rows)
    }
}

impl SqlBackend for hippo_engine::DbSnapshot {
    fn catalog(&self) -> &Catalog {
        hippo_engine::DbSnapshot::catalog(self)
    }
    fn query_rows(&self, sql: &str) -> Result<Vec<Row>, EngineError> {
        Ok(self.query(sql)?.rows)
    }
}

/// Render the membership probe `SELECT 1 FROM rel WHERE col = v … LIMIT 1`.
fn membership_probe_sql(catalog: &Catalog, rel: &str, values: &Row) -> Result<String, EngineError> {
    let schema = &catalog.table(rel)?.schema;
    let mut core = SelectCore::empty();
    core.projection = vec![SelectItem::Expr {
        expr: Expr::int(1),
        alias: None,
    }];
    core.from = vec![TableRef::Table {
        name: rel.to_string(),
        alias: None,
    }];
    core.filter = Expr::conjoin(
        schema
            .columns
            .iter()
            .zip(values)
            .map(|(c, v)| Expr::col(c.name.clone()).eq(value_to_sql(v))),
    );
    core.limit = Some(1);
    Ok(hippo_sql::print_query(&Query::Select(Box::new(core))))
}

/// A [`MembershipSource`] that issues one SQL membership query per check —
/// the base system's behaviour, whose cost the KG optimization removes.
/// Generic over the [`SqlBackend`]: the sequential path targets the live
/// [`hippo_engine::Database`], the sharded base-mode pipeline targets a
/// [`hippo_engine::DbSnapshot`].
pub struct SqlMembership<'a, B: SqlBackend = hippo_engine::Database> {
    /// The backend to query.
    pub db: &'a B,
    /// Number of SQL queries issued.
    pub queries_issued: usize,
}

impl<'a, B: SqlBackend> SqlMembership<'a, B> {
    /// Constructor.
    pub fn new(db: &'a B) -> Self {
        SqlMembership {
            db,
            queries_issued: 0,
        }
    }
}

impl<B: SqlBackend> MembershipSource for SqlMembership<'_, B> {
    fn fact_in_db(&mut self, rel: &str, values: &Row) -> Result<bool, EngineError> {
        let sql = membership_probe_sql(self.db.catalog(), rel, values)?;
        self.queries_issued += 1;
        Ok(!self.db.query_rows(&sql)?.is_empty())
    }
}

/// One literal's membership probe, compiled **once** to a prepared
/// physical plan and re-executed per candidate binding.
struct PreparedProbe {
    /// The physical plan: `LimitExec 1` over `ProjectExec [1]` over the
    /// chosen access path — an `IndexLookup` keyed by `Param`s when the
    /// relation has a covering index, a filtered `SeqScan` otherwise.
    plan: hippo_engine::PhysicalPlan,
    /// Whether the chosen access path is an index lookup.
    uses_index: bool,
}

impl PreparedProbe {
    /// Compile the probe `SELECT 1 FROM rel WHERE c0 = $0 AND … LIMIT 1`
    /// for `lit`'s relation: build the logical pipeline with `Param`
    /// placeholders, then let the optimizer pick the access path.
    /// Parameter bindings come from candidate projections over the same
    /// columns, so their types always match (or are `NULL`, which
    /// matches nothing) — the contract index-safe `Param` keys require.
    fn compile(
        catalog: &Catalog,
        lit: &LitTemplate,
        use_indexes: bool,
    ) -> Result<PreparedProbe, EngineError> {
        use hippo_engine::BoundExpr;
        let schema = &catalog.table(&lit.rel)?.schema;
        if schema.arity() != lit.cols.len() {
            return Err(EngineError::new(format!(
                "literal template arity mismatch for {:?}",
                lit.rel
            )));
        }
        let predicate = BoundExpr::conjoin((0..schema.arity()).map(|j| BoundExpr::Binary {
            op: hippo_sql::BinaryOp::Eq,
            left: Box::new(BoundExpr::Column(j)),
            right: Box::new(BoundExpr::Param(j)),
        }));
        let plan = hippo_engine::LogicalPlan::Limit {
            input: Box::new(hippo_engine::LogicalPlan::Project {
                input: Box::new(hippo_engine::LogicalPlan::Filter {
                    input: Box::new(hippo_engine::LogicalPlan::Scan {
                        table: lit.rel.clone(),
                    }),
                    predicate,
                }),
                exprs: vec![BoundExpr::Literal(hippo_engine::Value::Int(1))],
            }),
            limit: Some(1),
            offset: 0,
        };
        let plan = hippo_engine::physicalize_with(
            plan,
            catalog,
            &hippo_engine::PhysicalOptions { use_indexes },
        );
        let uses_index = plan.uses_index();
        Ok(PreparedProbe { plan, uses_index })
    }
}

/// The base-mode shard's flag gatherer: resolves the per-literal
/// membership flags of one candidate through **prepared physical
/// probes** against a frozen snapshot, memoized per literal. At
/// construction each literal's probe is compiled once — access path
/// and all — so the steady state has no SQL text, no parsing, no
/// binding and no optimization: a memo miss is one
/// [`hippo_engine::DbSnapshot::run_prepared`] call, which on an
/// indexed relation is a hash-bucket probe (O(1) per candidate) and on
/// an unindexed one an early-exiting scan. The memo is keyed by
/// `(literal, projected key values)` and lives for the whole shard, so
/// across a shard's candidates each distinct fact pays exactly one
/// probe — the per-shard analog of what knowledge gathering prefetches
/// in one envelope query. Shards are fixed slices of the candidate
/// list, so `queries_issued` / `memo_hits` / the probe-kind counters
/// are bit-identical for any worker count.
pub struct MemoSqlMembership<'a> {
    snapshot: &'a hippo_engine::DbSnapshot,
    template: &'a MembershipTemplate,
    /// Per-literal prepared probe plans, parallel to `template.literals`.
    probes: Vec<PreparedProbe>,
    /// Per-literal memo: projected literal row → membership flag. (The
    /// template already dedups identical literals, so per-literal slots
    /// never probe the same fact twice for one candidate; the memo's
    /// win is *across* candidates — shared projections of product /
    /// permuted candidates, and any repeated envelope row.)
    memo: Vec<rustc_hash::FxHashMap<Row, bool>>,
    /// Reusable projection buffer.
    row_buf: Row,
    /// Probes actually executed (memo misses).
    pub queries_issued: usize,
    /// Checks answered from the memo.
    pub memo_hits: usize,
    /// Executed probes whose access path was an `IndexLookup`.
    pub index_probes: usize,
    /// Executed probes whose access path was a sequential scan.
    pub scan_probes: usize,
    /// Per-call budget governing the probe executions (stage
    /// `"membership"`); `None` on ungoverned calls — the probes then
    /// run the exact pre-governance path.
    budget: Option<&'a hippo_engine::Budget>,
}

impl<'a> MemoSqlMembership<'a> {
    /// Compile one prepared probe per literal template against the
    /// snapshot's catalog. `use_indexes` selects the access path
    /// (`false` forces the sequential-scan plans — the pre-optimizer
    /// behaviour, kept for differential tests and ablations).
    pub fn new(
        snapshot: &'a hippo_engine::DbSnapshot,
        template: &'a MembershipTemplate,
        use_indexes: bool,
    ) -> Result<Self, EngineError> {
        let probes = template
            .literals
            .iter()
            .map(|lit| PreparedProbe::compile(snapshot.catalog(), lit, use_indexes))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MemoSqlMembership {
            snapshot,
            template,
            probes,
            memo: vec![rustc_hash::FxHashMap::default(); template.literals.len()],
            row_buf: Row::new(),
            queries_issued: 0,
            memo_hits: 0,
            index_probes: 0,
            scan_probes: 0,
            budget: None,
        })
    }

    /// Govern this gatherer's probe executions: each executed probe
    /// charges its result rows against `budget` and checks it under the
    /// `"membership"` stage label.
    pub fn with_budget(mut self, budget: Option<&'a hippo_engine::Budget>) -> Self {
        self.budget = budget;
        self
    }

    /// Resolve every literal's membership flag for `candidate` into
    /// `flags` (cleared first), consulting the memo before the snapshot.
    pub fn gather_flags(
        &mut self,
        candidate: &Row,
        flags: &mut Vec<bool>,
    ) -> Result<(), EngineError> {
        flags.clear();
        for (li, lit) in self.template.literals.iter().enumerate() {
            self.row_buf.clear();
            self.row_buf
                .extend(lit.cols.iter().map(|&c| candidate[c].clone()));
            let memo = &mut self.memo[li];
            let flag = match memo.get(self.row_buf.as_slice()) {
                Some(&b) => {
                    self.memo_hits += 1;
                    b
                }
                None => {
                    let probe = &self.probes[li];
                    self.queries_issued += 1;
                    if probe.uses_index {
                        self.index_probes += 1;
                    } else {
                        self.scan_probes += 1;
                    }
                    // Execute against the frozen catalog directly and
                    // count locally — per-probe atomics on the shared
                    // snapshot stats would contend across shards at
                    // sub-microsecond probe cost. The totals fold into
                    // the snapshot in one `record_prepared` call when
                    // the shard finishes (see `flush_backend_stats`).
                    let b = !hippo_engine::exec::execute_physical_params_governed(
                        &probe.plan,
                        self.snapshot.catalog(),
                        &self.row_buf,
                        self.budget,
                        "membership",
                    )?
                    .is_empty();
                    memo.insert(self.row_buf.clone(), b);
                    b
                }
            };
            flags.push(flag);
        }
        Ok(())
    }

    /// Fold this gatherer's probe totals into the snapshot's statistics
    /// in one batch (exact accounting, one atomic round instead of one
    /// per probe). Call once when the shard is done.
    pub fn flush_backend_stats(&self) {
        self.snapshot
            .record_prepared(self.queries_issued, self.index_probes, self.scan_probes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::envelope;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for name in ["r", "s"] {
            db.catalog_mut()
                .create_table(
                    TableSchema::new(
                        name,
                        vec![
                            Column::new("a", DataType::Int),
                            Column::new("b", DataType::Int),
                        ],
                        &[],
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        db.insert_rows(
            "r",
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        db.insert_rows("s", vec![vec![Value::Int(1), Value::Int(10)]])
            .unwrap();
        db
    }

    #[test]
    fn extended_envelope_carries_flags() {
        let db = db();
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("s"));
        let env = envelope(&q);
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        assert_eq!(template.literals.len(), 2);
        let sql_q = extended_envelope_sql(&env, &template, db.catalog()).unwrap();
        let sql = hippo_sql::print_query(&sql_q);
        let result = db.query(&sql).unwrap();
        assert_eq!(result.columns, vec!["c0", "c1", "f0", "f1"]);
        let gathered = split_gathered(result.rows, 2, 2);
        assert_eq!(gathered.candidates.len(), 2);
        // Candidate (1,10): in r (f0) and in s (f1). Candidate (2,20): in r only.
        for (cand, flags) in gathered.candidates.iter().zip(&gathered.flags) {
            if cand[0] == Value::Int(1) {
                assert_eq!(flags, &vec![true, true]);
            } else {
                assert_eq!(flags, &vec![true, false]);
            }
        }
    }

    #[test]
    fn gathered_membership_answers_without_queries() {
        let db = db();
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("s"));
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let tuple = vec![Value::Int(1), Value::Int(10)];
        let mut m = GatheredMembership::for_candidate(&template, &tuple, &[true, false]);
        assert!(m.fact_in_db("r", &tuple).unwrap());
        assert!(!m.fact_in_db("s", &tuple).unwrap());
        assert_eq!(m.misses, 0);
        // Unknown fact is a miss (the prover never asks for one).
        assert!(m
            .fact_in_db("r", &vec![Value::Int(9), Value::Int(9)])
            .is_err());
        assert_eq!(m.misses, 1);
    }

    #[test]
    fn sql_membership_counts_queries() {
        let db = db();
        let mut m = SqlMembership::new(&db);
        assert!(m
            .fact_in_db("r", &vec![Value::Int(1), Value::Int(10)])
            .unwrap());
        assert!(!m
            .fact_in_db("r", &vec![Value::Int(9), Value::Int(9)])
            .unwrap());
        assert_eq!(m.queries_issued, 2);
    }

    #[test]
    fn flags_agree_with_sql_membership() {
        let db = db();
        let q = SjudQuery::rel("r")
            .select(Pred::cmp_const(1, CmpOp::Ge, 0i64))
            .diff(SjudQuery::rel("s"));
        let env = envelope(&q);
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let sql_q = extended_envelope_sql(&env, &template, db.catalog()).unwrap();
        let result = db.query(&hippo_sql::print_query(&sql_q)).unwrap();
        let arity = 2;
        let gathered = split_gathered(result.rows, arity, template.literals.len());
        let mut sqlm = SqlMembership::new(&db);
        for (cand, flags) in gathered.candidates.iter().zip(&gathered.flags) {
            for (fi, lit) in template.literals.iter().enumerate() {
                let fact = lit.instantiate(cand);
                let expected = sqlm.fact_in_db(&fact.rel, &fact.values).unwrap();
                assert_eq!(flags[fi], expected, "candidate {cand:?} literal {fi}");
            }
        }
    }
}
