//! Membership formulas: `t ∈ Q(D')` as a boolean combination of base-fact
//! literals.
//!
//! Because the supported fragment has no existential quantifiers, whether a
//! candidate tuple `t` belongs to `Q(D')` depends only on the membership of
//! finitely many *base facts whose values are slices of `t`*:
//!
//! * relation leaf → one literal,
//! * selection → a guard evaluable on `t` directly,
//! * product → split `t`,
//! * union → disjunction, difference → `… ∧ ¬…`,
//! * permutation → inverse image (plus consistency guards for duplicated
//!   columns).
//!
//! The *template* ([`FormulaTemplate`]) is built once per query; it is
//! instantiated per candidate tuple into a ground [`Formula`], which the
//! prover negates and converts to DNF. Since formula size is bounded by
//! query size, DNF conversion costs a constant per tuple — this is the
//! core of the paper's polynomial data complexity argument.

use crate::hypergraph::Fact;
use crate::pred::Pred;
use crate::query::SjudQuery;
use hippo_engine::{Catalog, EngineError, Row};

/// A literal template: a base fact whose values are the candidate tuple's
/// columns at `cols`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LitTemplate {
    /// Relation name.
    pub rel: String,
    /// For each column of the relation, the candidate-tuple column that
    /// supplies its value.
    pub cols: Vec<usize>,
}

impl LitTemplate {
    /// Instantiate against a candidate tuple.
    pub fn instantiate(&self, tuple: &Row) -> Fact {
        Fact::new(
            self.rel.clone(),
            self.cols.iter().map(|&c| tuple[c].clone()).collect(),
        )
    }
}

/// The membership-formula template of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum FormulaTemplate {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A base-fact literal (index into the template's literal table).
    Lit(usize),
    /// A guard over the candidate tuple (from selections / permutation
    /// consistency).
    Guard(Pred),
    /// Conjunction.
    And(Box<FormulaTemplate>, Box<FormulaTemplate>),
    /// Disjunction.
    Or(Box<FormulaTemplate>, Box<FormulaTemplate>),
    /// Negation.
    Not(Box<FormulaTemplate>),
}

/// A compiled membership template: the structure plus the literal table.
#[derive(Debug, Clone)]
pub struct MembershipTemplate {
    /// Formula structure.
    pub formula: FormulaTemplate,
    /// Distinct literal templates, referenced by index from
    /// [`FormulaTemplate::Lit`].
    pub literals: Vec<LitTemplate>,
}

impl MembershipTemplate {
    /// Build the membership template for `query` (validated against the
    /// catalog; the query must be within the supported fragment).
    pub fn build(query: &SjudQuery, catalog: &Catalog) -> Result<MembershipTemplate, EngineError> {
        let arity = query.validate(catalog)?;
        let mut literals = Vec::new();
        let mapping: Vec<usize> = (0..arity).collect();
        let formula = build_rec(query, catalog, &mapping, &mut literals)?;
        Ok(MembershipTemplate { formula, literals })
    }

    /// Instantiate for a candidate tuple: guards are decided immediately,
    /// literals become ground facts.
    pub fn instantiate(&self, tuple: &Row) -> Formula {
        instantiate_rec(&self.formula, tuple, &self.literals)
    }

    /// All guard predicates of the template, in deterministic pre-order.
    /// The instantiated formula — and therefore the prover's verdict —
    /// is fully determined by the truth of these guards on the candidate
    /// plus the per-literal membership/conflict state, which is what
    /// makes the closure-signature cache (see [`crate::hippo`]) sound.
    pub fn guards(&self) -> Vec<&Pred> {
        fn walk<'a>(t: &'a FormulaTemplate, out: &mut Vec<&'a Pred>) {
            match t {
                FormulaTemplate::True | FormulaTemplate::False | FormulaTemplate::Lit(_) => {}
                FormulaTemplate::Guard(p) => out.push(p),
                FormulaTemplate::And(a, b) | FormulaTemplate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                FormulaTemplate::Not(inner) => walk(inner, out),
            }
        }
        let mut out = Vec::new();
        walk(&self.formula, &mut out);
        out
    }
}

fn build_rec(
    q: &SjudQuery,
    catalog: &Catalog,
    mapping: &[usize],
    literals: &mut Vec<LitTemplate>,
) -> Result<FormulaTemplate, EngineError> {
    match q {
        SjudQuery::Rel(rel) => {
            let lit = LitTemplate {
                rel: rel.clone(),
                cols: mapping.to_vec(),
            };
            let idx = match literals.iter().position(|l| *l == lit) {
                Some(i) => i,
                None => {
                    literals.push(lit);
                    literals.len() - 1
                }
            };
            Ok(FormulaTemplate::Lit(idx))
        }
        SjudQuery::Select { input, pred } => {
            // The predicate speaks about the input's columns, which under
            // `mapping` live at candidate positions mapping[i].
            let guard = pred.map_cols(&|i| mapping[i]);
            let inner = build_rec(input, catalog, mapping, literals)?;
            Ok(and(FormulaTemplate::Guard(guard), inner))
        }
        SjudQuery::Product(l, r) => {
            let la = l.validate(catalog)?;
            let (ml, mr) = mapping.split_at(la);
            let fl = build_rec(l, catalog, ml, literals)?;
            let fr = build_rec(r, catalog, mr, literals)?;
            Ok(and(fl, fr))
        }
        SjudQuery::Union(l, r) => {
            let fl = build_rec(l, catalog, mapping, literals)?;
            let fr = build_rec(r, catalog, mapping, literals)?;
            Ok(or(fl, fr))
        }
        SjudQuery::Diff(l, r) => {
            let fl = build_rec(l, catalog, mapping, literals)?;
            let fr = build_rec(r, catalog, mapping, literals)?;
            Ok(and(fl, FormulaTemplate::Not(Box::new(fr))))
        }
        SjudQuery::Permute { input, perm } => {
            // Output column i = input column perm[i]; candidate position of
            // output column i is mapping[i]. For the inverse image, input
            // column j gets the candidate position of any i with perm[i]=j;
            // duplicated occurrences must agree (consistency guards).
            let in_arity = input.validate(catalog)?;
            let mut inv: Vec<Option<usize>> = vec![None; in_arity];
            let mut guards = Pred::True;
            for (i, &j) in perm.iter().enumerate() {
                match inv[j] {
                    None => inv[j] = Some(mapping[i]),
                    Some(first) => {
                        guards =
                            guards.and(Pred::cmp_cols(first, crate::pred::CmpOp::Eq, mapping[i]));
                    }
                }
            }
            let inner_mapping: Vec<usize> = inv
                .into_iter()
                .map(|o| o.expect("validate() guarantees surjectivity"))
                .collect();
            let inner = build_rec(input, catalog, &inner_mapping, literals)?;
            Ok(and(FormulaTemplate::Guard(guards), inner))
        }
    }
}

fn and(a: FormulaTemplate, b: FormulaTemplate) -> FormulaTemplate {
    match (a, b) {
        (FormulaTemplate::True, x) | (x, FormulaTemplate::True) => x,
        (FormulaTemplate::False, _) | (_, FormulaTemplate::False) => FormulaTemplate::False,
        (FormulaTemplate::Guard(Pred::True), x) | (x, FormulaTemplate::Guard(Pred::True)) => x,
        (a, b) => FormulaTemplate::And(Box::new(a), Box::new(b)),
    }
}

fn or(a: FormulaTemplate, b: FormulaTemplate) -> FormulaTemplate {
    match (a, b) {
        (FormulaTemplate::False, x) | (x, FormulaTemplate::False) => x,
        (FormulaTemplate::True, _) | (_, FormulaTemplate::True) => FormulaTemplate::True,
        (a, b) => FormulaTemplate::Or(Box::new(a), Box::new(b)),
    }
}

/// A ground membership formula over literal indices.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Constant.
    Const(bool),
    /// Literal `lit_index ∈ D'` (possibly negated).
    Lit {
        /// Index into the template's literal table.
        index: usize,
        /// Negated occurrence.
        negated: bool,
    },
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

fn instantiate_rec(t: &FormulaTemplate, tuple: &Row, _literals: &[LitTemplate]) -> Formula {
    match t {
        FormulaTemplate::True => Formula::Const(true),
        FormulaTemplate::False => Formula::Const(false),
        FormulaTemplate::Lit(i) => Formula::Lit {
            index: *i,
            negated: false,
        },
        FormulaTemplate::Guard(p) => Formula::Const(p.eval(tuple)),
        FormulaTemplate::And(a, b) => {
            let fa = instantiate_rec(a, tuple, _literals);
            let fb = instantiate_rec(b, tuple, _literals);
            match (fa, fb) {
                (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::Const(false),
                (Formula::Const(true), x) | (x, Formula::Const(true)) => x,
                (x, y) => Formula::And(vec![x, y]),
            }
        }
        FormulaTemplate::Or(a, b) => {
            let fa = instantiate_rec(a, tuple, _literals);
            let fb = instantiate_rec(b, tuple, _literals);
            match (fa, fb) {
                (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::Const(true),
                (Formula::Const(false), x) | (x, Formula::Const(false)) => x,
                (x, y) => Formula::Or(vec![x, y]),
            }
        }
        FormulaTemplate::Not(inner) => negate(instantiate_rec(inner, tuple, _literals)),
    }
}

/// Negate a ground formula (push negation to literals, NNF).
pub fn negate(f: Formula) -> Formula {
    match f {
        Formula::Const(b) => Formula::Const(!b),
        Formula::Lit { index, negated } => Formula::Lit {
            index,
            negated: !negated,
        },
        Formula::And(parts) => Formula::Or(parts.into_iter().map(negate).collect()),
        Formula::Or(parts) => Formula::And(parts.into_iter().map(negate).collect()),
    }
}

/// One DNF disjunct: positive and negative literal indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Disjunct {
    /// Literals that must be **in** the repair.
    pub positive: Vec<usize>,
    /// Literals that must be **out** of the repair.
    pub negative: Vec<usize>,
}

impl Disjunct {
    /// Contradictory disjunct (same literal both polarities)?
    pub fn contradictory(&self) -> bool {
        self.positive.iter().any(|p| self.negative.contains(p))
    }
}

/// Convert a ground NNF formula to DNF. Formula size is bounded by query
/// size, so the blow-up is a query constant, not data-dependent.
pub fn to_dnf(f: &Formula) -> Vec<Disjunct> {
    match f {
        Formula::Const(true) => vec![Disjunct::default()],
        Formula::Const(false) => vec![],
        Formula::Lit { index, negated } => {
            let mut d = Disjunct::default();
            if *negated {
                d.negative.push(*index);
            } else {
                d.positive.push(*index);
            }
            vec![d]
        }
        Formula::Or(parts) => parts.iter().flat_map(to_dnf).collect(),
        Formula::And(parts) => {
            let mut acc = vec![Disjunct::default()];
            for p in parts {
                let ds = to_dnf(p);
                let mut next = Vec::with_capacity(acc.len() * ds.len());
                for a in &acc {
                    for d in &ds {
                        let mut m = a.clone();
                        m.positive.extend(d.positive.iter().copied());
                        m.negative.extend(d.negative.iter().copied());
                        m.positive.sort_unstable();
                        m.positive.dedup();
                        m.negative.sort_unstable();
                        m.negative.dedup();
                        if !m.contradictory() {
                            next.push(m);
                        }
                    }
                }
                acc = next;
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
    }
}

/// Evaluate a ground formula under an assignment of literal truth values.
pub fn eval_formula(f: &Formula, truth: &impl Fn(usize) -> bool) -> bool {
    match f {
        Formula::Const(b) => *b,
        Formula::Lit { index, negated } => truth(*index) != *negated,
        Formula::And(parts) => parts.iter().all(|p| eval_formula(p, truth)),
        Formula::Or(parts) => parts.iter().any(|p| eval_formula(p, truth)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for name in ["r", "s"] {
            db.catalog_mut()
                .create_table(
                    TableSchema::new(
                        name,
                        vec![
                            Column::new("a", DataType::Int),
                            Column::new("b", DataType::Int),
                        ],
                        &[],
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        db
    }

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn relation_leaf_is_single_literal() {
        let db = db();
        let t = MembershipTemplate::build(&SjudQuery::rel("r"), db.catalog()).unwrap();
        assert_eq!(
            t.literals,
            vec![LitTemplate {
                rel: "r".into(),
                cols: vec![0, 1]
            }]
        );
        let f = t.instantiate(&row(&[1, 2]));
        assert_eq!(
            f,
            Formula::Lit {
                index: 0,
                negated: false
            }
        );
        assert_eq!(
            t.literals[0].instantiate(&row(&[1, 2])),
            Fact::new("r", row(&[1, 2]))
        );
    }

    #[test]
    fn selection_becomes_guard() {
        let db = db();
        let q = SjudQuery::rel("r").select(Pred::cmp_const(0, CmpOp::Gt, 5i64));
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        // Guard true: formula is the literal; guard false: formula is false.
        assert_eq!(
            t.instantiate(&row(&[9, 0])),
            Formula::Lit {
                index: 0,
                negated: false
            }
        );
        assert_eq!(t.instantiate(&row(&[1, 0])), Formula::Const(false));
    }

    #[test]
    fn product_splits_columns() {
        let db = db();
        let q = SjudQuery::rel("r").product(SjudQuery::rel("s"));
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        assert_eq!(t.literals.len(), 2);
        assert_eq!(t.literals[0].cols, vec![0, 1]);
        assert_eq!(t.literals[1].cols, vec![2, 3]);
        let f = t.instantiate(&row(&[1, 2, 3, 4]));
        let Formula::And(parts) = f else {
            panic!("{f:?}")
        };
        assert_eq!(parts.len(), 2);
        assert_eq!(
            t.literals[1].instantiate(&row(&[1, 2, 3, 4])),
            Fact::new("s", row(&[3, 4]))
        );
    }

    #[test]
    fn union_and_diff_structure() {
        let db = db();
        let q = SjudQuery::rel("r").union(SjudQuery::rel("s"));
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        assert!(matches!(t.instantiate(&row(&[1, 2])), Formula::Or(_)));
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("s"));
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let Formula::And(parts) = t.instantiate(&row(&[1, 2])) else {
            panic!()
        };
        assert_eq!(
            parts[1],
            Formula::Lit {
                index: 1,
                negated: true
            }
        );
    }

    #[test]
    fn identical_leaves_share_a_literal() {
        let db = db();
        // r − σ(r): both leaves have the same (rel, cols) template.
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("r").select(Pred::cmp_const(
            0,
            CmpOp::Lt,
            0i64,
        )));
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        assert_eq!(t.literals.len(), 1);
    }

    #[test]
    fn permute_inverse_image() {
        let db = db();
        let q = SjudQuery::rel("r").permute(vec![1, 0]);
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        // candidate (x, y) corresponds to base fact r(y, x)
        assert_eq!(t.literals[0].cols, vec![1, 0]);
        assert_eq!(
            t.literals[0].instantiate(&row(&[10, 20])),
            Fact::new("r", row(&[20, 10]))
        );
    }

    #[test]
    fn permute_duplicate_columns_add_consistency_guard() {
        let db = db();
        let q = SjudQuery::rel("r").permute(vec![0, 1, 0]);
        let t = MembershipTemplate::build(&q, db.catalog()).unwrap();
        // candidate (x, y, z): requires x = z
        assert_eq!(t.instantiate(&row(&[1, 2, 3])), Formula::Const(false));
        assert!(matches!(
            t.instantiate(&row(&[1, 2, 1])),
            Formula::Lit { .. }
        ));
    }

    #[test]
    fn negate_flips_polarity_in_nnf() {
        let f = Formula::And(vec![
            Formula::Lit {
                index: 0,
                negated: false,
            },
            Formula::Lit {
                index: 1,
                negated: true,
            },
        ]);
        let n = negate(f);
        assert_eq!(
            n,
            Formula::Or(vec![
                Formula::Lit {
                    index: 0,
                    negated: true
                },
                Formula::Lit {
                    index: 1,
                    negated: false
                },
            ])
        );
    }

    #[test]
    fn dnf_of_and_over_or() {
        // (a ∨ b) ∧ ¬c → {a,¬c}, {b,¬c}
        let f = Formula::And(vec![
            Formula::Or(vec![
                Formula::Lit {
                    index: 0,
                    negated: false,
                },
                Formula::Lit {
                    index: 1,
                    negated: false,
                },
            ]),
            Formula::Lit {
                index: 2,
                negated: true,
            },
        ]);
        let dnf = to_dnf(&f);
        assert_eq!(dnf.len(), 2);
        assert_eq!(
            dnf[0],
            Disjunct {
                positive: vec![0],
                negative: vec![2]
            }
        );
        assert_eq!(
            dnf[1],
            Disjunct {
                positive: vec![1],
                negative: vec![2]
            }
        );
    }

    #[test]
    fn dnf_drops_contradictions() {
        // a ∧ ¬a → empty DNF (unsatisfiable)
        let f = Formula::And(vec![
            Formula::Lit {
                index: 0,
                negated: false,
            },
            Formula::Lit {
                index: 0,
                negated: true,
            },
        ]);
        assert!(to_dnf(&f).is_empty());
    }

    #[test]
    fn dnf_constants() {
        assert_eq!(to_dnf(&Formula::Const(true)), vec![Disjunct::default()]);
        assert!(to_dnf(&Formula::Const(false)).is_empty());
    }

    #[test]
    fn eval_formula_matches_dnf() {
        // random-ish spot check: f = (l0 ∧ ¬l1) ∨ l2
        let f = Formula::Or(vec![
            Formula::And(vec![
                Formula::Lit {
                    index: 0,
                    negated: false,
                },
                Formula::Lit {
                    index: 1,
                    negated: true,
                },
            ]),
            Formula::Lit {
                index: 2,
                negated: false,
            },
        ]);
        let dnf = to_dnf(&f);
        for bits in 0u8..8 {
            let truth = |i: usize| bits & (1 << i) != 0;
            let direct = eval_formula(&f, &truth);
            let via_dnf = dnf.iter().any(|d| {
                d.positive.iter().all(|&i| truth(i)) && d.negative.iter().all(|&i| !truth(i))
            });
            assert_eq!(direct, via_dnf, "bits {bits:03b}");
        }
    }
}
