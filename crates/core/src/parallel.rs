//! Scoped worker pool for sharded conflict detection.
//!
//! Detection work is decomposed into **shards** — deterministic units
//! (FD hash-bucket ranges, outer-atom tuple ranges) whose outputs are
//! merged in shard order, so the result never depends on *which thread*
//! ran a shard or in what order shards finished. This module only
//! supplies the execution side of that contract:
//!
//! * [`run_indexed`] runs one closure per task index across a
//!   [`std::thread::scope`] and returns the results **in task order**.
//!   Workers pull indices from a shared atomic counter (dynamic load
//!   balancing — shard sizes are data-dependent), and with one thread
//!   (or one task) everything runs inline on the caller's stack, so the
//!   sequential path pays no synchronization or spawn cost.
//! * [`detect_threads`] resolves the worker count: the
//!   `HIPPO_DETECT_THREADS` environment variable when set (≥ 1), else
//!   the machine's available parallelism, capped at [`MAX_THREADS`].
//!
//! Nothing here is specific to detection; the pool is a generic
//! fork-join over an indexed task list. Determinism is the *caller's*
//! obligation: each task closure must depend only on its index.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the detection worker count.
pub const THREADS_ENV: &str = "HIPPO_DETECT_THREADS";

/// Upper bound on auto-detected workers (an override may exceed it).
pub const MAX_THREADS: usize = 16;

/// Number of detection worker threads: `HIPPO_DETECT_THREADS` if set to
/// a positive integer, otherwise available parallelism capped at
/// [`MAX_THREADS`]. Always ≥ 1.
pub fn detect_threads() -> usize {
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Run `f(0), f(1), …, f(tasks - 1)` across at most `threads` scoped
/// workers and return the results in task-index order. `threads ≤ 1`
/// (or `tasks ≤ 1`) runs inline with no thread machinery at all.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if !local.is_empty() {
                    collected.lock().unwrap().extend(local);
                }
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), tasks);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// Split `0..len` into at most `parts` contiguous ranges of near-equal
/// size (never returns empty ranges; fewer parts when `len < parts`).
/// The decomposition depends only on `len` and `parts`, making it a
/// deterministic sharding unit for slot-range partitioning.
pub fn split_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((lo, lo + size));
        lo += size;
    }
    debug_assert_eq!(lo, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 4, 7] {
            let got = run_indexed(20, threads, |i| i * i);
            let want: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_and_one_tasks() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 8, 40] {
                let ranges = split_ranges(len, parts);
                let mut expect_lo = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect_lo);
                    assert!(hi > lo, "no empty ranges");
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, len, "ranges cover 0..{len}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn detect_threads_is_positive() {
        assert!(detect_threads() >= 1);
    }
}
