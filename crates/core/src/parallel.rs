//! Scoped worker pools for sharded conflict detection and the parallel
//! answer pipeline (every mode since PR 4 — base mode's workers issue
//! membership SQL against a shared read-only `DbSnapshot`).
//!
//! Work is decomposed into **shards** — deterministic units (FD
//! hash-bucket ranges, outer-atom tuple ranges, candidate-slice ranges)
//! whose outputs are merged in shard order, so the result never depends
//! on *which thread* ran a shard or in what order shards finished. This
//! module only supplies the execution side of that contract:
//!
//! * [`run_indexed`] runs one closure per task index across a
//!   [`std::thread::scope`] and returns the results **in task order**.
//!   Workers pull indices from a shared atomic counter (dynamic load
//!   balancing — shard sizes are data-dependent), and with one thread
//!   (or one task) everything runs inline on the caller's stack, so the
//!   sequential path pays no synchronization or spawn cost.
//! * [`run_fused`] runs **two** dependent task lists across a *single*
//!   thread scope with a [`std::sync::Barrier`] between them: every
//!   phase-B task sees the complete, task-ordered phase-A results. One
//!   spawn per worker instead of two — the FD detection path uses this
//!   to fuse its hash pass and its shard pass.
//! * [`detect_threads`] / [`prover_threads`] resolve worker counts from
//!   the `HIPPO_DETECT_THREADS` / `HIPPO_PROVER_THREADS` environment
//!   variables when set (≥ 1), else the machine's available
//!   parallelism, capped at [`MAX_THREADS`].
//!
//! Nothing here is specific to detection or proving; the pools are
//! generic fork-joins over indexed task lists. Determinism is the
//! *caller's* obligation: each task closure must depend only on its
//! index (and, for `run_fused` phase B, the phase-A results).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};

/// Environment variable overriding the detection worker count.
pub const THREADS_ENV: &str = "HIPPO_DETECT_THREADS";

/// Environment variable overriding the prover worker count.
pub const PROVER_THREADS_ENV: &str = "HIPPO_PROVER_THREADS";

/// Upper bound on auto-detected workers (an override may exceed it).
pub const MAX_THREADS: usize = 16;

fn threads_from_env(var: &str) -> usize {
    if let Ok(s) = std::env::var(var) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Number of detection worker threads: `HIPPO_DETECT_THREADS` if set to
/// a positive integer, otherwise available parallelism capped at
/// [`MAX_THREADS`]. Always ≥ 1.
pub fn detect_threads() -> usize {
    threads_from_env(THREADS_ENV)
}

/// Number of prover worker threads: `HIPPO_PROVER_THREADS` if set to a
/// positive integer, otherwise available parallelism capped at
/// [`MAX_THREADS`]. Always ≥ 1.
pub fn prover_threads() -> usize {
    threads_from_env(PROVER_THREADS_ENV)
}

/// Run `f(0), f(1), …, f(tasks - 1)` across at most `threads` scoped
/// workers and return the results in task-index order. `threads ≤ 1`
/// (or `tasks ≤ 1`) runs inline with no thread machinery at all.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if !local.is_empty() {
                    collected.lock().unwrap().extend(local);
                }
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), tasks);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// A panic caught from one task of [`run_indexed_isolated`]: the task
/// index plus the panic payload's message (when it was a string).
#[derive(Debug, Clone)]
pub struct TaskPanic {
    /// Index of the task whose closure panicked.
    pub task: usize,
    /// The panic message, or `"non-string panic payload"`.
    pub message: String,
}

/// Extract a human-readable message from a caught panic payload.
///
/// Public so service layers that `catch_unwind` around a whole write
/// transaction (not just one worker task) can produce the same
/// structured panic messages as the in-crate isolation wrappers.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_indexed`], but a panicking task poisons **only its own
/// slot**: every other task still runs to completion, and the caller
/// receives `Err(TaskPanic)` in the panicked task's position instead of
/// an unwinding thread. The inline (`threads ≤ 1`) path catches
/// identically, so behaviour does not depend on the worker count.
///
/// This is the prover-shard contract: one bad candidate must not
/// destroy the other 15 shards' work or leave the caller's state
/// half-merged — the caller inspects the results, drains everything,
/// and surfaces the first panic as a structured error.
pub fn run_indexed_isolated<T, F>(tasks: usize, threads: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> Result<T, TaskPanic> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(|payload| {
            TaskPanic {
                task: i,
                message: panic_message(payload.as_ref()),
            }
        })
    };
    let workers = threads.max(1).min(tasks);
    if workers <= 1 {
        return (0..tasks).map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<T, TaskPanic>)>> =
        Mutex::new(Vec::with_capacity(tasks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, Result<T, TaskPanic>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    local.push((i, run_one(i)));
                }
                if !local.is_empty() {
                    collected.lock().unwrap().extend(local);
                }
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), tasks);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// Run two dependent task lists in **one** thread scope: first
/// `fa(0..a_tasks)`, then — after a barrier — `fb(0..b_tasks, &a)`,
/// where `a` is the complete phase-A result vector in task order.
/// Returns both result vectors in task order.
///
/// Equivalent to two [`run_indexed`] calls, but spawns each worker
/// once instead of twice: after the barrier, the worker that won the
/// barrier's leader election assembles the phase-A results and
/// publishes them through a [`OnceLock`]; a second barrier holds the
/// others until the ordered slice is visible, then everyone pulls
/// phase-B indices from a fresh counter. With `threads ≤ 1` both
/// phases run inline with no thread machinery at all.
///
/// A panic inside `fa`/`fb` cannot deadlock the barrier: task work is
/// unwind-caught, every worker always reaches both barriers, the
/// remaining phases are abandoned, and the first panic payload is
/// re-raised on the calling thread once the scope has joined.
pub fn run_fused<A, B, FA, FB>(
    a_tasks: usize,
    b_tasks: usize,
    threads: usize,
    fa: FA,
    fb: FB,
) -> (Vec<A>, Vec<B>)
where
    A: Send + Sync,
    B: Send,
    FA: Fn(usize) -> A + Sync,
    FB: Fn(usize, &[A]) -> B + Sync,
{
    let workers = threads.max(1).min(a_tasks.max(b_tasks).max(1));
    if workers <= 1 {
        let a: Vec<A> = (0..a_tasks).map(&fa).collect();
        let b: Vec<B> = (0..b_tasks).map(|i| fb(i, &a)).collect();
        return (a, b);
    }
    type Panic = Box<dyn std::any::Any + Send>;
    let next_a = AtomicUsize::new(0);
    let next_b = AtomicUsize::new(0);
    let collected_a: Mutex<Vec<(usize, A)>> = Mutex::new(Vec::with_capacity(a_tasks));
    let collected_b: Mutex<Vec<(usize, B)>> = Mutex::new(Vec::with_capacity(b_tasks));
    let published_a: OnceLock<Vec<A>> = OnceLock::new();
    let panicked: Mutex<Option<Panic>> = Mutex::new(None);
    let barrier = Barrier::new(workers);
    // Worker-side guard: run `work` unwind-safe; on panic record the
    // first payload so the caller can re-raise it after the join.
    let guarded = |work: &mut dyn FnMut()| {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
        if let Err(payload) = caught {
            let mut slot = panicked.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                guarded(&mut || {
                    let mut local_a: Vec<(usize, A)> = Vec::new();
                    loop {
                        let i = next_a.fetch_add(1, Ordering::Relaxed);
                        if i >= a_tasks {
                            break;
                        }
                        local_a.push((i, fa(i)));
                    }
                    if !local_a.is_empty() {
                        collected_a.lock().unwrap().extend(local_a);
                    }
                });
                // Every worker reaches both barriers even after a panic,
                // so no sibling can block forever.
                let leader = barrier.wait().is_leader();
                if leader && panicked.lock().unwrap().is_none() {
                    guarded(&mut || {
                        let mut pairs = std::mem::take(&mut *collected_a.lock().unwrap());
                        debug_assert_eq!(pairs.len(), a_tasks);
                        pairs.sort_unstable_by_key(|&(i, _)| i);
                        let ordered: Vec<A> = pairs.into_iter().map(|(_, a)| a).collect();
                        published_a
                            .set(ordered)
                            .unwrap_or_else(|_| unreachable!("single leader publishes once"));
                    });
                }
                barrier.wait();
                let Some(a) = published_a.get() else {
                    return; // a phase-A task panicked: abandon phase B
                };
                guarded(&mut || {
                    let mut local_b: Vec<(usize, B)> = Vec::new();
                    loop {
                        let i = next_b.fetch_add(1, Ordering::Relaxed);
                        if i >= b_tasks {
                            break;
                        }
                        local_b.push((i, fb(i, a)));
                    }
                    if !local_b.is_empty() {
                        collected_b.lock().unwrap().extend(local_b);
                    }
                });
            });
        }
    });
    if let Some(payload) = panicked.into_inner().unwrap() {
        std::panic::resume_unwind(payload);
    }
    let a = published_a
        .into_inner()
        .expect("phase A published by leader");
    let mut pairs_b = collected_b.into_inner().unwrap();
    debug_assert_eq!(pairs_b.len(), b_tasks);
    pairs_b.sort_unstable_by_key(|&(i, _)| i);
    (a, pairs_b.into_iter().map(|(_, b)| b).collect())
}

/// Split `0..len` into at most `parts` contiguous ranges of near-equal
/// size (never returns empty ranges; fewer parts when `len < parts`).
/// The decomposition depends only on `len` and `parts`, making it a
/// deterministic sharding unit for slot-range partitioning.
pub fn split_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((lo, lo + size));
        lo += size;
    }
    debug_assert_eq!(lo, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 4, 7] {
            let got = run_indexed(20, threads, |i| i * i);
            let want: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_and_one_tasks() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn isolated_matches_run_indexed_when_nothing_panics() {
        for threads in [1, 2, 4, 7] {
            let got: Vec<usize> = run_indexed_isolated(20, threads, |i| i * i)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            let want: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn isolated_panic_poisons_only_its_slot() {
        for threads in [1, 2, 4] {
            let got = run_indexed_isolated(16, threads, |i| {
                if i == 7 {
                    panic!("shard 7 failure");
                }
                i * 10
            });
            assert_eq!(got.len(), 16, "threads={threads}: every slot drained");
            for (i, r) in got.iter().enumerate() {
                if i == 7 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.task, 7);
                    assert!(p.message.contains("shard 7 failure"), "{}", p.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "sibling {i} completed");
                }
            }
        }
    }

    #[test]
    fn isolated_reports_every_panicking_task() {
        let got = run_indexed_isolated(8, 4, |i| {
            if i % 2 == 0 {
                panic!("task {i}");
            }
            i
        });
        let failed: Vec<usize> = got
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_err())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![0, 2, 4, 6]);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 8, 40] {
                let ranges = split_ranges(len, parts);
                let mut expect_lo = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect_lo);
                    assert!(hi > lo, "no empty ranges");
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, len, "ranges cover 0..{len}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn detect_threads_is_positive() {
        assert!(detect_threads() >= 1);
        assert!(prover_threads() >= 1);
    }

    #[test]
    fn fused_phases_agree_with_sequential() {
        for threads in [1usize, 2, 4, 7] {
            let (a, b) = run_fused(13, 9, threads, |i| i * 2, |i, a: &[usize]| a[i % 13] + i);
            let want_a: Vec<usize> = (0..13).map(|i| i * 2).collect();
            let want_b: Vec<usize> = (0..9).map(|i| want_a[i % 13] + i).collect();
            assert_eq!(a, want_a, "threads={threads}");
            assert_eq!(b, want_b, "threads={threads}");
        }
    }

    #[test]
    fn fused_panic_propagates_instead_of_deadlocking() {
        // A panicking phase-A task must re-raise on the caller, not hang
        // the siblings at the barrier.
        let caught = std::panic::catch_unwind(|| {
            run_fused(
                8,
                8,
                4,
                |i| {
                    if i == 3 {
                        panic!("phase A task failure");
                    }
                    i
                },
                |i, a: &[usize]| a[i],
            )
        });
        assert!(caught.is_err(), "panic must propagate");
        // Phase-B panics propagate too.
        let caught = std::panic::catch_unwind(|| {
            run_fused(
                4,
                8,
                4,
                |i| i,
                |i, _: &[usize]| {
                    if i == 5 {
                        panic!("phase B task failure");
                    }
                    i
                },
            )
        });
        assert!(caught.is_err(), "panic must propagate");
    }

    #[test]
    fn fused_handles_empty_phases() {
        let (a, b) = run_fused(0, 4, 3, |i| i, |i, a: &[usize]| a.len() + i);
        assert_eq!(a, Vec::<usize>::new());
        assert_eq!(b, vec![0, 1, 2, 3]);
        let (a, b) = run_fused(3, 0, 3, |i| i, |i, _: &[usize]| i);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(b, Vec::<usize>::new());
    }
}
