//! Restricted foreign-key (inclusion) constraints — the paper's stated
//! future work ("support for restricted foreign key constraints"),
//! implemented here as an extension.
//!
//! A foreign key `R[fk] ⊆ S[key]` is **not** a denial constraint: deleting
//! an `S` tuple can orphan `R` tuples, so repairs under unrestricted
//! inclusion dependencies are not the maximal independent sets of a static
//! hypergraph (deletions cascade). The *restricted* case regains the
//! hypergraph semantics: when the parent relation `S` is itself
//! constraint-free (no denial constraint or foreign key ever forces an `S`
//! deletion), no repair removes parent tuples, so the only repair action
//! for a violation is deleting the orphan child — i.e. each orphan is a
//! **singleton hyperedge**, exactly like a CHECK denial.
//!
//! [`validate_restricted`] enforces the restriction; [`orphan_edges`]
//! contributes the singleton edges to an existing hypergraph build.

use crate::constraint::DenialConstraint;
use crate::hypergraph::{ConflictHypergraph, Vertex};
use hippo_engine::{Catalog, EngineError, Row, TupleId, Value};
use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::fmt;

/// A foreign-key constraint `child[child_cols] ⊆ parent[parent_cols]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing relation.
    pub child: String,
    /// Referencing columns.
    pub child_cols: Vec<usize>,
    /// Referenced relation.
    pub parent: String,
    /// Referenced columns (must align with `child_cols`).
    pub parent_cols: Vec<usize>,
}

impl ForeignKey {
    /// Constructor.
    pub fn new(
        child: impl Into<String>,
        child_cols: Vec<usize>,
        parent: impl Into<String>,
        parent_cols: Vec<usize>,
    ) -> ForeignKey {
        ForeignKey {
            child: child.into(),
            child_cols,
            parent: parent.into(),
            parent_cols,
        }
    }

    /// Schema-level validation.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), EngineError> {
        if self.child_cols.len() != self.parent_cols.len() || self.child_cols.is_empty() {
            return Err(EngineError::new(format!(
                "foreign key {self}: column lists must be non-empty and aligned"
            )));
        }
        let child = catalog.table(&self.child)?;
        let parent = catalog.table(&self.parent)?;
        for &c in &self.child_cols {
            if c >= child.schema.arity() {
                return Err(EngineError::new(format!(
                    "foreign key {self}: child column {c} out of range"
                )));
            }
        }
        for &c in &self.parent_cols {
            if c >= parent.schema.arity() {
                return Err(EngineError::new(format!(
                    "foreign key {self}: parent column {c} out of range"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{:?}] ⊆ {}[{:?}]",
            self.child, self.child_cols, self.parent, self.parent_cols
        )
    }
}

/// Check the *restriction*: no denial constraint and no other foreign key
/// may ever force a deletion from any referenced parent relation. Under
/// this condition parents are stable across repairs and orphan children
/// become singleton hyperedges.
pub fn validate_restricted(
    foreign_keys: &[ForeignKey],
    denials: &[DenialConstraint],
    catalog: &Catalog,
) -> Result<(), EngineError> {
    let parents: HashSet<&str> = foreign_keys.iter().map(|fk| fk.parent.as_str()).collect();
    for fk in foreign_keys {
        fk.validate(catalog)?;
        if parents.contains(fk.child.as_str()) {
            return Err(EngineError::new(format!(
                "restricted foreign keys: relation {:?} is both a parent and a child; \
                 cascading deletions are outside the hypergraph semantics",
                fk.child
            )));
        }
    }
    for d in denials {
        for atom in &d.atoms {
            if parents.contains(atom.as_str()) {
                return Err(EngineError::new(format!(
                    "restricted foreign keys: parent relation {atom:?} also appears in denial \
                     constraint {:?}; parent tuples would no longer be stable across repairs",
                    d.name
                )));
            }
        }
    }
    Ok(())
}

/// Add one singleton hyperedge per orphan child tuple.
pub fn orphan_edges(
    g: &mut ConflictHypergraph,
    catalog: &Catalog,
    fk: &ForeignKey,
    constraint_index: usize,
) -> Result<usize, EngineError> {
    let child = catalog.table(&fk.child)?;
    let parent = catalog.table(&fk.parent)?;
    // Hash the parent key values.
    let keys: HashSet<Vec<Value>> = parent.iter().map(|(_, row)| fk.parent_key(row)).collect();
    let rel = g.intern(&fk.child);
    let mut added = 0;
    for (tid, row) in child.iter() {
        // SQL semantics: NULL foreign keys do not violate.
        let Some(key) = fk.child_key(row) else {
            continue;
        };
        if !keys.contains(&key) {
            g.add_edge(&[Vertex { rel, tid }], &[row], constraint_index);
            added += 1;
        }
    }
    Ok(added)
}

/// Persistent per-FK **orphan-count index**: how many live parent rows
/// carry each referenced key, and which live child tuples reference it.
/// Maintained in O(1) per inserted/deleted tuple, it lets
/// [`crate::hippo::Hippo::redetect`] reconcile orphan edges
/// incrementally — a parent-key count dropping to zero orphans exactly
/// `children_of(key)`, a count rising from zero un-orphans them — so
/// foreign keys no longer force a full rebuild.
///
/// Key semantics mirror [`orphan_edges`] exactly: parent keys are
/// compared with plain `Eq` (so `NULL == NULL`, like the detection-side
/// hash set), and child keys containing a `NULL` are not indexed — a
/// NULL foreign key never violates.
#[derive(Debug, Clone, Default)]
pub struct FkIndex {
    /// Live parent rows per referenced key.
    parent_count: FxHashMap<Vec<Value>, usize>,
    /// Live child tuple ids per (fully non-NULL) referencing key, in
    /// insertion order.
    children: FxHashMap<Vec<Value>, Vec<TupleId>>,
}

impl FkIndex {
    /// Build the index from the current instance.
    pub fn build(catalog: &Catalog, fk: &ForeignKey) -> Result<FkIndex, EngineError> {
        let mut ix = FkIndex::default();
        let parent = catalog.table(&fk.parent)?;
        for (_, row) in parent.iter() {
            ix.add_parent(fk.parent_key(row));
        }
        let child = catalog.table(&fk.child)?;
        for (tid, row) in child.iter() {
            if let Some(key) = fk.child_key(row) {
                ix.add_child(key, tid);
            }
        }
        Ok(ix)
    }

    /// Live parent rows carrying `key`.
    pub fn parent_count(&self, key: &[Value]) -> usize {
        self.parent_count.get(key).copied().unwrap_or(0)
    }

    /// Live child tuples referencing `key`.
    pub fn children_of(&self, key: &[Value]) -> &[TupleId] {
        self.children.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Register an inserted parent row's key.
    pub fn add_parent(&mut self, key: Vec<Value>) {
        *self.parent_count.entry(key).or_insert(0) += 1;
    }

    /// Unregister a deleted parent row's key.
    pub fn remove_parent(&mut self, key: &[Value]) {
        if let Some(n) = self.parent_count.get_mut(key) {
            *n -= 1;
            if *n == 0 {
                self.parent_count.remove(key);
            }
        }
    }

    /// Register an inserted child tuple under its key.
    pub fn add_child(&mut self, key: Vec<Value>, tid: TupleId) {
        self.children.entry(key).or_default().push(tid);
    }

    /// Unregister a deleted child tuple.
    pub fn remove_child(&mut self, key: &[Value], tid: TupleId) {
        if let Some(tids) = self.children.get_mut(key) {
            tids.retain(|&t| t != tid);
            if tids.is_empty() {
                self.children.remove(key);
            }
        }
    }
}

impl ForeignKey {
    /// The referenced-key projection of a parent row.
    pub fn parent_key(&self, row: &Row) -> Vec<Value> {
        self.parent_cols.iter().map(|&c| row[c].clone()).collect()
    }

    /// The referencing-key projection of a child row; `None` when any
    /// component is NULL (SQL semantics: a NULL fk never violates).
    pub fn child_key(&self, row: &Row) -> Option<Vec<Value>> {
        let key: Vec<Value> = self.child_cols.iter().map(|&c| row[c].clone()).collect();
        if key.iter().any(Value::is_null) {
            None
        } else {
            Some(key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_conflicts;
    use crate::naive::naive_consistent_answers;
    use crate::query::SjudQuery;
    use hippo_engine::Database;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE orders (id INT, cust INT)")
            .unwrap();
        db.execute("CREATE TABLE customers (cid INT, tier INT)")
            .unwrap();
        db.execute("INSERT INTO customers VALUES (1, 10), (2, 20)")
            .unwrap();
        db.execute("INSERT INTO orders VALUES (100, 1), (101, 2), (102, 9), (103, NULL)")
            .unwrap();
        db
    }

    fn fk() -> ForeignKey {
        ForeignKey::new("orders", vec![1], "customers", vec![0])
    }

    #[test]
    fn orphans_become_singleton_edges() {
        let db = db();
        let mut g = ConflictHypergraph::new();
        let added = orphan_edges(&mut g, db.catalog(), &fk(), 0).unwrap();
        assert_eq!(
            added, 1,
            "only order 102 is orphaned; NULL fk does not violate"
        );
        assert_eq!(g.edge_count(), 1);
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn orphan_is_in_no_repair() {
        let db = db();
        let mut g = ConflictHypergraph::new();
        orphan_edges(&mut g, db.catalog(), &fk(), 0).unwrap();
        let q = SjudQuery::rel("orders");
        let answers = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(answers.len(), 3, "orphan dropped from every repair");
        assert!(answers
            .iter()
            .all(|r| r[0] != hippo_engine::Value::Int(102)));
    }

    #[test]
    fn restriction_rejects_constrained_parents() {
        let db = db();
        let fd_on_parent = DenialConstraint::functional_dependency("customers", &[0], 1);
        let err = validate_restricted(&[fk()], &[fd_on_parent], db.catalog()).unwrap_err();
        assert!(err.message.contains("parent relation"), "{err}");

        let fd_on_child = DenialConstraint::functional_dependency("orders", &[0], 1);
        validate_restricted(&[fk()], &[fd_on_child], db.catalog()).unwrap();
    }

    #[test]
    fn restriction_rejects_parent_child_chains() {
        let mut db = db();
        db.execute("CREATE TABLE regions (rid INT)").unwrap();
        let chain = vec![
            fk(),
            ForeignKey::new("customers", vec![0], "regions", vec![0]),
        ];
        let err = validate_restricted(&chain, &[], db.catalog()).unwrap_err();
        assert!(err.message.contains("both a parent and a child"), "{err}");
    }

    #[test]
    fn validate_checks_columns() {
        let db = db();
        assert!(ForeignKey::new("orders", vec![9], "customers", vec![0])
            .validate(db.catalog())
            .is_err());
        assert!(ForeignKey::new("orders", vec![1], "customers", vec![9])
            .validate(db.catalog())
            .is_err());
        assert!(ForeignKey::new("orders", vec![1, 0], "customers", vec![0])
            .validate(db.catalog())
            .is_err());
        assert!(ForeignKey::new("orders", vec![], "customers", vec![])
            .validate(db.catalog())
            .is_err());
    }

    #[test]
    fn fk_combines_with_fd_detection() {
        // FD on orders + FK: both kinds of edges in one hypergraph.
        let mut db = db();
        db.execute("INSERT INTO orders VALUES (100, 2)").unwrap(); // FD conflict on id
        let denials = vec![DenialConstraint::functional_dependency("orders", &[0], 1)];
        validate_restricted(&[fk()], &denials, db.catalog()).unwrap();
        let (mut g, _) = detect_conflicts(db.catalog(), &denials).unwrap();
        orphan_edges(&mut g, db.catalog(), &fk(), denials.len()).unwrap();
        assert_eq!(g.edge_count(), 2);
        // Ground truth still works on the combined hypergraph.
        let q = SjudQuery::rel("orders");
        let answers = naive_consistent_answers(&q, db.catalog(), &g);
        // 101, 103 always; 100 appears with two cust values → neither kept
        // consistently; 102 orphan → never.
        assert_eq!(answers.len(), 2);
    }
}
