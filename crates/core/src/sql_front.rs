//! SQL front end for the CQA layer: translating SQL text into the SJUD
//! algebra.
//!
//! The paper's title promises consistent answers to *a class of SQL
//! queries*. This module defines that class concretely: a `SELECT`
//! statement translates into an [`SjudQuery`] when it
//!
//! * projects only plain columns (`*` or column lists — no expressions),
//!   and the projection keeps every column of the `FROM` sources at least
//!   once (no existential quantification, matching footnote 4 of the
//!   paper);
//! * uses `FROM` items that are base tables (joined by comma, `CROSS
//!   JOIN`, or `INNER JOIN … ON`);
//! * has a `WHERE` clause built from comparisons between columns and
//!   constants with `AND`/`OR`/`NOT` (no subqueries, no `LIKE`/`IN`);
//! * combines blocks with `UNION` / `EXCEPT` (set semantics).
//!
//! Anything else produces a descriptive [`SqlClassError`].

use crate::pred::{CmpOp, Operand, Pred};
use crate::query::SjudQuery;
use hippo_engine::Catalog;
use hippo_sql::{
    BinaryOp, Expr, JoinKind, Literal, Query, SelectCore, SelectItem, SetOp, Statement, TableRef,
    UnaryOp,
};
use std::fmt;

/// Why a SQL query is outside the supported SJUD class.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlClassError {
    /// Human-readable explanation.
    pub message: String,
}

impl SqlClassError {
    fn new(message: impl Into<String>) -> SqlClassError {
        SqlClassError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query outside the supported SJUD class: {}",
            self.message
        )
    }
}

impl std::error::Error for SqlClassError {}

impl From<hippo_sql::ParseError> for SqlClassError {
    fn from(e: hippo_sql::ParseError) -> Self {
        SqlClassError::new(e.to_string())
    }
}

impl From<hippo_engine::EngineError> for SqlClassError {
    fn from(e: hippo_engine::EngineError) -> Self {
        SqlClassError::new(e.message)
    }
}

/// Parse SQL text and translate it into the SJUD algebra.
pub fn sjud_from_sql(sql: &str, catalog: &Catalog) -> Result<SjudQuery, SqlClassError> {
    let stmt = hippo_sql::parse_statement(sql)?;
    let Statement::Select(q) = stmt else {
        return Err(SqlClassError::new(
            "only SELECT statements can be queried consistently",
        ));
    };
    let q = sjud_from_query(&q, catalog)?;
    q.validate(catalog)?;
    Ok(q)
}

/// Translate a parsed query.
pub fn sjud_from_query(q: &Query, catalog: &Catalog) -> Result<SjudQuery, SqlClassError> {
    match q {
        Query::Select(core) => sjud_from_core(core, catalog),
        Query::SetOp {
            op,
            all,
            left,
            right,
        } => {
            if *all {
                return Err(SqlClassError::new(
                    "bag semantics (ALL) is not supported; consistent answers are sets",
                ));
            }
            let l = sjud_from_query(left, catalog)?;
            let r = sjud_from_query(right, catalog)?;
            match op {
                SetOp::Union => Ok(l.union(r)),
                SetOp::Except => Ok(l.diff(r)),
                SetOp::Intersect => {
                    // A ∩ B ≡ A − (A − B); stays within SJUD.
                    Ok(l.clone().diff(l.diff(r)))
                }
            }
        }
    }
}

/// One named column range in the flattened FROM row.
struct FromScope {
    /// (qualifier, column name) → flat offset, in order.
    columns: Vec<(String, String)>,
}

impl FromScope {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SqlClassError> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, (q, n))| n == name && qualifier.is_none_or(|want| q == want))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(SqlClassError::new(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            _ => Err(SqlClassError::new(format!(
                "ambiguous column reference {name:?}"
            ))),
        }
    }
}

fn sjud_from_core(core: &SelectCore, catalog: &Catalog) -> Result<SjudQuery, SqlClassError> {
    if core.distinct {
        // DISTINCT is implied by set semantics; accept and ignore.
    }
    if !core.group_by.is_empty() || core.having.is_some() {
        return Err(SqlClassError::new(
            "aggregation is outside the SJUD class (consistent aggregation is co-NP-hard)",
        ));
    }
    if !core.order_by.is_empty() || core.limit.is_some() || core.offset.is_some() {
        return Err(SqlClassError::new(
            "ORDER BY / LIMIT have no repair semantics; apply them to the answer set instead",
        ));
    }
    if core.from.is_empty() {
        return Err(SqlClassError::new(
            "a FROM clause over base tables is required",
        ));
    }

    // Build the product of FROM items and the flat scope.
    let mut scope = FromScope {
        columns: Vec::new(),
    };
    let mut query: Option<SjudQuery> = None;
    let mut join_preds: Vec<Pred> = Vec::new();
    for item in &core.from {
        let q = from_item(item, catalog, &mut scope, &mut join_preds)?;
        query = Some(match query {
            None => q,
            Some(prev) => prev.product(q),
        });
    }
    let mut query = query.expect("FROM is non-empty");

    // WHERE + join conditions.
    let mut pred = Pred::conjoin(join_preds);
    if let Some(f) = &core.filter {
        pred = pred.and(where_pred(f, &scope)?);
    }
    if pred != Pred::True {
        query = query.select(pred);
    }

    // Projection: must be a permutation/duplication covering all columns.
    let total = scope.columns.len();
    let mut perm: Vec<usize> = Vec::new();
    for item in &core.projection {
        match item {
            SelectItem::Wildcard => perm.extend(0..total),
            SelectItem::QualifiedWildcard(q) => {
                let mut found = false;
                for (i, (qual, _)) in scope.columns.iter().enumerate() {
                    if qual == q {
                        perm.push(i);
                        found = true;
                    }
                }
                if !found {
                    return Err(SqlClassError::new(format!(
                        "unknown alias {q:?} in wildcard"
                    )));
                }
            }
            SelectItem::Expr {
                expr: Expr::Column { qualifier, name },
                ..
            } => {
                perm.push(scope.resolve(qualifier.as_deref(), name)?);
            }
            SelectItem::Expr { expr, .. } => {
                return Err(SqlClassError::new(format!(
                    "projection must list plain columns, found expression {expr:?}"
                )));
            }
        }
    }
    for col in 0..total {
        if !perm.contains(&col) {
            let (q, n) = &scope.columns[col];
            return Err(SqlClassError::new(format!(
                "projection drops column {q}.{n}; dropping columns introduces an existential \
                 quantifier, which is outside the supported fragment (paper footnote 4)"
            )));
        }
    }
    if perm.len() == total && perm.iter().enumerate().all(|(i, &p)| i == p) {
        Ok(query) // identity projection
    } else {
        Ok(query.permute(perm))
    }
}

fn from_item(
    item: &TableRef,
    catalog: &Catalog,
    scope: &mut FromScope,
    join_preds: &mut Vec<Pred>,
) -> Result<SjudQuery, SqlClassError> {
    match item {
        TableRef::Table { name, alias } => {
            let table = catalog
                .table(name)
                .map_err(|e| SqlClassError::new(e.message))?;
            let qualifier = alias.clone().unwrap_or_else(|| name.clone());
            if scope.columns.iter().any(|(q, _)| *q == qualifier) {
                return Err(SqlClassError::new(format!("duplicate alias {qualifier:?}")));
            }
            for c in &table.schema.columns {
                scope.columns.push((qualifier.clone(), c.name.clone()));
            }
            Ok(SjudQuery::rel(name.clone()))
        }
        TableRef::Subquery { .. } => Err(SqlClassError::new(
            "FROM subqueries are not supported; compose the algebra with SjudQuery instead",
        )),
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = from_item(left, catalog, scope, join_preds)?;
            let r = from_item(right, catalog, scope, join_preds)?;
            match kind {
                JoinKind::Cross => Ok(l.product(r)),
                JoinKind::Inner => {
                    let Some(on) = on else {
                        return Err(SqlClassError::new("INNER JOIN requires ON"));
                    };
                    // The ON condition binds over everything in scope so far.
                    join_preds.push(where_pred(on, scope)?);
                    Ok(l.product(r))
                }
                JoinKind::Left => Err(SqlClassError::new(
                    "outer joins are outside the SJUD class (they introduce nulls with no \
                     repair semantics)",
                )),
            }
        }
    }
}

fn where_pred(e: &Expr, scope: &FromScope) -> Result<Pred, SqlClassError> {
    match e {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => Ok(where_pred(left, scope)?.and(where_pred(right, scope)?)),
        Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => Ok(where_pred(left, scope)?.or(where_pred(right, scope)?)),
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => Ok(where_pred(expr, scope)?.not()),
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let cmp = match op {
                BinaryOp::Eq => CmpOp::Eq,
                BinaryOp::Neq => CmpOp::Neq,
                BinaryOp::Lt => CmpOp::Lt,
                BinaryOp::Le => CmpOp::Le,
                BinaryOp::Gt => CmpOp::Gt,
                BinaryOp::Ge => CmpOp::Ge,
                _ => unreachable!("is_comparison"),
            };
            Ok(Pred::Cmp {
                op: cmp,
                left: operand(left, scope)?,
                right: operand(right, scope)?,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e_op = operand(expr, scope)?;
            let both = Pred::Cmp {
                op: CmpOp::Ge,
                left: e_op.clone(),
                right: operand(low, scope)?,
            }
            .and(Pred::Cmp {
                op: CmpOp::Le,
                left: e_op,
                right: operand(high, scope)?,
            });
            Ok(if *negated { both.not() } else { both })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let e_op = operand(expr, scope)?;
            let mut disj = Pred::False;
            for item in list {
                disj = disj.or(Pred::Cmp {
                    op: CmpOp::Eq,
                    left: e_op.clone(),
                    right: operand(item, scope)?,
                });
            }
            Ok(if *negated { disj.not() } else { disj })
        }
        other => Err(SqlClassError::new(format!(
            "unsupported WHERE construct {other:?}: the class allows comparisons, \
             AND/OR/NOT, BETWEEN and IN over columns and constants"
        ))),
    }
}

fn operand(e: &Expr, scope: &FromScope) -> Result<Operand, SqlClassError> {
    match e {
        Expr::Column { qualifier, name } => {
            Ok(Operand::Col(scope.resolve(qualifier.as_deref(), name)?))
        }
        Expr::Literal(l) => Ok(Operand::Const(match l {
            Literal::Null => hippo_engine::Value::Null,
            Literal::Bool(b) => hippo_engine::Value::Bool(*b),
            Literal::Int(v) => hippo_engine::Value::Int(*v),
            Literal::Float(v) => hippo_engine::Value::Float(*v),
            Literal::Str(s) => hippo_engine::Value::Text(s.clone()),
        })),
        other => Err(SqlClassError::new(format!(
            "operands must be columns or constants, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::DenialConstraint;
    use crate::hippo::Hippo;
    use crate::naive::naive_consistent_answers;
    use hippo_engine::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE emp (name TEXT, salary INT)")
            .unwrap();
        db.execute("CREATE TABLE dept (head TEXT, budget INT)")
            .unwrap();
        db.execute("INSERT INTO emp VALUES ('ann', 100), ('ann', 200), ('bob', 300)")
            .unwrap();
        db.execute("INSERT INTO dept VALUES ('bob', 1000), ('ann', 500)")
            .unwrap();
        db
    }

    #[test]
    fn translates_select_star() {
        let db = db();
        let q = sjud_from_sql("SELECT * FROM emp", db.catalog()).unwrap();
        assert_eq!(q, SjudQuery::rel("emp"));
    }

    #[test]
    fn translates_selection() {
        let db = db();
        let q = sjud_from_sql("SELECT * FROM emp WHERE salary >= 150", db.catalog()).unwrap();
        let SjudQuery::Select { pred, .. } = q else {
            panic!()
        };
        assert!(pred.eval(&[Value::text("x"), Value::Int(200)]));
        assert!(!pred.eval(&[Value::text("x"), Value::Int(100)]));
    }

    #[test]
    fn translates_join_and_column_permutation() {
        let db = db();
        let q = sjud_from_sql(
            "SELECT d.budget, e.name, e.salary, d.head FROM emp e INNER JOIN dept d ON e.name = d.head",
            db.catalog(),
        )
        .unwrap();
        // product(emp, dept) with σ(c0 = c2) then permute [3,0,1,2]
        let SjudQuery::Permute { perm, .. } = &q else {
            panic!("{q:?}")
        };
        assert_eq!(perm, &vec![3, 0, 1, 2]);
        assert_eq!(q.validate(db.catalog()).unwrap(), 4);
    }

    #[test]
    fn translates_union_and_except() {
        let db = db();
        let q = sjud_from_sql(
            "SELECT * FROM emp WHERE salary < 150 UNION SELECT * FROM emp WHERE salary > 250",
            db.catalog(),
        )
        .unwrap();
        assert!(q.has_union());
        let q = sjud_from_sql(
            "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary < 150",
            db.catalog(),
        )
        .unwrap();
        assert!(q.has_diff());
    }

    #[test]
    fn intersect_desugars_to_double_difference() {
        let db = db();
        let q = sjud_from_sql(
            "SELECT * FROM emp INTERSECT SELECT * FROM emp WHERE salary < 150",
            db.catalog(),
        )
        .unwrap();
        // A ∩ B = A − (A − B): verify semantically.
        let rows = q.eval_on_catalog(db.catalog()).unwrap();
        assert_eq!(rows, vec![vec![Value::text("ann"), Value::Int(100)]]);
    }

    #[test]
    fn where_between_and_in() {
        let db = db();
        let q = sjud_from_sql(
            "SELECT * FROM emp WHERE salary BETWEEN 100 AND 250 AND name IN ('ann', 'bob')",
            db.catalog(),
        )
        .unwrap();
        let rows = q.eval_on_catalog(db.catalog()).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rejects_aggregates_and_order_by() {
        let db = db();
        let err = sjud_from_sql("SELECT COUNT(*) FROM emp", db.catalog()).unwrap_err();
        assert!(
            err.message.contains("plain columns") || err.message.contains("aggregation"),
            "{err}"
        );
        let err = sjud_from_sql(
            "SELECT name, salary FROM emp GROUP BY name, salary",
            db.catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("aggregation"), "{err}");
        let err = sjud_from_sql("SELECT * FROM emp ORDER BY salary", db.catalog()).unwrap_err();
        assert!(err.message.contains("ORDER BY"), "{err}");
    }

    #[test]
    fn rejects_projection_with_existentials() {
        let db = db();
        let err = sjud_from_sql("SELECT name FROM emp", db.catalog()).unwrap_err();
        assert!(err.message.contains("existential"), "{err}");
    }

    #[test]
    fn rejects_subqueries_and_outer_joins() {
        let db = db();
        let err = sjud_from_sql(
            "SELECT * FROM emp WHERE EXISTS (SELECT * FROM dept)",
            db.catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("unsupported WHERE construct"), "{err}");
        let err = sjud_from_sql(
            "SELECT * FROM emp e LEFT JOIN dept d ON e.name = d.head",
            db.catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("outer joins"), "{err}");
        let err = sjud_from_sql("SELECT * FROM (SELECT * FROM emp) s", db.catalog()).unwrap_err();
        assert!(err.message.contains("FROM subqueries"), "{err}");
    }

    #[test]
    fn rejects_union_all_and_non_select() {
        let db = db();
        let err = sjud_from_sql(
            "SELECT * FROM emp UNION ALL SELECT * FROM emp",
            db.catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("ALL"), "{err}");
        let err = sjud_from_sql("DELETE FROM emp", db.catalog()).unwrap_err();
        assert!(err.message.contains("SELECT"), "{err}");
    }

    #[test]
    fn end_to_end_sql_cqa_matches_ground_truth() {
        let db = db();
        let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
        let sqls = [
            "SELECT * FROM emp",
            "SELECT * FROM emp WHERE salary >= 150",
            "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary < 150",
            "SELECT e.name, e.salary, d.head, d.budget FROM emp e INNER JOIN dept d ON e.name = d.head",
        ];
        for sql in sqls {
            let q = sjud_from_sql(sql, db.catalog()).unwrap();
            let (g, _) = crate::detect::detect_conflicts(db.catalog(), &constraints).unwrap();
            let truth = naive_consistent_answers(&q, db.catalog(), &g);
            let hippo = Hippo::new(
                {
                    let mut d = Database::new();
                    d.execute("CREATE TABLE emp (name TEXT, salary INT)")
                        .unwrap();
                    d.execute("CREATE TABLE dept (head TEXT, budget INT)")
                        .unwrap();
                    d.execute("INSERT INTO emp VALUES ('ann', 100), ('ann', 200), ('bob', 300)")
                        .unwrap();
                    d.execute("INSERT INTO dept VALUES ('bob', 1000), ('ann', 500)")
                        .unwrap();
                    d
                },
                constraints.clone(),
            )
            .unwrap();
            assert_eq!(hippo.consistent_answers(&q).unwrap(), truth, "{sql}");
        }
    }
}
