//! Resource governance and deterministic fault injection for the
//! answer pipeline.
//!
//! The engine crate owns the raw mechanism ([`Budget`], [`CancelHandle`]
//! — re-exported here); this module owns the **policy**: how one
//! `consistent_answers` call bundles its budget with an optional
//! [`FaultPlan`] into a [`Governance`] handle, how the pipeline's stages
//! consult it, and what a budget trip produces — a structured
//! `EngineError` in strict mode, or a sound-but-partial
//! [`ConsistentAnswer`] carrying a [`Completeness`] marker in degraded
//! mode.
//!
//! # Fault-point catalog
//!
//! Checkpoints are identified by stage name. This table is the one
//! authoritative list, across every layer of the system:
//!
//! | stage             | layer       | where it is checked                                      |
//! |-------------------|-------------|----------------------------------------------------------|
//! | `detect`          | CQA pipeline| conflict-detection shard loops (`detect.rs`)             |
//! | `envelope`        | CQA pipeline| the candidate query's executor loops (engine `exec.rs`)  |
//! | `corefilter`      | CQA pipeline| the core-filter probe (`corefilter.rs`)                  |
//! | `membership`      | CQA pipeline| base-mode membership probing (`kg.rs`)                   |
//! | `prover`          | CQA pipeline| the per-candidate prover shard loops (`hippo.rs`)        |
//! | `wal:append`      | durability  | before WAL bytes are written (`server/wal.rs`)           |
//! | `wal:fsync`       | durability  | between WAL write and fsync (`server/wal.rs`)            |
//! | `checkpoint:write`| durability  | before the checkpoint tmp file lands (`server/checkpoint.rs`) |
//! | `checkpoint:swap` | durability  | between tmp fsync and the atomic rename (`server/checkpoint.rs`) |
//! | `repl:drop`       | replication | per frame, on the transport send path (`server/transport.rs`) |
//! | `repl:corrupt`    | replication | per frame, after `repl:drop`                             |
//! | `repl:delay`      | replication | per frame, after `repl:corrupt`                          |
//! | `repl:disconnect` | replication | per frame, after `repl:delay`                            |
//!
//! Detection trips are **always strict errors**: an incomplete conflict
//! hypergraph would make the prover unsound, so there is no partial
//! result to degrade to. Every later pipeline stage can degrade —
//! whatever was fully proved before the trip is consistent in its own
//! right (answer-set monotonicity over candidate prefixes), so the
//! degraded answer set is always a subset of the complete one.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] deterministically forces a panic, an injected delay,
//! a budget trip, a short write, or a transport fault at
//! `(stage, shard)` checkpoints. Each armed fault fires **at most
//! once** (an atomic latch), so a test can inject a panic, observe the
//! structured failure, and immediately re-run the same call to verify
//! the system stayed usable. Plans come from the `HIPPO_FAULT`
//! environment variable — a comma-separated list of `stage:shard:kind`
//! arms (shard `*` = any shard; kind `panic`, `trip`, `delay<ms>`,
//! `shortwrite`, `drop`, `corrupt`, or `disconnect`), e.g.
//! `HIPPO_FAULT=wal:0:panic,detect:0:trip` — via [`FaultPlan::from_env`],
//! or programmatically via [`FaultPlan::new`] / [`FaultPlan::parse`] —
//! tests prefer the API because environment mutation is racy under a
//! multi-threaded test harness. The plan is only ever consulted through
//! a [`Governance`] the caller opted into; an exported `HIPPO_FAULT`
//! does not affect `Hippo` instances that did not ask for it.
//!
//! A fault armed at stage `wal` also fires at the sub-stage checkpoints
//! `wal:append` and `wal:fsync` (segment-prefix matching), so one spec
//! can cover a whole subsystem while `wal:fsync:0:panic` pins a single
//! checkpoint; likewise `repl:*:drop` covers every transport
//! checkpoint. [`FaultKind::ShortWrite`] is implemented by the
//! file-writing stages themselves (they truncate the write and fail),
//! and the transport kinds ([`FaultKind::Drop`], [`FaultKind::Corrupt`],
//! [`FaultKind::Disconnect`]) by the frame-sending stages; at stages
//! that cannot honor them they degrade to a loud injected error.

use hippo_engine::EngineError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use hippo_engine::{Budget, CancelHandle, ErrorKind, CHECK_STRIDE};

/// How complete a [`ConsistentAnswer`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// Every candidate was decided: the full consistent answer set.
    Complete,
    /// The budget ran out (or the call was cancelled) at the named
    /// stage: the rows are a **sound subset** of the complete answer
    /// set — everything present was fully proved — but candidates left
    /// undecided at the cut may be missing.
    TruncatedAt(&'static str),
}

impl Completeness {
    /// Is this the complete answer set?
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// A consistent-answer result that knows how complete it is: the rows,
/// a [`Completeness`] marker, and the run's exact statistics (including
/// the governance counters `budget_checks` / `cancelled_shards`).
#[derive(Debug, Clone)]
pub struct ConsistentAnswer {
    /// Sorted, deduplicated answer rows. With
    /// [`Completeness::TruncatedAt`], a sound subset of the complete
    /// answer set.
    pub rows: Vec<hippo_engine::Row>,
    /// Whether every candidate was decided.
    pub completeness: Completeness,
    /// Run statistics.
    pub stats: crate::hippo::AnswerStats,
}

/// What an injected fault does when its checkpoint is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on the worker that hits the checkpoint (exercises panic
    /// containment: other shards drain, the call fails structurally,
    /// the system stays usable).
    Panic,
    /// Sleep for the given duration (exercises deadline trips at a
    /// chosen point instead of wherever the clock happens to land).
    Delay(Duration),
    /// Force the call's budget to report exhaustion (exercises the
    /// strict/degraded trip paths without any timing dependence).
    BudgetTrip,
    /// At a file-writing checkpoint (`wal:append`, `checkpoint:write`):
    /// write only a prefix of the intended bytes, then fail — the torn
    /// frame a power loss mid-`write(2)` leaves behind. Stages that do
    /// not write files turn this into a loud injected error.
    ShortWrite,
    /// At a frame-sending checkpoint (`repl:*`): silently discard the
    /// frame — the sender believes it was delivered. Exercises gap
    /// detection and resync on the receiver.
    Drop,
    /// At a frame-sending checkpoint: flip a payload byte *after* the
    /// CRC was computed, so the receiver's checksum rejects the frame.
    /// Exercises the corrupt-frame skip-and-resync path.
    Corrupt,
    /// At a frame-sending checkpoint: sever the connection after this
    /// frame fails to send. Exercises reconnect/re-attach handling.
    Disconnect,
}

/// One armed fault: a [`FaultKind`] at one `(stage, shard)` checkpoint,
/// with its own fire-at-most-once latch.
#[derive(Debug)]
struct FaultArm {
    stage: String,
    /// `None` = any shard (the first checkpoint reached fires).
    shard: Option<usize>,
    kind: FaultKind,
    fired: AtomicBool,
}

impl FaultArm {
    /// Does this arm cover checkpoint `point`? Exact match, or a
    /// segment prefix: an arm at `wal` covers `wal:append` and
    /// `wal:fsync` (but `wa` covers neither).
    fn covers(&self, point: &str) -> bool {
        point == self.stage
            || (point.len() > self.stage.len()
                && point.starts_with(self.stage.as_str())
                && point.as_bytes()[self.stage.len()] == b':')
    }

    fn try_fire(&self, stage: &str, shard: usize) -> Option<FaultKind> {
        if !self.covers(stage) || self.shard.is_some_and(|s| s != shard) {
            return None;
        }
        if self.fired.swap(true, Ordering::Relaxed) {
            return None;
        }
        Some(self.kind)
    }
}

/// A deterministic fault plan: one or more [`FaultArm`]s, each firing at
/// most once. Built from a comma-separated `stage:shard:kind` list so
/// crash-matrix tests can compose faults
/// (`HIPPO_FAULT=wal:0:panic,detect:0:trip`).
#[derive(Debug)]
pub struct FaultPlan {
    arms: Vec<FaultArm>,
}

impl FaultPlan {
    /// Arm a single fault at `(stage, shard)`; `shard = None` matches
    /// any shard.
    pub fn new(stage: impl Into<String>, shard: Option<usize>, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            arms: vec![FaultArm {
                stage: stage.into(),
                shard,
                kind,
                fired: AtomicBool::new(false),
            }],
        }
    }

    /// Parse a comma-separated list of `stage:shard:kind` arms (shard
    /// `*` = any; kind `panic`, `trip`, `delay<ms>`, or `shortwrite`).
    /// Stage names may themselves contain colons (`wal:fsync:0:panic`
    /// pins the fsync checkpoint) — the *last two* segments are always
    /// shard and kind. The error names what is wrong with the spec — a
    /// chaos run configured with a typo must fail loudly, not silently
    /// run without its injection.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut arms = Vec::new();
        for arm_spec in spec.split(',') {
            arms.push(Self::parse_arm(arm_spec.trim(), spec)?);
        }
        Ok(FaultPlan { arms })
    }

    fn parse_arm(arm: &str, spec: &str) -> Result<FaultArm, String> {
        // Right-to-left: kind and shard are the last two segments; the
        // rest (which may contain ':') is the stage.
        let mut parts = arm.rsplitn(3, ':');
        let (Some(kind), Some(shard), Some(stage)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "expected stage:shard:kind (e.g. prover:7:panic), got {arm:?} in {spec:?}"
            ));
        };
        let (stage, shard, kind) = (stage.trim(), shard.trim(), kind.trim());
        if stage.is_empty() {
            return Err(format!("empty stage in {spec:?}"));
        }
        let shard =
            if shard == "*" {
                None
            } else {
                Some(shard.parse::<usize>().map_err(|_| {
                    format!("shard must be a number or '*', got {shard:?} in {spec:?}")
                })?)
            };
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "trip" => FaultKind::BudgetTrip,
            "shortwrite" => FaultKind::ShortWrite,
            "drop" => FaultKind::Drop,
            "corrupt" => FaultKind::Corrupt,
            "disconnect" => FaultKind::Disconnect,
            k => match k.strip_prefix("delay") {
                Some(ms) => {
                    let ms = ms.parse::<u64>().map_err(|_| {
                        format!("delay takes milliseconds (e.g. delay25), got {k:?} in {spec:?}")
                    })?;
                    FaultKind::Delay(Duration::from_millis(ms))
                }
                None => {
                    return Err(format!(
                        "unknown fault kind {k:?} in {spec:?} (expected panic, trip, \
                         delay<ms>, shortwrite, drop, corrupt, or disconnect)"
                    ));
                }
            },
        };
        Ok(FaultArm {
            stage: stage.into(),
            shard,
            kind,
            fired: AtomicBool::new(false),
        })
    }

    /// Read a plan from the `HIPPO_FAULT` environment variable. Unset
    /// (or set to whitespace) means no plan; a malformed value is an
    /// error naming the problem. Only callers that thread the result
    /// into their options are affected — the variable is never
    /// consulted implicitly.
    pub fn try_from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("HIPPO_FAULT") {
            Err(_) => Ok(None),
            Ok(s) if s.trim().is_empty() => Ok(None),
            Ok(s) => FaultPlan::parse(&s)
                .map(Some)
                .map_err(|e| format!("HIPPO_FAULT: {e}")),
        }
    }

    /// [`FaultPlan::try_from_env`], panicking on a malformed value.
    /// This is the startup hook for chaos legs: a typo like
    /// `prover:7:panik` must abort the run loudly instead of silently
    /// disabling the injection the run exists to exercise.
    pub fn from_env() -> Option<FaultPlan> {
        match FaultPlan::try_from_env() {
            Ok(plan) => plan,
            Err(e) => panic!("{e} — fix or unset HIPPO_FAULT"),
        }
    }

    /// Has any arm fired already? (Each arm fires at most once.)
    pub fn has_fired(&self) -> bool {
        self.arms.iter().any(|a| a.fired.load(Ordering::Relaxed))
    }

    /// Have all arms fired? (A crash-matrix run is done once every
    /// composed fault has been exercised.)
    pub fn all_fired(&self) -> bool {
        self.arms.iter().all(|a| a.fired.load(Ordering::Relaxed))
    }

    /// Consume the first matching unfired arm for `(stage, shard)`.
    fn try_fire(&self, stage: &str, shard: usize) -> Option<FaultKind> {
        self.arms.iter().find_map(|a| a.try_fire(stage, shard))
    }
}

/// The per-call governance bundle every pipeline stage consults: an
/// optional shared [`Budget`], an optional [`FaultPlan`], and the
/// strict/degraded policy switch. `Governance::default()` is the
/// zero-cost ungoverned call — every checkpoint is a single
/// `Option::None` branch.
#[derive(Debug, Clone, Default)]
pub struct Governance {
    /// The call's budget (deadline / row limit / cancellation), if any.
    pub budget: Option<Arc<Budget>>,
    /// Armed fault, if any (tests, CI smoke legs).
    pub faults: Option<Arc<FaultPlan>>,
    /// Degraded mode: absorb budget/cancellation trips after detection
    /// into a truncated [`ConsistentAnswer`] instead of erroring.
    pub degraded: bool,
}

impl Governance {
    /// Is any governance (budget or fault plan) attached at all?
    pub fn active(&self) -> bool {
        self.budget.is_some() || self.faults.is_some()
    }

    /// Borrow the budget for engine entry points that take
    /// `Option<&Budget>`.
    pub fn budget_ref(&self) -> Option<&Budget> {
        self.budget.as_deref()
    }

    /// Fire the armed fault if this `(stage, shard)` checkpoint matches:
    /// panic, sleep, or budget-trip error. A [`FaultKind::ShortWrite`]
    /// reaching this generic checkpoint (instead of a file-writing stage
    /// that consumes it via [`Governance::take_fault`]) is a loud error
    /// — the stage has no bytes to tear.
    pub fn fault_point(&self, stage: &'static str, shard: usize) -> Result<(), EngineError> {
        if let Some(plan) = &self.faults {
            if let Some(kind) = plan.try_fire(stage, shard) {
                match kind {
                    FaultKind::Panic => panic!("injected fault: panic at {stage}:{shard}"),
                    FaultKind::Delay(d) => std::thread::sleep(d),
                    FaultKind::BudgetTrip => {
                        if let Some(b) = &self.budget {
                            b.force_trip();
                        }
                        return Err(EngineError::budget(stage, 0, 0));
                    }
                    FaultKind::ShortWrite => {
                        return Err(EngineError::new(format!(
                            "injected fault: short write at {stage}:{shard} \
                             (stage writes no file; arm shortwrite at a wal/checkpoint stage)"
                        )));
                    }
                    FaultKind::Drop | FaultKind::Corrupt | FaultKind::Disconnect => {
                        return Err(EngineError::new(format!(
                            "injected fault: {kind:?} at {stage}:{shard} \
                             (stage sends no frames; arm it at a repl stage)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Consume the armed fault for `(stage, shard)` and hand back its
    /// raw [`FaultKind`] without acting on it. File-writing stages use
    /// this so they can implement [`FaultKind::ShortWrite`] themselves
    /// (truncate the write, then fail) and panic *inside* their own
    /// unwind boundary.
    pub fn take_fault(&self, stage: &str, shard: usize) -> Option<FaultKind> {
        self.faults.as_ref().and_then(|p| p.try_fire(stage, shard))
    }

    /// One full budget check (no-op without a budget).
    pub fn check(&self, stage: &'static str) -> Result<(), EngineError> {
        match &self.budget {
            Some(b) => b.check(stage),
            None => Ok(()),
        }
    }

    /// Strided budget check for hot loops (no-op without a budget).
    #[inline]
    pub fn tick(&self, counter: &mut u32, stage: &'static str) -> Result<(), EngineError> {
        match &self.budget {
            Some(b) => b.tick(counter, stage),
            None => Ok(()),
        }
    }

    /// Fault point plus full budget check — the standard shard-entry
    /// checkpoint.
    pub fn checkpoint(&self, stage: &'static str, shard: usize) -> Result<(), EngineError> {
        self.fault_point(stage, shard)?;
        self.check(stage)
    }
}

/// The stage a governance error tripped at (from its [`ErrorKind`]);
/// `"unknown"` for non-governance errors.
pub fn trip_stage(e: &EngineError) -> &'static str {
    match e.kind {
        ErrorKind::Budget { stage, .. } | ErrorKind::Cancelled { stage } => stage,
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_specs() {
        let p = FaultPlan::parse("prover:7:panic").unwrap();
        let a = &p.arms[0];
        assert_eq!(
            (a.stage.as_str(), a.shard, a.kind),
            ("prover", Some(7), FaultKind::Panic)
        );
        let p = FaultPlan::parse("detect:*:trip").unwrap();
        assert_eq!(
            (p.arms[0].shard, p.arms[0].kind),
            (None, FaultKind::BudgetTrip)
        );
        let p = FaultPlan::parse("membership:0:delay25").unwrap();
        assert_eq!(p.arms[0].kind, FaultKind::Delay(Duration::from_millis(25)));
        let p = FaultPlan::parse("wal:append:0:shortwrite").unwrap();
        let a = &p.arms[0];
        assert_eq!(
            (a.stage.as_str(), a.shard, a.kind),
            ("wal:append", Some(0), FaultKind::ShortWrite),
            "colon-ed stage names parse right-to-left"
        );
    }

    #[test]
    fn parse_composes_comma_separated_arms() {
        let p = FaultPlan::parse("wal:0:panic,detect:0:trip").unwrap();
        assert_eq!(p.arms.len(), 2);
        assert_eq!(p.try_fire("detect", 0), Some(FaultKind::BudgetTrip));
        assert!(p.has_fired() && !p.all_fired());
        // `wal` covers the `wal:append` sub-stage via segment prefix.
        assert_eq!(p.try_fire("wal:append", 0), Some(FaultKind::Panic));
        assert!(p.all_fired());
        assert!(p.try_fire("wal:fsync", 0).is_none(), "arms are one-shot");
    }

    #[test]
    fn stage_prefix_matches_whole_segments_only() {
        let p = FaultPlan::parse("wal:0:panic").unwrap();
        assert!(p.arms[0].covers("wal"));
        assert!(p.arms[0].covers("wal:fsync"));
        assert!(!p.arms[0].covers("walrus"), "not a segment boundary");
        let pinned = FaultPlan::parse("wal:fsync:0:panic").unwrap();
        assert!(!pinned.arms[0].covers("wal:append"));
        assert!(pinned.arms[0].covers("wal:fsync"));
    }

    #[test]
    fn malformed_specs_error_and_name_the_problem() {
        for (bad, names) in [
            ("", "stage:shard:kind"),
            ("prover", "stage:shard:kind"),
            ("prover:7", "stage:shard:kind"),
            ("prover:x:panic", "shard must be a number"),
            ("prover:7:boom", "unknown fault kind"),
            ("prover:7:panik", "unknown fault kind"),
            ("prover:7:delayxx", "delay takes milliseconds"),
            (":0:panic", "empty stage"),
            ("prover:7:panic,", "stage:shard:kind"),
            ("prover:7:panic,detect:0:zap", "unknown fault kind"),
            ("wal:0:panic,,detect:0:trip", "stage:shard:kind"),
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains(names), "{bad:?}: {err}");
            assert!(err.contains(bad), "error quotes the spec: {err}");
        }
    }

    #[test]
    fn transport_kinds_parse_and_cover_repl_checkpoints() {
        let p =
            FaultPlan::parse("repl:drop:*:drop,repl:corrupt:0:corrupt,repl:*:disconnect").unwrap();
        assert_eq!(p.try_fire("repl:drop", 3), Some(FaultKind::Drop));
        assert_eq!(p.try_fire("repl:corrupt", 0), Some(FaultKind::Corrupt));
        // The loose `repl` arm covers every transport sub-checkpoint.
        assert_eq!(p.try_fire("repl:delay", 1), Some(FaultKind::Disconnect));
        assert!(p.all_fired());
        // At a stage that sends no frames, transport kinds fail loudly.
        let gov = Governance {
            budget: None,
            faults: Some(Arc::new(FaultPlan::new("prover", None, FaultKind::Drop))),
            degraded: false,
        };
        let err = gov.fault_point("prover", 0).unwrap_err();
        assert!(err.message.contains("sends no frames"), "{err}");
    }

    #[test]
    fn shortwrite_at_fileless_stage_is_loud_error() {
        let gov = Governance {
            budget: None,
            faults: Some(Arc::new(FaultPlan::new(
                "prover",
                None,
                FaultKind::ShortWrite,
            ))),
            degraded: false,
        };
        let err = gov.fault_point("prover", 0).unwrap_err();
        assert!(err.message.contains("short write"), "{err}");
        // take_fault hands the raw kind to stages that implement it.
        let gov = Governance {
            budget: None,
            faults: Some(Arc::new(FaultPlan::new(
                "wal:append",
                Some(0),
                FaultKind::ShortWrite,
            ))),
            degraded: false,
        };
        assert_eq!(gov.take_fault("wal:append", 0), Some(FaultKind::ShortWrite));
        assert_eq!(gov.take_fault("wal:append", 0), None, "one-shot");
    }

    #[test]
    fn faults_fire_at_most_once_and_only_where_armed() {
        let p = FaultPlan::new("prover", Some(7), FaultKind::BudgetTrip);
        assert!(p.try_fire("prover", 3).is_none(), "wrong shard");
        assert!(p.try_fire("detect", 7).is_none(), "wrong stage");
        assert!(!p.has_fired());
        assert_eq!(p.try_fire("prover", 7), Some(FaultKind::BudgetTrip));
        assert!(p.has_fired());
        assert!(p.try_fire("prover", 7).is_none(), "one-shot");
    }

    #[test]
    fn wildcard_shard_fires_on_first_checkpoint() {
        let p = FaultPlan::new("corefilter", None, FaultKind::BudgetTrip);
        assert_eq!(p.try_fire("corefilter", 11), Some(FaultKind::BudgetTrip));
        assert!(p.try_fire("corefilter", 0).is_none());
    }

    #[test]
    fn governance_trip_forces_budget_exhaustion() {
        let gov = Governance {
            budget: Some(Arc::new(Budget::new())),
            faults: Some(Arc::new(FaultPlan::new(
                "prover",
                None,
                FaultKind::BudgetTrip,
            ))),
            degraded: false,
        };
        let err = gov.checkpoint("prover", 2).unwrap_err();
        assert!(err.is_budget());
        assert_eq!(trip_stage(&err), "prover");
        // The budget itself is now tripped: later checks fail too.
        assert!(gov.check("prover").unwrap_err().is_budget());
    }

    #[test]
    fn ungoverned_checkpoints_are_noops() {
        let gov = Governance::default();
        assert!(!gov.active());
        gov.checkpoint("prover", 0).unwrap();
        let mut c = 0;
        for _ in 0..1000 {
            gov.tick(&mut c, "prover").unwrap();
        }
    }
}
