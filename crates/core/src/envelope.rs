//! Enveloping: computing the candidate set.
//!
//! The **envelope** of a query `Q` is a query `env(Q)` whose evaluation on
//! the (possibly inconsistent) instance `D` is guaranteed to contain every
//! consistent answer, so the Prover only has to examine `env(Q)(D)`:
//!
//! * `env(R) = R`, `env(σ E) = σ env(E)`, `env(E1 × E2) = env(E1) × env(E2)`,
//!   `env(E1 ∪ E2) = env(E1) ∪ env(E2)`, `env(π E) = π env(E)`;
//! * `env(E1 − E2) = env(E1)` — the subtrahend is dropped, because a tuple
//!   can belong to `(E1 − E2)(D')` (and thus be a consistent answer) while
//!   being filtered out of the difference on `D` itself.
//!
//! The invariant is `E(D'') ⊆ env(E)(D)` for every subinstance `D'' ⊆ D`,
//! by induction on the structure; consistent answers live in `Q(D')` for
//! any repair `D' ⊆ D`, hence in the envelope.

use crate::query::SjudQuery;

/// Compute the envelope query of `q`.
pub fn envelope(q: &SjudQuery) -> SjudQuery {
    match q {
        SjudQuery::Rel(r) => SjudQuery::Rel(r.clone()),
        SjudQuery::Select { input, pred } => SjudQuery::Select {
            input: Box::new(envelope(input)),
            pred: pred.clone(),
        },
        SjudQuery::Product(l, r) => {
            SjudQuery::Product(Box::new(envelope(l)), Box::new(envelope(r)))
        }
        SjudQuery::Union(l, r) => SjudQuery::Union(Box::new(envelope(l)), Box::new(envelope(r))),
        // The whole point: drop the subtraction.
        SjudQuery::Diff(l, _) => envelope(l),
        SjudQuery::Permute { input, perm } => SjudQuery::Permute {
            input: Box::new(envelope(input)),
            perm: perm.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Row, Value};

    fn rows(xs: &[i64]) -> Vec<Row> {
        xs.iter().map(|&x| vec![Value::Int(x)]).collect()
    }

    #[test]
    fn envelope_drops_difference() {
        let q = SjudQuery::rel("r").diff(SjudQuery::rel("s"));
        assert_eq!(envelope(&q), SjudQuery::rel("r"));
    }

    #[test]
    fn envelope_is_homomorphic_elsewhere() {
        let q = SjudQuery::rel("r")
            .select(Pred::cmp_const(0, CmpOp::Gt, 0i64))
            .union(
                SjudQuery::rel("s")
                    .product(SjudQuery::rel("u"))
                    .permute(vec![1, 0]),
            );
        assert_eq!(
            envelope(&q),
            q,
            "no difference → envelope is the query itself"
        );
    }

    #[test]
    fn nested_differences_all_dropped() {
        // (r − s) − (u − v)  →  r
        let q = SjudQuery::rel("r")
            .diff(SjudQuery::rel("s"))
            .diff(SjudQuery::rel("u").diff(SjudQuery::rel("v")));
        assert_eq!(envelope(&q), SjudQuery::rel("r"));
    }

    #[test]
    fn difference_under_union_dropped_locally() {
        // (r − s) ∪ u  →  r ∪ u
        let q = SjudQuery::rel("r")
            .diff(SjudQuery::rel("s"))
            .union(SjudQuery::rel("u"));
        assert_eq!(envelope(&q), SjudQuery::rel("r").union(SjudQuery::rel("u")));
    }

    /// The containment invariant on concrete data: `E(D'') ⊆ env(E)(D)`
    /// for subinstances `D''` of `D`.
    #[test]
    fn envelope_contains_every_subinstance_result() {
        let q = SjudQuery::rel("r")
            .diff(SjudQuery::rel("s"))
            .union(SjudQuery::rel("u").select(Pred::cmp_const(0, CmpOp::Lt, 100i64)));
        let env = envelope(&q);
        let full = |rel: &str| match rel {
            "r" => rows(&[1, 2, 3]),
            "s" => rows(&[2, 3]),
            "u" => rows(&[5, 200]),
            _ => vec![],
        };
        let env_rows: std::collections::HashSet<Row> = env.eval_over(&full).into_iter().collect();
        // Enumerate a few subinstances (drop each element in turn).
        for drop_r in 0..3i64 {
            for drop_s in 0..2i64 {
                let sub = |rel: &str| -> Vec<Row> {
                    full(rel)
                        .into_iter()
                        .filter(|row| {
                            !(rel == "r" && row[0] == Value::Int(drop_r + 1)
                                || rel == "s" && row[0] == Value::Int(drop_s + 2))
                        })
                        .collect()
                };
                for row in q.eval_over(&sub) {
                    assert!(
                        env_rows.contains(&row),
                        "envelope misses {row:?} from subinstance"
                    );
                }
            }
        }
    }
}
