//! HProver: deciding consistent membership with the conflict hypergraph.
//!
//! A candidate tuple `t` is a **consistent answer** to `Q` iff `t ∈ Q(D')`
//! for every repair `D'`. The prover decides the complement: is there a
//! repair falsifying membership?
//!
//! 1. Instantiate the membership template for `t`, negate it, convert to
//!    DNF. Each disjunct demands certain facts **in** the repair (set `A`)
//!    and certain facts **out** (set `B`).
//! 2. A disjunct is repair-satisfiable iff there is an independent witness
//!    `S` with `A ⊆ S`, `S ∩ B = ∅`, such that every `b ∈ B` that exists
//!    in the database is *blocked* by a hyperedge `e ∋ b` with
//!    `e ∖ {b} ⊆ S` (maximality forces `b` in otherwise). Facts absent
//!    from `D` satisfy their negative literal trivially and falsify
//!    positive literals outright; facts present but non-conflicting are in
//!    every repair.
//! 3. Blocking-edge choices interact, so the prover backtracks over the
//!    candidate edges of each `b`. `|A| + |B|` is bounded by query size,
//!    so data complexity stays polynomial.
//!
//! Membership of facts in `D` is resolved through a [`MembershipSource`]:
//! the base system issues a SQL query per check (costly — the paper's
//! motivation for optimization), while knowledge gathering pre-computes the
//! answers during envelope evaluation.
//!
//! # Batched proving
//!
//! A [`Prover`] owns no per-candidate state beyond a reusable
//! **workspace** (literal-row buffers, membership memo, witness sets):
//! the immutable part — hypergraph, compiled template, per-literal
//! interned relation indexes — is split from the per-call scratch, so
//! one prover instance decides a whole batch of candidates with zero
//! steady-state allocation. The membership source is passed `&mut` per
//! call rather than owned, which is what lets
//! [`crate::hippo::Hippo::consistent_answers`] run one prover per
//! shard over a shared read-only graph (see the shard → merge answer
//! pipeline in [`crate::hippo`]).
//!
//! # Conflict-closure signatures
//!
//! [`Prover::closure_signature`] fingerprints a candidate by everything
//! the proof can depend on: the truth of each template guard on the
//! candidate, and per literal the prefetched membership flag plus the
//! interned [`crate::hypergraph::FactId`] of the instantiated fact
//! (`None` for facts outside every conflict). Two candidates with equal
//! signatures present the prover with bit-identical inputs — same
//! instantiated formula, same membership answers, same conflict
//! neighbourhoods — so their verdicts are interchangeable. The answer
//! pipeline memoizes verdicts per signature: on low-conflict workloads
//! every conflict-free candidate with the same guard/flag pattern
//! collapses to a single prover call per equivalence class.

use crate::formula::{to_dnf, Disjunct, MembershipTemplate};
use crate::hypergraph::{ConflictHypergraph, Vertex};
use crate::pred::Pred;
use hippo_engine::{EngineError, Row};
use rustc_hash::FxHashSet;

/// How the prover learns whether a base fact is present in the database.
pub trait MembershipSource {
    /// Is the fact `rel(values)` present in the current instance `D`?
    fn fact_in_db(&mut self, rel: &str, values: &Row) -> Result<bool, EngineError>;

    /// Literal-indexed fast path: the prover always asks about the fact of
    /// literal template `li` instantiated with the current candidate, so
    /// sources that prefetched per-literal answers (knowledge gathering)
    /// can respond with an array access instead of any lookup. Defaults to
    /// [`MembershipSource::fact_in_db`].
    fn literal_in_db(&mut self, li: usize, rel: &str, values: &Row) -> Result<bool, EngineError> {
        let _ = li;
        self.fact_in_db(rel, values)
    }
}

/// Counters accumulated while proving (experiment E5 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverRunStats {
    /// Tuples checked.
    pub tuples_checked: usize,
    /// Membership checks issued to the [`MembershipSource`].
    pub membership_checks: usize,
    /// DNF disjuncts examined.
    pub disjuncts_checked: usize,
    /// Blocking-edge backtracking steps.
    pub edge_visits: usize,
}

/// The prover, borrowing the hypergraph and the compiled query template.
///
/// The immutable inputs (graph, template, per-literal interned relation
/// indexes, guard list) are fixed at construction; everything a single
/// [`Prover::is_consistent_answer`] call needs — literal-row buffers,
/// the per-tuple membership memo, witness sets — lives in a reusable
/// workspace, so deciding a batch of candidates allocates only on the
/// first call. The membership source is passed `&mut` per call.
pub struct Prover<'a> {
    graph: &'a ConflictHypergraph,
    template: &'a MembershipTemplate,
    /// Per-literal interned relation index in the graph (`None` when the
    /// relation is in no conflict at all, so no fact of it is interned).
    lit_rels: Vec<Option<u32>>,
    /// Template guards in deterministic pre-order (signature input).
    guards: Vec<&'a Pred>,
    /// Statistics for this run.
    pub stats: ProverRunStats,
    // ---- reusable per-call workspace ----
    lit_rows: Vec<Row>,
    in_db: Vec<Option<bool>>,
    a_set: FxHashSet<Vertex>,
    s_set: FxHashSet<Vertex>,
}

impl<'a> Prover<'a> {
    /// Create a prover for one query template.
    pub fn new(graph: &'a ConflictHypergraph, template: &'a MembershipTemplate) -> Prover<'a> {
        let lit_rels = template
            .literals
            .iter()
            .map(|l| graph.relation_index(&l.rel))
            .collect();
        let guards = template.guards();
        Prover {
            graph,
            template,
            lit_rels,
            guards,
            stats: ProverRunStats::default(),
            lit_rows: Vec::new(),
            in_db: Vec::new(),
            a_set: FxHashSet::default(),
            s_set: FxHashSet::default(),
        }
    }

    /// Conflicting vertices carrying literal `li`'s fact for the current
    /// tuple (resolved through the interned-fact index; empty for facts
    /// outside every conflict).
    fn lit_vertices(&self, li: usize, lit_rows: &[Row]) -> &'a [Vertex] {
        match self.lit_rels[li].and_then(|r| self.graph.fact_id_interned(r, &lit_rows[li])) {
            Some(fid) => self.graph.vertices_of_fact_id(fid),
            None => &[],
        }
    }

    /// Compute the candidate's **conflict-closure signature** into `sig`
    /// (cleared first): packed guard truth bits, then one word per
    /// literal combining the prefetched membership flag with the
    /// interned [`crate::hypergraph::FactId`] of the instantiated fact.
    /// Equal signatures (under one prover) guarantee equal verdicts, so
    /// callers may cache `is_consistent_answer` results keyed by the
    /// signature. Allocation-free: facts are probed as projections of
    /// `tuple`, never materialised. `flags` must be the per-literal
    /// membership answers (knowledge gathering prefetches them).
    pub fn closure_signature(&self, tuple: &Row, flags: &[bool], sig: &mut Vec<u64>) {
        debug_assert_eq!(flags.len(), self.template.literals.len());
        sig.clear();
        let mut word = 0u64;
        for (i, g) in self.guards.iter().enumerate() {
            if g.eval(tuple) {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                sig.push(word);
                word = 0;
            }
        }
        if !self.guards.len().is_multiple_of(64) {
            sig.push(word);
        }
        for (li, lit) in self.template.literals.iter().enumerate() {
            let fid =
                self.lit_rels[li].and_then(|r| self.graph.fact_id_projected(r, tuple, &lit.cols));
            sig.push(u64::from(flags[li]) | fid.map_or(0, |f| (u64::from(f.0) + 1) << 1));
        }
    }

    /// Is `tuple` a consistent answer to the template's query?
    pub fn is_consistent_answer<M: MembershipSource>(
        &mut self,
        tuple: &Row,
        membership: &mut M,
    ) -> Result<bool, EngineError> {
        self.stats.tuples_checked += 1;
        let formula = self.template.instantiate(tuple);
        let negated = crate::formula::negate(formula);
        let dnf = to_dnf(&negated);
        if dnf.is_empty() {
            return Ok(true);
        }
        // Resolve every literal once per tuple into the reusable
        // workspace: instantiating a literal template is the only place
        // row values are copied; all later membership and hypergraph
        // probes borrow from here. Membership answers are memoized so
        // each literal consults the source at most once per tuple, no
        // matter how many disjuncts mention it.
        let mut lit_rows = std::mem::take(&mut self.lit_rows);
        lit_rows.resize_with(self.template.literals.len(), Row::new);
        for (li, lit) in self.template.literals.iter().enumerate() {
            let row = &mut lit_rows[li];
            row.clear();
            row.extend(lit.cols.iter().map(|&c| tuple[c].clone()));
        }
        let mut in_db = std::mem::take(&mut self.in_db);
        in_db.clear();
        in_db.resize(self.template.literals.len(), None);
        let mut verdict = Ok(true);
        for disjunct in &dnf {
            self.stats.disjuncts_checked += 1;
            match self.disjunct_satisfiable(disjunct, &lit_rows, &mut in_db, membership) {
                // Some repair falsifies membership → not consistent.
                Ok(true) => {
                    verdict = Ok(false);
                    break;
                }
                Ok(false) => {}
                Err(e) => {
                    verdict = Err(e);
                    break;
                }
            }
        }
        self.lit_rows = lit_rows;
        self.in_db = in_db;
        verdict
    }

    /// Memoized membership check for literal `li` (free of `self` borrows
    /// beyond `stats`/`template` so callers can hold the workspace).
    fn lit_in_db<M: MembershipSource>(
        stats: &mut ProverRunStats,
        template: &MembershipTemplate,
        li: usize,
        lit_rows: &[Row],
        memo: &mut [Option<bool>],
        membership: &mut M,
    ) -> Result<bool, EngineError> {
        if let Some(b) = memo[li] {
            return Ok(b);
        }
        stats.membership_checks += 1;
        let b = membership.literal_in_db(li, &template.literals[li].rel, &lit_rows[li])?;
        memo[li] = Some(b);
        Ok(b)
    }

    /// Can some repair contain all `positive` facts and none of the
    /// `negative` facts?
    fn disjunct_satisfiable<M: MembershipSource>(
        &mut self,
        d: &Disjunct,
        lit_rows: &[Row],
        in_db: &mut [Option<bool>],
        membership: &mut M,
    ) -> Result<bool, EngineError> {
        // Resolve literals to facts and database status.
        // A-side: every positive fact must exist in D; collect the vertex
        // choices carrying it (non-conflicting facts are in every repair
        // and impose nothing). Choices borrow the hypergraph's fact index
        // directly — no copy.
        let mut a_choices: Vec<&[Vertex]> = Vec::new();
        for &li in &d.positive {
            if !Self::lit_in_db(
                &mut self.stats,
                self.template,
                li,
                lit_rows,
                in_db,
                membership,
            )? {
                return Ok(false); // required fact missing from D entirely
            }
            let vs = self.lit_vertices(li, lit_rows);
            if !vs.is_empty() {
                // Conflicting fact: must pick one of its physical tuples to
                // keep. (Non-conflicting facts are kept automatically.)
                a_choices.push(vs);
            }
        }
        // B-side: negative facts absent from D are trivially satisfied;
        // present, non-conflicting facts are in every repair → unsat;
        // present conflicting facts must have *all* their carrying
        // vertices excluded.
        let mut b_vertices: Vec<Vertex> = Vec::new();
        for &li in &d.negative {
            if !Self::lit_in_db(
                &mut self.stats,
                self.template,
                li,
                lit_rows,
                in_db,
                membership,
            )? {
                continue;
            }
            let vs = self.lit_vertices(li, lit_rows);
            if vs.is_empty() {
                return Ok(false); // in D, never in a conflict → in every repair
            }
            b_vertices.extend_from_slice(vs);
        }
        b_vertices.sort_unstable();
        b_vertices.dedup();

        // Enumerate A-side vertex choices (usually singletons) with the
        // reusable witness sets.
        let mut a = std::mem::take(&mut self.a_set);
        let mut s = std::mem::take(&mut self.s_set);
        a.clear();
        let out = self.enumerate_a(&a_choices, 0, &mut a, &b_vertices, &mut s);
        self.a_set = a;
        self.s_set = s;
        out
    }

    fn enumerate_a(
        &mut self,
        choices: &[&[Vertex]],
        idx: usize,
        a: &mut FxHashSet<Vertex>,
        b: &[Vertex],
        s: &mut FxHashSet<Vertex>,
    ) -> Result<bool, EngineError> {
        if idx == choices.len() {
            // A complete; reject if it intersects B (B is sorted).
            if a.iter().any(|v| b.binary_search(v).is_ok()) {
                return Ok(false);
            }
            if !self.graph.is_independent(a) {
                return Ok(false);
            }
            s.clear();
            s.extend(a.iter().copied());
            return Ok(self.block_all(b, 0, s));
        }
        for &v in choices[idx] {
            let inserted = a.insert(v);
            let ok = self.enumerate_a(choices, idx + 1, a, b, s)?;
            if inserted {
                a.remove(&v);
            }
            if ok {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Backtracking search for blocking edges: for each `b` pick an edge
    /// `e ∋ b` with `e ∖ {b}` disjoint from B, add `e ∖ {b}` to the witness
    /// `s`, and keep `s` independent. `b` stays sorted, so exclusion tests
    /// are binary searches.
    fn block_all(&mut self, b: &[Vertex], idx: usize, s: &mut FxHashSet<Vertex>) -> bool {
        if idx == b.len() {
            return true;
        }
        let graph = self.graph;
        let v = b[idx];
        // Already blocked by the current witness? (Common: v conflicts
        // directly with an A-side vertex.)
        if graph.is_blocked_by(v, s) {
            return self.block_all(b, idx + 1, s);
        }
        for &eid in graph.edges_of(v) {
            self.stats.edge_visits += 1;
            let edge = graph.edge(eid);
            // e ∖ {v} must avoid B (those must stay out) and v itself.
            if edge.iter().any(|u| *u != v && b.binary_search(u).is_ok()) {
                continue;
            }
            let added: Vec<Vertex> = edge
                .iter()
                .filter(|u| **u != v && !s.contains(*u))
                .copied()
                .collect();
            for &u in &added {
                s.insert(u);
            }
            if graph.is_independent(s) && self.block_all(b, idx + 1, s) {
                return true;
            }
            for &u in &added {
                s.remove(&u);
            }
        }
        false
    }
}

/// A membership source answering from the engine catalog directly (no SQL
/// round trip). Used in tests and as the in-memory fast path.
pub struct CatalogMembership<'a> {
    /// The catalog to probe.
    pub catalog: &'a hippo_engine::Catalog,
}

impl<'a> MembershipSource for CatalogMembership<'a> {
    fn fact_in_db(&mut self, rel: &str, values: &Row) -> Result<bool, EngineError> {
        Ok(!self.catalog.table(rel)?.find_exact(values).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::DenialConstraint;
    use crate::detect::detect_conflicts;
    use crate::pred::{CmpOp, Pred};
    use crate::query::SjudQuery;
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn check(
        db: &Database,
        constraints: &[DenialConstraint],
        q: &SjudQuery,
        tuple: Vec<Value>,
    ) -> bool {
        let (g, _) = detect_conflicts(db.catalog(), constraints).unwrap();
        let template = MembershipTemplate::build(q, db.catalog()).unwrap();
        let mut prover = Prover::new(&g, &template);
        let mut membership = CatalogMembership {
            catalog: db.catalog(),
        };
        prover
            .is_consistent_answer(&tuple, &mut membership)
            .unwrap()
    }

    #[test]
    fn conflicting_tuple_is_not_consistent() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp");
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(100)]
        ));
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(200)]
        ));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300)]
        ));
    }

    #[test]
    fn absent_tuple_is_not_consistent_for_positive_query() {
        let db = emp_db(&[("ann", 100)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp");
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("zzz"), Value::Int(1)]
        ));
    }

    #[test]
    fn selection_gates_consistency() {
        let db = emp_db(&[("ann", 100), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 200i64));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300)]
        ));
        assert!(
            !check(&db, &fd, &q, vec![Value::text("ann"), Value::Int(100)]),
            "fails the selection, so not an answer at all"
        );
    }

    #[test]
    fn union_saves_tuples_conflicting_on_one_side() {
        // ann appears with two salaries; query: salary >= 150 ∪ salary < 150.
        // Each disjunct alone is inconsistent for ann, but the union
        // σ≥150(emp) ∪ σ<150(emp) contains *neither* ann tuple in every
        // repair... Actually each repair keeps exactly one ann tuple, which
        // satisfies one of the two selections; the *fact* (ann, 100) is in
        // the union result only when that tuple is kept. So (ann,100) is
        // still not consistent. The union that demonstrates indefinite
        // information is over *permuted* name-only style queries, which
        // need projection; here we verify the formula semantics instead:
        let db = emp_db(&[("ann", 100), ("ann", 200)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp")
            .select(Pred::cmp_const(1, CmpOp::Ge, 150i64))
            .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Lt, 150i64)));
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(100)]
        ));
    }

    #[test]
    fn difference_with_conflicting_subtrahend() {
        // q = emp − σ_{salary<150}(emp). For bob (no conflict, salary 300):
        // bob ∈ emp always, bob ∉ σ (salary 300) → consistent.
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300)]
        ));
        // (ann, 200): in the repair keeping (ann,200), 200 ∉ σ<150 → in
        // result; in the repair keeping (ann,100), (ann,200) ∉ emp → not in
        // result. Not consistent.
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(200)]
        ));
    }

    #[test]
    fn difference_where_subtrahend_tuple_is_in_no_repair() {
        // Add a CHECK constraint banning negative salaries: (cyd, -5) is in
        // no repair (singleton edge). Then cyd's row in `other` minus
        // emp-rows-with-name-cyd: consistent because the emp tuple is
        // always deleted.
        use crate::constraint::{AttrRef, Comparison, Term};
        let mut db = emp_db(&[("cyd", -5)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "other",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows("other", vec![vec![Value::text("cyd"), Value::Int(-5)]])
            .unwrap();
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let q = SjudQuery::rel("other").diff(SjudQuery::rel("emp"));
        // (cyd, -5) ∈ other (consistent, no constraints on other); the
        // subtracted emp tuple is in no repair → answer is consistent.
        assert!(check(
            &db,
            &[chk],
            &q,
            vec![Value::text("cyd"), Value::Int(-5)]
        ));
    }

    #[test]
    fn product_requires_both_sides_consistent() {
        let mut db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new("dept", vec![Column::new("dname", DataType::Text)], &[]).unwrap(),
            )
            .unwrap();
        db.insert_rows("dept", vec![vec![Value::text("cs")]])
            .unwrap();
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp").product(SjudQuery::rel("dept"));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300), Value::text("cs")]
        ));
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(100), Value::text("cs")]
        ));
    }

    #[test]
    fn prover_matches_naive_on_small_fd_instance() {
        use crate::repair::{enumerate_repairs, repair_instance};
        let db = emp_db(&[
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("bob", 400),
            ("cyd", 5),
        ]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            350i64,
        )));
        // Naive: intersect over all repairs.
        let repairs = enumerate_repairs(&g, None);
        let mut naive: Option<std::collections::HashSet<Vec<Value>>> = None;
        for r in &repairs {
            let inst = repair_instance(db.catalog(), &g, r);
            let rows: std::collections::HashSet<Vec<Value>> =
                q.eval_over(&inst).into_iter().collect();
            naive = Some(match naive {
                None => rows,
                Some(acc) => acc.intersection(&rows).cloned().collect(),
            });
        }
        let naive = naive.unwrap();
        // Prover: check every tuple in the envelope (here: all emp rows),
        // reusing one prover + workspace across the whole batch.
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let mut prover = Prover::new(&g, &template);
        let mut membership = CatalogMembership {
            catalog: db.catalog(),
        };
        for (_, row) in db.catalog().table("emp").unwrap().iter() {
            let expected = naive.contains(row);
            let got = prover.is_consistent_answer(row, &mut membership).unwrap();
            assert_eq!(got, expected, "tuple {row:?}");
        }
    }

    #[test]
    fn stats_are_recorded() {
        let db = emp_db(&[("ann", 100), ("ann", 200)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp");
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let mut prover = Prover::new(&g, &template);
        let mut membership = CatalogMembership {
            catalog: db.catalog(),
        };
        prover
            .is_consistent_answer(&vec![Value::text("ann"), Value::Int(100)], &mut membership)
            .unwrap();
        assert_eq!(prover.stats.tuples_checked, 1);
        assert!(prover.stats.membership_checks >= 1);
        assert!(prover.stats.disjuncts_checked >= 1);
    }

    #[test]
    fn equal_signatures_imply_equal_verdicts() {
        // Four candidates: two conflict-free with identical flags (must
        // share a signature), one conflicting (distinct), one failing a
        // guard (distinct from the passing ones).
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 400)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 150i64));
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let prover = Prover::new(&g, &template);
        let sig = |row: &Row| {
            let mut s = Vec::new();
            prover.closure_signature(row, &[true], &mut s);
            s
        };
        let bob = vec![Value::text("bob"), Value::Int(300)];
        let cyd = vec![Value::text("cyd"), Value::Int(400)];
        let ann = vec![Value::text("ann"), Value::Int(200)];
        let low = vec![Value::text("bob"), Value::Int(100)];
        assert_eq!(sig(&bob), sig(&cyd), "conflict-free candidates collapse");
        assert_ne!(
            sig(&bob),
            sig(&ann),
            "conflicting fact changes the signature"
        );
        assert_ne!(sig(&bob), sig(&low), "guard outcome changes the signature");
        // And the collapse is sound: identical verdicts.
        let mut prover = prover;
        let mut m = CatalogMembership {
            catalog: db.catalog(),
        };
        assert_eq!(
            prover.is_consistent_answer(&bob, &mut m).unwrap(),
            prover.is_consistent_answer(&cyd, &mut m).unwrap()
        );
    }
}
