//! HProver: deciding consistent membership with the conflict hypergraph.
//!
//! A candidate tuple `t` is a **consistent answer** to `Q` iff `t ∈ Q(D')`
//! for every repair `D'`. The prover decides the complement: is there a
//! repair falsifying membership?
//!
//! 1. Instantiate the membership template for `t`, negate it, convert to
//!    DNF. Each disjunct demands certain facts **in** the repair (set `A`)
//!    and certain facts **out** (set `B`).
//! 2. A disjunct is repair-satisfiable iff there is an independent witness
//!    `S` with `A ⊆ S`, `S ∩ B = ∅`, such that every `b ∈ B` that exists
//!    in the database is *blocked* by a hyperedge `e ∋ b` with
//!    `e ∖ {b} ⊆ S` (maximality forces `b` in otherwise). Facts absent
//!    from `D` satisfy their negative literal trivially and falsify
//!    positive literals outright; facts present but non-conflicting are in
//!    every repair.
//! 3. Blocking-edge choices interact, so the prover backtracks over the
//!    candidate edges of each `b`. `|A| + |B|` is bounded by query size,
//!    so data complexity stays polynomial.
//!
//! Membership of facts in `D` is resolved through a [`MembershipSource`]:
//! the base system issues a SQL query per check (costly — the paper's
//! motivation for optimization), while knowledge gathering pre-computes the
//! answers during envelope evaluation.

use crate::formula::{to_dnf, Disjunct, MembershipTemplate};
use crate::hypergraph::{ConflictHypergraph, Fact, Vertex};
use hippo_engine::{EngineError, Row};
use rustc_hash::FxHashSet;

/// How the prover learns whether a base fact is present in the database.
pub trait MembershipSource {
    /// Is the fact `rel(values)` present in the current instance `D`?
    fn fact_in_db(&mut self, rel: &str, values: &Row) -> Result<bool, EngineError>;

    /// Literal-indexed fast path: the prover always asks about the fact of
    /// literal template `li` instantiated with the current candidate, so
    /// sources that prefetched per-literal answers (knowledge gathering)
    /// can respond with an array access instead of any lookup. Defaults to
    /// [`MembershipSource::fact_in_db`].
    fn literal_in_db(&mut self, li: usize, rel: &str, values: &Row) -> Result<bool, EngineError> {
        let _ = li;
        self.fact_in_db(rel, values)
    }
}

/// Counters accumulated while proving (experiment E5 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverRunStats {
    /// Tuples checked.
    pub tuples_checked: usize,
    /// Membership checks issued to the [`MembershipSource`].
    pub membership_checks: usize,
    /// DNF disjuncts examined.
    pub disjuncts_checked: usize,
    /// Blocking-edge backtracking steps.
    pub edge_visits: usize,
}

/// The prover, borrowing the hypergraph and a membership source.
pub struct Prover<'a, M: MembershipSource> {
    graph: &'a ConflictHypergraph,
    template: &'a MembershipTemplate,
    membership: M,
    /// Statistics for this run.
    pub stats: ProverRunStats,
}

impl<'a, M: MembershipSource> Prover<'a, M> {
    /// Create a prover for one query template.
    pub fn new(
        graph: &'a ConflictHypergraph,
        template: &'a MembershipTemplate,
        membership: M,
    ) -> Self {
        Prover {
            graph,
            template,
            membership,
            stats: ProverRunStats::default(),
        }
    }

    /// Recover the membership source (e.g. to read query counters).
    pub fn into_membership(self) -> M {
        self.membership
    }

    /// Is `tuple` a consistent answer to the template's query?
    pub fn is_consistent_answer(&mut self, tuple: &Row) -> Result<bool, EngineError> {
        self.stats.tuples_checked += 1;
        let formula = self.template.instantiate(tuple);
        let negated = crate::formula::negate(formula);
        let dnf = to_dnf(&negated);
        if dnf.is_empty() {
            return Ok(true);
        }
        // Resolve every literal once per tuple: instantiating a literal
        // template is the only place a row is built; all later membership
        // and hypergraph probes borrow from here. Membership answers are
        // memoized so each literal consults the source at most once per
        // tuple, no matter how many disjuncts mention it.
        let facts: Vec<Fact> = self
            .template
            .literals
            .iter()
            .map(|l| l.instantiate(tuple))
            .collect();
        let mut in_db: Vec<Option<bool>> = vec![None; facts.len()];
        for disjunct in &dnf {
            self.stats.disjuncts_checked += 1;
            if self.disjunct_satisfiable(disjunct, &facts, &mut in_db)? {
                // Some repair falsifies membership → not consistent.
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Memoized membership check for literal `li`.
    fn lit_in_db(
        &mut self,
        li: usize,
        facts: &[Fact],
        memo: &mut [Option<bool>],
    ) -> Result<bool, EngineError> {
        if let Some(b) = memo[li] {
            return Ok(b);
        }
        self.stats.membership_checks += 1;
        let fact = &facts[li];
        let b = self.membership.literal_in_db(li, &fact.rel, &fact.values)?;
        memo[li] = Some(b);
        Ok(b)
    }

    /// Can some repair contain all `positive` facts and none of the
    /// `negative` facts?
    fn disjunct_satisfiable(
        &mut self,
        d: &Disjunct,
        facts: &[Fact],
        in_db: &mut [Option<bool>],
    ) -> Result<bool, EngineError> {
        let graph = self.graph;
        // Resolve literals to facts and database status.
        // A-side: every positive fact must exist in D; collect the vertex
        // choices carrying it (non-conflicting facts are in every repair
        // and impose nothing). Choices borrow the hypergraph's fact index
        // directly — no copy.
        let mut a_choices: Vec<&[Vertex]> = Vec::new();
        for &li in &d.positive {
            if !self.lit_in_db(li, facts, in_db)? {
                return Ok(false); // required fact missing from D entirely
            }
            let fact = &facts[li];
            let vs = graph.vertices_of_fact(&fact.rel, &fact.values);
            if !vs.is_empty() {
                // Conflicting fact: must pick one of its physical tuples to
                // keep. (Non-conflicting facts are kept automatically.)
                a_choices.push(vs);
            }
        }
        // B-side: negative facts absent from D are trivially satisfied;
        // present, non-conflicting facts are in every repair → unsat;
        // present conflicting facts must have *all* their carrying
        // vertices excluded.
        let mut b_vertices: Vec<Vertex> = Vec::new();
        for &li in &d.negative {
            if !self.lit_in_db(li, facts, in_db)? {
                continue;
            }
            let fact = &facts[li];
            let vs = graph.vertices_of_fact(&fact.rel, &fact.values);
            if vs.is_empty() {
                return Ok(false); // in D, never in a conflict → in every repair
            }
            b_vertices.extend_from_slice(vs);
        }
        b_vertices.sort_unstable();
        b_vertices.dedup();

        // Enumerate A-side vertex choices (usually singletons).
        let mut a = FxHashSet::default();
        self.enumerate_a(&a_choices, 0, &mut a, &b_vertices)
    }

    fn enumerate_a(
        &mut self,
        choices: &[&[Vertex]],
        idx: usize,
        a: &mut FxHashSet<Vertex>,
        b: &[Vertex],
    ) -> Result<bool, EngineError> {
        if idx == choices.len() {
            // A complete; reject if it intersects B (B is sorted).
            if a.iter().any(|v| b.binary_search(v).is_ok()) {
                return Ok(false);
            }
            if !self.graph.is_independent(a) {
                return Ok(false);
            }
            let mut s = a.clone();
            return Ok(self.block_all(b, 0, &mut s));
        }
        for &v in choices[idx] {
            let inserted = a.insert(v);
            let ok = self.enumerate_a(choices, idx + 1, a, b)?;
            if inserted {
                a.remove(&v);
            }
            if ok {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Backtracking search for blocking edges: for each `b` pick an edge
    /// `e ∋ b` with `e ∖ {b}` disjoint from B, add `e ∖ {b}` to the witness
    /// `s`, and keep `s` independent. `b` stays sorted, so exclusion tests
    /// are binary searches.
    fn block_all(&mut self, b: &[Vertex], idx: usize, s: &mut FxHashSet<Vertex>) -> bool {
        if idx == b.len() {
            return true;
        }
        let graph = self.graph;
        let v = b[idx];
        // Already blocked by the current witness? (Common: v conflicts
        // directly with an A-side vertex.)
        if graph.is_blocked_by(v, s) {
            return self.block_all(b, idx + 1, s);
        }
        for &eid in graph.edges_of(v) {
            self.stats.edge_visits += 1;
            let edge = graph.edge(eid);
            // e ∖ {v} must avoid B (those must stay out) and v itself.
            if edge.iter().any(|u| *u != v && b.binary_search(u).is_ok()) {
                continue;
            }
            let added: Vec<Vertex> = edge
                .iter()
                .filter(|u| **u != v && !s.contains(*u))
                .copied()
                .collect();
            for &u in &added {
                s.insert(u);
            }
            if graph.is_independent(s) && self.block_all(b, idx + 1, s) {
                return true;
            }
            for &u in &added {
                s.remove(&u);
            }
        }
        false
    }
}

/// A membership source answering from the engine catalog directly (no SQL
/// round trip). Used in tests and as the in-memory fast path.
pub struct CatalogMembership<'a> {
    /// The catalog to probe.
    pub catalog: &'a hippo_engine::Catalog,
}

impl<'a> MembershipSource for CatalogMembership<'a> {
    fn fact_in_db(&mut self, rel: &str, values: &Row) -> Result<bool, EngineError> {
        Ok(!self.catalog.table(rel)?.find_exact(values).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::DenialConstraint;
    use crate::detect::detect_conflicts;
    use crate::pred::{CmpOp, Pred};
    use crate::query::SjudQuery;
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn check(
        db: &Database,
        constraints: &[DenialConstraint],
        q: &SjudQuery,
        tuple: Vec<Value>,
    ) -> bool {
        let (g, _) = detect_conflicts(db.catalog(), constraints).unwrap();
        let template = MembershipTemplate::build(q, db.catalog()).unwrap();
        let mut prover = Prover::new(
            &g,
            &template,
            CatalogMembership {
                catalog: db.catalog(),
            },
        );
        prover.is_consistent_answer(&tuple).unwrap()
    }

    #[test]
    fn conflicting_tuple_is_not_consistent() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp");
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(100)]
        ));
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(200)]
        ));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300)]
        ));
    }

    #[test]
    fn absent_tuple_is_not_consistent_for_positive_query() {
        let db = emp_db(&[("ann", 100)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp");
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("zzz"), Value::Int(1)]
        ));
    }

    #[test]
    fn selection_gates_consistency() {
        let db = emp_db(&[("ann", 100), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 200i64));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300)]
        ));
        assert!(
            !check(&db, &fd, &q, vec![Value::text("ann"), Value::Int(100)]),
            "fails the selection, so not an answer at all"
        );
    }

    #[test]
    fn union_saves_tuples_conflicting_on_one_side() {
        // ann appears with two salaries; query: salary >= 150 ∪ salary < 150.
        // Each disjunct alone is inconsistent for ann, but the union
        // σ≥150(emp) ∪ σ<150(emp) contains *neither* ann tuple in every
        // repair... Actually each repair keeps exactly one ann tuple, which
        // satisfies one of the two selections; the *fact* (ann, 100) is in
        // the union result only when that tuple is kept. So (ann,100) is
        // still not consistent. The union that demonstrates indefinite
        // information is over *permuted* name-only style queries, which
        // need projection; here we verify the formula semantics instead:
        let db = emp_db(&[("ann", 100), ("ann", 200)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp")
            .select(Pred::cmp_const(1, CmpOp::Ge, 150i64))
            .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Lt, 150i64)));
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(100)]
        ));
    }

    #[test]
    fn difference_with_conflicting_subtrahend() {
        // q = emp − σ_{salary<150}(emp). For bob (no conflict, salary 300):
        // bob ∈ emp always, bob ∉ σ (salary 300) → consistent.
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300)]
        ));
        // (ann, 200): in the repair keeping (ann,200), 200 ∉ σ<150 → in
        // result; in the repair keeping (ann,100), (ann,200) ∉ emp → not in
        // result. Not consistent.
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(200)]
        ));
    }

    #[test]
    fn difference_where_subtrahend_tuple_is_in_no_repair() {
        // Add a CHECK constraint banning negative salaries: (cyd, -5) is in
        // no repair (singleton edge). Then cyd's row in `other` minus
        // emp-rows-with-name-cyd: consistent because the emp tuple is
        // always deleted.
        use crate::constraint::{AttrRef, Comparison, Term};
        let mut db = emp_db(&[("cyd", -5)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "other",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows("other", vec![vec![Value::text("cyd"), Value::Int(-5)]])
            .unwrap();
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let q = SjudQuery::rel("other").diff(SjudQuery::rel("emp"));
        // (cyd, -5) ∈ other (consistent, no constraints on other); the
        // subtracted emp tuple is in no repair → answer is consistent.
        assert!(check(
            &db,
            &[chk],
            &q,
            vec![Value::text("cyd"), Value::Int(-5)]
        ));
    }

    #[test]
    fn product_requires_both_sides_consistent() {
        let mut db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new("dept", vec![Column::new("dname", DataType::Text)], &[]).unwrap(),
            )
            .unwrap();
        db.insert_rows("dept", vec![vec![Value::text("cs")]])
            .unwrap();
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let q = SjudQuery::rel("emp").product(SjudQuery::rel("dept"));
        assert!(check(
            &db,
            &fd,
            &q,
            vec![Value::text("bob"), Value::Int(300), Value::text("cs")]
        ));
        assert!(!check(
            &db,
            &fd,
            &q,
            vec![Value::text("ann"), Value::Int(100), Value::text("cs")]
        ));
    }

    #[test]
    fn prover_matches_naive_on_small_fd_instance() {
        use crate::repair::{enumerate_repairs, repair_instance};
        let db = emp_db(&[
            ("ann", 100),
            ("ann", 200),
            ("bob", 300),
            ("bob", 400),
            ("cyd", 5),
        ]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Ge,
            350i64,
        )));
        // Naive: intersect over all repairs.
        let repairs = enumerate_repairs(&g, None);
        let mut naive: Option<std::collections::HashSet<Vec<Value>>> = None;
        for r in &repairs {
            let inst = repair_instance(db.catalog(), &g, r);
            let rows: std::collections::HashSet<Vec<Value>> =
                q.eval_over(&inst).into_iter().collect();
            naive = Some(match naive {
                None => rows,
                Some(acc) => acc.intersection(&rows).cloned().collect(),
            });
        }
        let naive = naive.unwrap();
        // Prover: check every tuple in the envelope (here: all emp rows).
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let mut prover = Prover::new(
            &g,
            &template,
            CatalogMembership {
                catalog: db.catalog(),
            },
        );
        for (_, row) in db.catalog().table("emp").unwrap().iter() {
            let expected = naive.contains(row);
            let got = prover.is_consistent_answer(row).unwrap();
            assert_eq!(got, expected, "tuple {row:?}");
        }
    }

    #[test]
    fn stats_are_recorded() {
        let db = emp_db(&[("ann", 100), ("ann", 200)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp");
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let mut prover = Prover::new(
            &g,
            &template,
            CatalogMembership {
                catalog: db.catalog(),
            },
        );
        prover
            .is_consistent_answer(&vec![Value::text("ann"), Value::Int(100)])
            .unwrap();
        assert_eq!(prover.stats.tuples_checked, 1);
        assert!(prover.stats.membership_checks >= 1);
        assert!(prover.stats.disjuncts_checked >= 1);
    }
}
