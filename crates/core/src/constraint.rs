//! Denial constraints.
//!
//! A *denial constraint* forbids a combination of tuples:
//!
//! ```text
//! ∀ t1 ∈ R1, …, tk ∈ Rk :  ¬( φ(t1, …, tk) )
//! ```
//!
//! where `φ` is a conjunction/boolean combination of comparisons between
//! the tuples' attributes and constants. Functional dependencies and
//! exclusion constraints are the common special cases; single-atom denials
//! express CHECK-style conditions. The class matters because every
//! violation involves at most `k` tuples, so all violations form a
//! polynomial-size **conflict hypergraph** with hyperedges of bounded size.

use crate::pred::{CmpOp, Operand, Pred};
use hippo_engine::{Catalog, EngineError, Value};
use std::fmt;

/// A reference to an attribute of one of the constraint's atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrRef {
    /// Which atom (index into [`DenialConstraint::atoms`]).
    pub atom: usize,
    /// Column within that atom's relation.
    pub col: usize,
}

/// One side of a constraint comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Attribute of an atom.
    Attr(AttrRef),
    /// Constant.
    Const(Value),
}

/// A comparison inside a denial constraint's condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Operator.
    pub op: CmpOp,
    /// Left term.
    pub left: Term,
    /// Right term.
    pub right: Term,
}

impl Comparison {
    /// Attribute-to-attribute equality shorthand.
    pub fn attr_eq(a: AttrRef, b: AttrRef) -> Comparison {
        Comparison {
            op: CmpOp::Eq,
            left: Term::Attr(a),
            right: Term::Attr(b),
        }
    }
}

/// A denial constraint: `¬(R_0(t_0) ∧ … ∧ R_{k-1}(t_{k-1}) ∧ condition)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenialConstraint {
    /// Human-readable name (used in diagnostics and experiment output).
    pub name: String,
    /// The relations quantified over (with multiplicity — an FD mentions
    /// the same relation twice).
    pub atoms: Vec<String>,
    /// The forbidden condition: all comparisons must hold simultaneously
    /// for a violation.
    pub condition: Vec<Comparison>,
}

impl DenialConstraint {
    /// General constructor.
    pub fn new(
        name: impl Into<String>,
        atoms: Vec<String>,
        condition: Vec<Comparison>,
    ) -> DenialConstraint {
        DenialConstraint {
            name: name.into(),
            atoms,
            condition,
        }
    }

    /// A functional dependency `lhs → rhs` on `rel`: two tuples agreeing on
    /// all `lhs` columns must not differ on the `rhs` column.
    pub fn functional_dependency(rel: impl Into<String>, lhs: &[usize], rhs: usize) -> Self {
        let rel = rel.into();
        let mut condition: Vec<Comparison> = lhs
            .iter()
            .map(|&c| Comparison::attr_eq(AttrRef { atom: 0, col: c }, AttrRef { atom: 1, col: c }))
            .collect();
        condition.push(Comparison {
            op: CmpOp::Neq,
            left: Term::Attr(AttrRef { atom: 0, col: rhs }),
            right: Term::Attr(AttrRef { atom: 1, col: rhs }),
        });
        let name = format!(
            "fd:{rel}:{}->{rhs}",
            lhs.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        DenialConstraint {
            name,
            atoms: vec![rel.clone(), rel],
            condition,
        }
    }

    /// A key constraint: `key` columns determine every other column
    /// (expressed as one FD per non-key column would create several
    /// constraints; this single denial forbids two distinct tuples sharing
    /// the key, which is the same repair semantics for set instances).
    pub fn key(rel: impl Into<String>, key: &[usize], arity: usize) -> Vec<Self> {
        let rel = rel.into();
        (0..arity)
            .filter(|c| !key.contains(c))
            .map(|c| DenialConstraint::functional_dependency(rel.clone(), key, c))
            .collect()
    }

    /// An exclusion constraint between `rel_a` and `rel_b`: no pair of
    /// tuples may agree on the listed column pairs.
    pub fn exclusion(
        rel_a: impl Into<String>,
        rel_b: impl Into<String>,
        on: &[(usize, usize)],
    ) -> Self {
        let rel_a = rel_a.into();
        let rel_b = rel_b.into();
        let condition = on
            .iter()
            .map(|&(ca, cb)| {
                Comparison::attr_eq(AttrRef { atom: 0, col: ca }, AttrRef { atom: 1, col: cb })
            })
            .collect();
        let name = format!("excl:{rel_a}/{rel_b}");
        DenialConstraint {
            name,
            atoms: vec![rel_a, rel_b],
            condition,
        }
    }

    /// A single-atom CHECK-style denial: tuples of `rel` satisfying `pred`
    /// (over the relation's own columns) are forbidden.
    pub fn check(rel: impl Into<String>, pred_comparisons: Vec<Comparison>) -> Self {
        let rel = rel.into();
        DenialConstraint {
            name: format!("check:{rel}"),
            atoms: vec![rel],
            condition: pred_comparisons,
        }
    }

    /// Number of atoms (the maximum hyperedge size this constraint can
    /// produce).
    pub fn arity(&self) -> usize {
        self.atoms.len()
    }

    /// Is this a binary constraint (at most two atoms)? The query-rewriting
    /// baseline only supports these.
    pub fn is_binary(&self) -> bool {
        self.atoms.len() <= 2
    }

    /// Validate against a catalog: relations exist and attribute references
    /// are within arity.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), EngineError> {
        if self.atoms.is_empty() {
            return Err(EngineError::new(format!(
                "constraint {:?} has no atoms",
                self.name
            )));
        }
        let arities: Vec<usize> = self
            .atoms
            .iter()
            .map(|r| Ok(catalog.table(r)?.schema.arity()))
            .collect::<Result<_, EngineError>>()?;
        let check_term = |t: &Term| -> Result<(), EngineError> {
            if let Term::Attr(a) = t {
                if a.atom >= self.atoms.len() {
                    return Err(EngineError::new(format!(
                        "constraint {:?}: atom index {} out of range",
                        self.name, a.atom
                    )));
                }
                if a.col >= arities[a.atom] {
                    return Err(EngineError::new(format!(
                        "constraint {:?}: column {} out of range for {:?}",
                        self.name, a.col, self.atoms[a.atom]
                    )));
                }
            }
            Ok(())
        };
        for c in &self.condition {
            check_term(&c.left)?;
            check_term(&c.right)?;
        }
        Ok(())
    }

    /// Does the condition hold on a full assignment of rows to atoms?
    pub fn condition_holds(&self, rows: &[&[Value]]) -> bool {
        debug_assert_eq!(rows.len(), self.atoms.len());
        self.condition.iter().all(|c| {
            let val = |t: &Term| -> Option<Value> {
                match t {
                    Term::Attr(a) => rows[a.atom].get(a.col).cloned(),
                    Term::Const(v) => Some(v.clone()),
                }
            };
            match (val(&c.left), val(&c.right)) {
                (Some(l), Some(r)) => match l.sql_cmp(&r) {
                    Some(ord) => c.op.test(ord),
                    None => false,
                },
                _ => false,
            }
        })
    }

    /// The condition as a [`Pred`] over the concatenation of the atoms'
    /// rows (atom 0's columns first, then atom 1's, ...), given the atom
    /// arities. Used for SQL rendering and the rewriting baseline.
    pub fn condition_as_pred(&self, arities: &[usize]) -> Pred {
        let offset = |atom: usize| -> usize { arities[..atom].iter().sum() };
        let term = |t: &Term| match t {
            Term::Attr(a) => Operand::Col(offset(a.atom) + a.col),
            Term::Const(v) => Operand::Const(v.clone()),
        };
        Pred::conjoin(self.condition.iter().map(|c| Pred::Cmp {
            op: c.op,
            left: term(&c.left),
            right: term(&c.right),
        }))
    }

    /// Equality pairs `(left attr, right attr)` between two given atoms —
    /// the hash-join keys conflict detection uses.
    pub fn equalities_between(&self, atom_a: usize, atom_b: usize) -> Vec<(usize, usize)> {
        self.condition
            .iter()
            .filter_map(|c| {
                if c.op != CmpOp::Eq {
                    return None;
                }
                match (&c.left, &c.right) {
                    (Term::Attr(x), Term::Attr(y)) if x.atom == atom_a && y.atom == atom_b => {
                        Some((x.col, y.col))
                    }
                    (Term::Attr(x), Term::Attr(y)) if x.atom == atom_b && y.atom == atom_a => {
                        Some((y.col, x.col))
                    }
                    _ => None,
                }
            })
            .collect()
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "¬(")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}(t{i})")?;
        }
        for c in &self.condition {
            let t = |t: &Term| match t {
                Term::Attr(a) => format!("t{}.{}", a.atom, a.col),
                Term::Const(v) => format!("{v}"),
            };
            write!(f, " ∧ {} {} {}", t(&c.left), c.op, t(&c.right))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::{Column, DataType, Database, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db
    }

    #[test]
    fn fd_shape() {
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        assert_eq!(fd.atoms, vec!["emp", "emp"]);
        assert_eq!(fd.condition.len(), 2);
        assert!(fd.is_binary());
        let db = db();
        fd.validate(db.catalog()).unwrap();
    }

    #[test]
    fn fd_condition_semantics() {
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let a: Vec<Value> = vec![Value::text("ann"), Value::Int(100)];
        let b: Vec<Value> = vec![Value::text("ann"), Value::Int(200)];
        let c: Vec<Value> = vec![Value::text("bob"), Value::Int(100)];
        assert!(fd.condition_holds(&[&a, &b]), "same name, different salary");
        assert!(
            !fd.condition_holds(&[&a, &a]),
            "identical tuples never violate an FD"
        );
        assert!(!fd.condition_holds(&[&a, &c]), "different names");
    }

    #[test]
    fn exclusion_semantics() {
        let ex = DenialConstraint::exclusion("emp", "emp", &[(0, 0)]);
        let a: Vec<Value> = vec![Value::text("ann"), Value::Int(1)];
        let b: Vec<Value> = vec![Value::text("ann"), Value::Int(2)];
        assert!(ex.condition_holds(&[&a, &b]));
        assert!(
            ex.condition_holds(&[&a, &a]),
            "exclusion can be violated by one tuple twice"
        );
    }

    #[test]
    fn check_constraint() {
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let neg: Vec<Value> = vec![Value::text("x"), Value::Int(-5)];
        let pos: Vec<Value> = vec![Value::text("x"), Value::Int(5)];
        assert!(chk.condition_holds(&[&neg]));
        assert!(!chk.condition_holds(&[&pos]));
        assert_eq!(chk.arity(), 1);
    }

    #[test]
    fn key_generates_fd_per_nonkey_column() {
        let ks = DenialConstraint::key("emp", &[0], 2);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].name, "fd:emp:0->1");
    }

    #[test]
    fn validate_rejects_bad_refs() {
        let db = db();
        let bad = DenialConstraint::functional_dependency("emp", &[0], 7);
        assert!(bad.validate(db.catalog()).is_err());
        let bad = DenialConstraint::functional_dependency("ghost", &[0], 1);
        assert!(bad.validate(db.catalog()).is_err());
        let none = DenialConstraint::new("empty", vec![], vec![]);
        assert!(none.validate(db.catalog()).is_err());
    }

    #[test]
    fn condition_as_pred_offsets() {
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let pred = fd.condition_as_pred(&[2, 2]);
        // t0 = (ann, 100), t1 = (ann, 200) concatenated
        let row: Vec<Value> = vec![
            Value::text("ann"),
            Value::Int(100),
            Value::text("ann"),
            Value::Int(200),
        ];
        assert!(pred.eval(&row));
        let same: Vec<Value> = vec![
            Value::text("ann"),
            Value::Int(100),
            Value::text("ann"),
            Value::Int(100),
        ];
        assert!(!pred.eval(&same));
    }

    #[test]
    fn equalities_between_extracts_join_keys() {
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        assert_eq!(fd.equalities_between(0, 1), vec![(0, 0)]);
        let ex = DenialConstraint::exclusion("a", "b", &[(1, 2)]);
        assert_eq!(ex.equalities_between(0, 1), vec![(1, 2)]);
    }

    #[test]
    fn display_is_informative() {
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let s = fd.to_string();
        assert!(s.contains("emp(t0)"), "{s}");
        assert!(s.contains("<>"), "{s}");
    }
}
