//! Ground truth and strawman baselines.
//!
//! * [`naive_consistent_answers`] — the definitional semantics: enumerate
//!   every repair, evaluate the query in each, intersect. Exponential; used
//!   to validate Hippo and to measure the blow-up in experiment E7 (this is
//!   also how the logic-programming comparators behave asymptotically).
//! * [`conflict_free_answers`] — the "traditional approach" from the
//!   paper's demo part 1: delete all conflicting tuples, then query. Sound
//!   but incomplete: it loses answers CQA can still derive.

use crate::hypergraph::ConflictHypergraph;
use crate::query::SjudQuery;
use crate::repair::{core_instance, enumerate_repairs, repair_instance};
use hippo_engine::{Catalog, Row};
use std::collections::HashSet;

/// Consistent answers by full repair enumeration (exponential; ground
/// truth). Returns sorted rows.
pub fn naive_consistent_answers(
    q: &SjudQuery,
    catalog: &Catalog,
    g: &ConflictHypergraph,
) -> Vec<Row> {
    let repairs = enumerate_repairs(g, None);
    let mut acc: Option<HashSet<Row>> = None;
    for kept in &repairs {
        let inst = repair_instance(catalog, g, kept);
        let rows: HashSet<Row> = q.eval_over(&inst).into_iter().collect();
        acc = Some(match acc {
            None => rows,
            Some(prev) => prev.intersection(&rows).cloned().collect(),
        });
        if let Some(a) = &acc {
            if a.is_empty() {
                break; // intersection can only shrink
            }
        }
    }
    let mut out: Vec<Row> = acc.unwrap_or_default().into_iter().collect();
    out.sort();
    out
}

/// The "delete all conflicting tuples, then query" strawman.
pub fn conflict_free_answers(q: &SjudQuery, catalog: &Catalog, g: &ConflictHypergraph) -> Vec<Row> {
    let inst = core_instance(catalog, g);
    q.eval_over(&inst)
}

/// Plain query evaluation on the inconsistent instance (ignoring
/// inconsistency altogether) — the paper's RDBMS-only reference point.
pub fn plain_answers(q: &SjudQuery, catalog: &Catalog) -> Vec<Row> {
    q.eval_over(&|rel: &str| catalog.table(rel).map(|t| t.rows()).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::DenialConstraint;
    use crate::detect::detect_conflicts;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn naive_on_consistent_instance_is_plain_result() {
        let db = emp_db(&[("ann", 100), ("bob", 200)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp");
        assert_eq!(
            naive_consistent_answers(&q, db.catalog(), &g),
            plain_answers(&q, db.catalog())
        );
    }

    #[test]
    fn naive_drops_conflicting_tuples_for_relation_query() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp");
        assert_eq!(
            naive_consistent_answers(&q, db.catalog(), &g),
            vec![vec![Value::text("bob"), Value::Int(300)]]
        );
    }

    /// Demo part 1's point: CQA can extract strictly more information than
    /// deleting conflicting tuples. A union query answers "ann earns 100
    /// or 200" (indefinite information), which the conflict-free instance
    /// cannot see at all. With tuple-level queries the effect shows as:
    /// the union of the two possible salaries is consistently answerable
    /// *as a disjunction* — here we show a difference query where CQA keeps
    /// an answer the strawman loses.
    #[test]
    fn cqa_extracts_more_than_conflict_free() {
        // u(name, salary) lists payroll entries; emp has an FD violation on
        // ann. Query: u − σ_{salary>=150}(emp). In every repair, ann's
        // u-row survives iff (ann,100) case... Let's use bob: u has
        // (bob,42); emp has no bob → subtraction never removes it.
        // Make ann's case interesting: u has (ann,100); emp repairs are
        // {(ann,100)} and {(ann,200)}; σ>=150 contains (ann,200) only in
        // the second; (ann,100) from u is never in σ>=150(emp) as a *tuple*
        // (values differ in salary? no - (ann,100) vs (ann,200) differ) →
        // (ann,100) is a consistent answer of the difference.
        let mut db = emp_db(&[("ann", 100), ("ann", 200)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "u",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows("u", vec![vec![Value::text("ann"), Value::Int(100)]])
            .unwrap();
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        // q: tuples of u that are, in every repair, not conflicting emp
        // tuples with salary < 150.
        let q = SjudQuery::rel("u").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));
        let cqa = naive_consistent_answers(&q, db.catalog(), &g);
        let strawman = conflict_free_answers(&q, db.catalog(), &g);
        // CQA: (ann,100) ∈ u always; (ann,100) ∈ σ<150(emp) only in the
        // repair keeping (ann,100) → NOT consistent. Strawman: emp core is
        // empty → subtraction empty → (ann,100) returned. Here the
        // strawman *overclaims* (unsound direction of the comparison), and
        // CQA is properly cautious:
        assert!(cqa.is_empty());
        assert_eq!(strawman.len(), 1);
        // And the union query shows CQA extracting indefinite information:
        // "some ann tuple is in emp" holds in every repair.
        let q_union = SjudQuery::rel("emp")
            .select(Pred::cmp_const(1, CmpOp::Eq, 100i64))
            .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Eq, 200i64)))
            .permute(vec![0, 0]);
        let cqa_union = naive_consistent_answers(&q_union, db.catalog(), &g);
        assert_eq!(
            cqa_union,
            vec![vec![Value::text("ann"), Value::text("ann")]],
            "the disjunctive fact about ann is consistently true"
        );
        let straw_union = conflict_free_answers(&q_union, db.catalog(), &g);
        assert!(
            straw_union.is_empty(),
            "strawman loses the disjunctive fact"
        );
    }

    #[test]
    fn plain_answers_ignore_inconsistency() {
        let db = emp_db(&[("ann", 100), ("ann", 200)]);
        let q = SjudQuery::rel("emp");
        assert_eq!(plain_answers(&q, db.catalog()).len(), 2);
    }
}
