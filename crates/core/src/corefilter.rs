//! The core-filter ("true filter") optimization.
//!
//! Besides the envelope (a superset of the consistent answers), the paper's
//! optimizations include an expression selecting a *subset* of the
//! consistent answers: tuples caught by it skip the Prover entirely, which
//! can drastically reduce prover work when conflicts are sparse.
//!
//! The filter evaluates the query with
//!
//! * positive leaves on the **conflict-free core** (tuples in no conflict —
//!   a subset of every repair), and
//! * subtracted branches replaced by their **envelope on the full
//!   instance** (a superset of the branch's value in every repair).
//!
//! By induction this yields `F(D) ⊆ Q(D')` for every repair `D'`, i.e.
//! every filtered tuple is a consistent answer.

use crate::envelope::envelope;
use crate::hypergraph::ConflictHypergraph;
use crate::query::SjudQuery;
use hippo_engine::{Catalog, Row};
use rustc_hash::FxHashSet;

/// Evaluate the core filter: a set of tuples guaranteed to be consistent
/// answers. `core` is the conflict-free instance view, `full` the complete
/// instance view.
pub fn core_filter_rows(
    q: &SjudQuery,
    core: &impl Fn(&str) -> Vec<Row>,
    full: &impl Fn(&str) -> Vec<Row>,
) -> Vec<Row> {
    let mut rows = eval_filter(q, core, full);
    rows.sort();
    rows.dedup();
    rows
}

fn eval_filter(
    q: &SjudQuery,
    core: &impl Fn(&str) -> Vec<Row>,
    full: &impl Fn(&str) -> Vec<Row>,
) -> Vec<Row> {
    match q {
        SjudQuery::Rel(r) => core(r),
        SjudQuery::Select { input, pred } => eval_filter(input, core, full)
            .into_iter()
            .filter(|row| pred.eval(row))
            .collect(),
        SjudQuery::Product(l, r) => {
            let lv = eval_filter(l, core, full);
            let rv = eval_filter(r, core, full);
            let mut out = Vec::with_capacity(lv.len() * rv.len());
            for a in &lv {
                for b in &rv {
                    let mut row = a.clone();
                    row.extend(b.iter().cloned());
                    out.push(row);
                }
            }
            out
        }
        SjudQuery::Union(l, r) => {
            let mut lv = eval_filter(l, core, full);
            lv.extend(eval_filter(r, core, full));
            lv
        }
        SjudQuery::Diff(l, r) => {
            // Subtract the *envelope of r over the full instance*: an
            // over-approximation of r in any repair, so what survives the
            // subtraction is absent from r in every repair.
            let renv = envelope(r);
            let rv: FxHashSet<Row> = renv.eval_over(full).into_iter().collect();
            eval_filter(l, core, full)
                .into_iter()
                .filter(|row| !rv.contains(row))
                .collect()
        }
        SjudQuery::Permute { input, perm } => eval_filter(input, core, full)
            .into_iter()
            .map(|row| perm.iter().map(|&p| row[p].clone()).collect())
            .collect(),
    }
}

/// Convenience wrapper over a catalog + hypergraph: sorted row list
/// (direct evaluation; fine for small inputs and used as the test
/// oracle for the SQL path). Thin ordering shim over
/// [`core_filter_set`] so the SQL-error fallback lives in one place.
pub fn core_filter_on_catalog(
    q: &SjudQuery,
    catalog: &Catalog,
    g: &ConflictHypergraph,
) -> Vec<Row> {
    let mut rows: Vec<Row> = core_filter_set(q, catalog, g).into_iter().collect();
    rows.sort();
    rows
}

/// The core filter as the probe set the **answer pipeline** shares
/// read-only across its prover shards (each shard tests its candidates
/// against this set and skips the prover on a hit). Skips the
/// row-list API's final sort — set membership is all the shards need.
pub fn core_filter_set(q: &SjudQuery, catalog: &Catalog, g: &ConflictHypergraph) -> FxHashSet<Row> {
    match core_filter_via_sql(q, catalog, g) {
        Ok(rows) => rows.into_iter().collect(),
        Err(_) => {
            let core = crate::repair::core_instance(catalog, g);
            let full = |rel: &str| catalog.table(rel).map(|t| t.rows()).unwrap_or_default();
            eval_filter(q, &core, &full).into_iter().collect()
        }
    }
}

/// [`core_filter_set`] under per-call governance: the scratch-database
/// SQL evaluation runs with the call's budget (stage `"corefilter"`),
/// the fault checkpoint fires first, and the direct-eval fallback
/// charges its materialised rows. A *governance* trip propagates — it
/// must not silently fall back to an ungoverned evaluation — while any
/// other SQL-path error still falls back exactly like the ungoverned
/// entry point.
pub fn core_filter_set_governed(
    q: &SjudQuery,
    catalog: &Catalog,
    g: &ConflictHypergraph,
    gov: &crate::budget::Governance,
) -> Result<FxHashSet<Row>, hippo_engine::EngineError> {
    if !gov.active() {
        return Ok(core_filter_set(q, catalog, g));
    }
    gov.checkpoint("corefilter", 0)?;
    match core_filter_via_sql_governed(q, catalog, g, gov.budget_ref()) {
        Ok(rows) => Ok(rows.into_iter().collect()),
        Err(e) if e.is_governance() => Err(e),
        Err(_) => {
            let core = crate::repair::core_instance(catalog, g);
            let full = |rel: &str| catalog.table(rel).map(|t| t.rows()).unwrap_or_default();
            let rows = eval_filter(q, &core, &full);
            if let Some(b) = gov.budget_ref() {
                b.charge_rows(rows.len() as u64);
                b.check("corefilter")?;
            }
            Ok(rows.into_iter().collect())
        }
    }
}

/// Direct (nested-loop) evaluation over instance views — the reference
/// implementation the SQL path is checked against in tests.
pub fn core_filter_direct(q: &SjudQuery, catalog: &Catalog, g: &ConflictHypergraph) -> Vec<Row> {
    let core = crate::repair::core_instance(catalog, g);
    let full = |rel: &str| catalog.table(rel).map(|t| t.rows()).unwrap_or_default();
    core_filter_rows(q, &core, &full)
}

/// Evaluate the core filter through the SQL engine: the conflict-free core
/// and the full contents of each referenced relation are materialised into
/// a scratch database (`core_<rel>` / `full_<rel>`), the filter expression
/// is rewritten over those names, rendered to SQL, and executed — so joins
/// inside the filter benefit from the engine's hash joins instead of the
/// direct evaluator's nested loops.
pub fn core_filter_via_sql(
    q: &SjudQuery,
    catalog: &Catalog,
    g: &ConflictHypergraph,
) -> Result<Vec<Row>, hippo_engine::EngineError> {
    core_filter_via_sql_governed(q, catalog, g, None)
}

/// [`core_filter_via_sql`] with an optional budget: the scratch query
/// executes under it (stage `"corefilter"`), so a long-running filter
/// join observes deadlines and row budgets cooperatively. `None` takes
/// the exact ungoverned path.
pub fn core_filter_via_sql_governed(
    q: &SjudQuery,
    catalog: &Catalog,
    g: &ConflictHypergraph,
    budget: Option<&hippo_engine::Budget>,
) -> Result<Vec<Row>, hippo_engine::EngineError> {
    use hippo_engine::Database;
    let core = crate::repair::core_instance(catalog, g);
    let mut scratch = Database::new();
    for rel in q.relations() {
        let table = catalog.table(&rel)?;
        let mut schema = table.schema.clone();
        schema.name = format!("core_{rel}");
        scratch.catalog_mut().create_table(schema)?;
        scratch.insert_rows(&format!("core_{rel}"), core(&rel))?;
        let mut schema = table.schema.clone();
        schema.name = format!("full_{rel}");
        scratch.catalog_mut().create_table(schema)?;
        scratch.insert_rows(&format!("full_{rel}"), table.rows())?;
    }
    let filter_query = filter_expression(q);
    let sql = filter_query.to_sql(scratch.catalog())?;
    let mut rows = scratch.query_governed(&sql, budget, "corefilter")?.rows;
    rows.sort();
    rows.dedup();
    Ok(rows)
}

/// The filter as a plain SJUD expression over `core_*` / `full_*`
/// relations: positive leaves read the core, subtracted branches read the
/// envelope over the full instance.
fn filter_expression(q: &SjudQuery) -> SjudQuery {
    fn rename(q: &SjudQuery, prefix: &str) -> SjudQuery {
        match q {
            SjudQuery::Rel(r) => SjudQuery::Rel(format!("{prefix}_{r}")),
            SjudQuery::Select { input, pred } => SjudQuery::Select {
                input: Box::new(rename(input, prefix)),
                pred: pred.clone(),
            },
            SjudQuery::Product(l, r) => {
                SjudQuery::Product(Box::new(rename(l, prefix)), Box::new(rename(r, prefix)))
            }
            SjudQuery::Union(l, r) => {
                SjudQuery::Union(Box::new(rename(l, prefix)), Box::new(rename(r, prefix)))
            }
            SjudQuery::Diff(l, r) => {
                SjudQuery::Diff(Box::new(rename(l, prefix)), Box::new(rename(r, prefix)))
            }
            SjudQuery::Permute { input, perm } => SjudQuery::Permute {
                input: Box::new(rename(input, prefix)),
                perm: perm.clone(),
            },
        }
    }
    match q {
        SjudQuery::Rel(r) => SjudQuery::Rel(format!("core_{r}")),
        SjudQuery::Select { input, pred } => SjudQuery::Select {
            input: Box::new(filter_expression(input)),
            pred: pred.clone(),
        },
        SjudQuery::Product(l, r) => SjudQuery::Product(
            Box::new(filter_expression(l)),
            Box::new(filter_expression(r)),
        ),
        SjudQuery::Union(l, r) => SjudQuery::Union(
            Box::new(filter_expression(l)),
            Box::new(filter_expression(r)),
        ),
        SjudQuery::Diff(l, r) => SjudQuery::Diff(
            Box::new(filter_expression(l)),
            Box::new(rename(&envelope(r), "full")),
        ),
        SjudQuery::Permute { input, perm } => SjudQuery::Permute {
            input: Box::new(filter_expression(input)),
            perm: perm.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::DenialConstraint;
    use crate::detect::detect_conflicts;
    use crate::formula::MembershipTemplate;
    use crate::pred::{CmpOp, Pred};
    use crate::prover::{CatalogMembership, Prover};
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn filter_keeps_only_nonconflicting_on_relation_query() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp");
        let rows = core_filter_on_catalog(&q, db.catalog(), &g);
        assert_eq!(rows, vec![vec![Value::text("bob"), Value::Int(300)]]);
    }

    #[test]
    fn filter_subset_of_consistent_answers_with_difference() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 50)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        // q = emp − σ_{salary < 150}(emp)
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            150i64,
        )));
        let filtered = core_filter_on_catalog(&q, db.catalog(), &g);
        // Every filtered tuple must be verified consistent by the prover.
        let template = MembershipTemplate::build(&q, db.catalog()).unwrap();
        let mut prover = Prover::new(&g, &template);
        let mut membership = CatalogMembership {
            catalog: db.catalog(),
        };
        for row in &filtered {
            assert!(
                prover.is_consistent_answer(row, &mut membership).unwrap(),
                "core filter produced non-consistent {row:?}"
            );
        }
        // bob (300): non-conflicting, not subtracted → must be caught.
        assert!(filtered.contains(&vec![Value::text("bob"), Value::Int(300)]));
        // cyd (50): fails the subtraction (subtracted on full instance).
        assert!(!filtered.contains(&vec![Value::text("cyd"), Value::Int(50)]));
    }

    #[test]
    fn filter_on_consistent_instance_equals_query_result() {
        let db = emp_db(&[("ann", 100), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 200i64));
        let filtered = core_filter_on_catalog(&q, db.catalog(), &g);
        let direct = q.eval_on_catalog(db.catalog()).unwrap();
        assert_eq!(filtered, direct, "no conflicts → filter is exact");
    }

    #[test]
    fn filter_union_and_product() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let q = SjudQuery::rel("emp").product(SjudQuery::rel("emp"));
        let rows = core_filter_on_catalog(&q, db.catalog(), &g);
        assert_eq!(rows.len(), 1, "only bob×bob survives the core");
        let q = SjudQuery::rel("emp").union(SjudQuery::rel("emp"));
        let rows = core_filter_on_catalog(&q, db.catalog(), &g);
        assert_eq!(rows.len(), 1);
    }
}

#[cfg(test)]
mod sql_path_tests {
    use super::*;
    use crate::constraint::DenialConstraint;
    use crate::detect::detect_conflicts;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for name in ["t", "u"] {
            db.catalog_mut()
                .create_table(
                    TableSchema::new(
                        name,
                        vec![
                            Column::new("k", DataType::Int),
                            Column::new("v", DataType::Int),
                        ],
                        &[],
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        let rows = |xs: &[(i64, i64)]| {
            xs.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect()
        };
        db.insert_rows("t", rows(&[(1, 10), (1, 20), (2, 30), (3, 40), (3, 40)]))
            .unwrap();
        db.insert_rows("u", rows(&[(2, 30), (9, 90)])).unwrap();
        db
    }

    #[test]
    fn sql_path_matches_direct_path() {
        let db = db();
        let constraints = [DenialConstraint::functional_dependency("t", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let queries = vec![
            SjudQuery::rel("t"),
            SjudQuery::rel("t").select(Pred::cmp_const(1, CmpOp::Ge, 20i64)),
            SjudQuery::rel("t").diff(SjudQuery::rel("u")),
            SjudQuery::rel("t").union(SjudQuery::rel("u")),
            SjudQuery::rel("t")
                .product(SjudQuery::rel("u"))
                .select(Pred::cmp_cols(0, CmpOp::Eq, 2)),
            SjudQuery::rel("t")
                .permute(vec![1, 0])
                .diff(SjudQuery::rel("u").permute(vec![1, 0])),
        ];
        for q in queries {
            let direct = core_filter_direct(&q, db.catalog(), &g);
            let via_sql = core_filter_via_sql(&q, db.catalog(), &g).unwrap();
            assert_eq!(via_sql, direct, "mismatch for {q}");
        }
    }
}
