//! The conflict hypergraph.
//!
//! Vertices are the *physical tuples* of the database instance; a
//! hyperedge connects the tuples that jointly violate one integrity
//! constraint. Repairs of the database (maximal consistent subsets under
//! tuple deletion) are exactly the **maximal independent sets** of this
//! hypergraph, which is why Hippo can answer consistency questions without
//! ever materialising a repair. The hypergraph has polynomial size (at
//! most `n^k` edges for `k`-ary constraints) and is kept in main memory,
//! as the paper assumes.

use hippo_engine::{Row, TupleId};
use std::collections::{HashMap, HashSet};

/// A vertex: one physical tuple, identified by interned relation index and
/// stable tuple id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vertex {
    /// Interned relation index (see [`ConflictHypergraph::relation_name`]).
    pub rel: u32,
    /// Tuple id within the relation.
    pub tid: TupleId,
}

/// Edge identifier (index into the edge list).
pub type EdgeId = usize;

/// A fact: relation name + tuple values. Facts are what query answers talk
/// about; vertices are the physical tuples that carry them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// Relation name.
    pub rel: String,
    /// Tuple values.
    pub values: Row,
}

impl Fact {
    /// Constructor.
    pub fn new(rel: impl Into<String>, values: Row) -> Fact {
        Fact { rel: rel.into(), values }
    }
}

/// The conflict hypergraph.
#[derive(Debug, Default)]
pub struct ConflictHypergraph {
    rel_names: Vec<String>,
    rel_index: HashMap<String, u32>,
    /// Sorted, deduplicated vertex sets; no two edges identical.
    edges: Vec<Vec<Vertex>>,
    edge_set: HashSet<Vec<Vertex>>,
    /// vertex → edges containing it.
    adjacency: HashMap<Vertex, Vec<EdgeId>>,
    /// Which constraint produced each edge (index into the detector's
    /// constraint list; for diagnostics and experiments).
    edge_constraint: Vec<usize>,
    /// fact (rel index, values) → conflicting vertices carrying it.
    fact_vertices: HashMap<(u32, Row), Vec<Vertex>>,
}

impl ConflictHypergraph {
    /// Empty hypergraph.
    pub fn new() -> ConflictHypergraph {
        ConflictHypergraph::default()
    }

    /// Intern a relation name.
    pub fn intern(&mut self, rel: &str) -> u32 {
        if let Some(&i) = self.rel_index.get(rel) {
            return i;
        }
        let i = self.rel_names.len() as u32;
        self.rel_names.push(rel.to_string());
        self.rel_index.insert(rel.to_string(), i);
        i
    }

    /// Look up an interned relation index.
    pub fn relation_index(&self, rel: &str) -> Option<u32> {
        self.rel_index.get(rel).copied()
    }

    /// The name of an interned relation.
    pub fn relation_name(&self, rel: u32) -> &str {
        &self.rel_names[rel as usize]
    }

    /// Add an edge (the violation set of one constraint instance).
    /// Vertices are sorted and deduplicated; duplicate edges are ignored.
    /// `values` provides each vertex's tuple values for the fact index.
    pub fn add_edge(
        &mut self,
        mut vertices: Vec<Vertex>,
        values: &[&Row],
        constraint: usize,
    ) -> Option<EdgeId> {
        debug_assert_eq!(vertices.len(), values.len());
        // Register facts before dedup (values parallel to vertices).
        for (v, row) in vertices.iter().zip(values) {
            let key = (v.rel, (*row).clone());
            let entry = self.fact_vertices.entry(key).or_default();
            if !entry.contains(v) {
                entry.push(*v);
            }
        }
        vertices.sort();
        vertices.dedup();
        if self.edge_set.contains(&vertices) {
            return None;
        }
        let id = self.edges.len();
        for v in &vertices {
            self.adjacency.entry(*v).or_default().push(id);
        }
        self.edge_set.insert(vertices.clone());
        self.edges.push(vertices);
        self.edge_constraint.push(constraint);
        Some(id)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct conflicting vertices.
    pub fn conflicting_vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The vertices of an edge.
    pub fn edge(&self, id: EdgeId) -> &[Vertex] {
        &self.edges[id]
    }

    /// The constraint index that produced an edge.
    pub fn edge_constraint(&self, id: EdgeId) -> usize {
        self.edge_constraint[id]
    }

    /// Iterate all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &[Vertex])> {
        self.edges.iter().enumerate().map(|(i, e)| (i, e.as_slice()))
    }

    /// Edges containing a vertex.
    pub fn edges_of(&self, v: Vertex) -> &[EdgeId] {
        self.adjacency.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is the vertex involved in any conflict?
    pub fn is_conflicting(&self, v: Vertex) -> bool {
        self.adjacency.contains_key(&v)
    }

    /// All conflicting vertices (unsorted).
    pub fn conflicting_vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.adjacency.keys().copied()
    }

    /// Conflicting vertices carrying a given fact (empty slice when the
    /// fact is not part of any conflict).
    pub fn vertices_of_fact(&self, rel: &str, values: &Row) -> &[Vertex] {
        let Some(&ri) = self.rel_index.get(rel) else { return &[] };
        self.fact_vertices
            .get(&(ri, values.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Is a set of vertices independent (no edge fully contained in it)?
    ///
    /// Only edges adjacent to the set need checking, so this is fast for
    /// the small witness sets the prover builds.
    pub fn is_independent(&self, set: &HashSet<Vertex>) -> bool {
        let mut seen = HashSet::new();
        for v in set {
            for &eid in self.edges_of(*v) {
                if seen.insert(eid) && self.edges[eid].iter().all(|u| set.contains(u)) {
                    return false;
                }
            }
        }
        true
    }

    /// Is vertex `v` *blocked* by the set `s` — i.e. does some edge `e ∋ v`
    /// have all its other vertices inside `s`? A blocked vertex cannot be
    /// added to any independent superset of `s`.
    pub fn is_blocked_by(&self, v: Vertex, s: &HashSet<Vertex>) -> bool {
        self.edges_of(v)
            .iter()
            .any(|&eid| self.edges[eid].iter().all(|u| *u == v || s.contains(u)))
    }

    /// Total size of all edges (Σ|e|; diagnostics).
    pub fn total_edge_size(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::Value;

    fn v(rel: u32, tid: u32) -> Vertex {
        Vertex { rel, tid: TupleId(tid) }
    }

    fn row(x: i64) -> Row {
        vec![Value::Int(x)]
    }

    #[test]
    fn intern_is_idempotent() {
        let mut g = ConflictHypergraph::new();
        let a = g.intern("r");
        let b = g.intern("r");
        let c = g.intern("s");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.relation_name(a), "r");
        assert_eq!(g.relation_index("s"), Some(c));
        assert_eq!(g.relation_index("zzz"), None);
    }

    #[test]
    fn add_edge_dedups_vertices_and_edges() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let r0 = row(0);
        let r1 = row(1);
        let e1 = g.add_edge(vec![v(r, 1), v(r, 0)], &[&r1, &r0], 0);
        assert!(e1.is_some());
        // Same edge in different order is a duplicate.
        let e2 = g.add_edge(vec![v(r, 0), v(r, 1)], &[&r0, &r1], 0);
        assert!(e2.is_none());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(0), &[v(r, 0), v(r, 1)]);
        // Same vertex twice collapses to a singleton edge.
        let e3 = g.add_edge(vec![v(r, 5), v(r, 5)], &[&row(5), &row(5)], 1);
        assert_eq!(g.edge(e3.unwrap()), &[v(r, 5)]);
    }

    #[test]
    fn adjacency_and_conflicting() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(vec![v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.add_edge(vec![v(r, 1), v(r, 2)], &[&row(1), &row(2)], 0);
        assert!(g.is_conflicting(v(r, 1)));
        assert!(!g.is_conflicting(v(r, 9)));
        assert_eq!(g.edges_of(v(r, 1)).len(), 2);
        assert_eq!(g.conflicting_vertex_count(), 3);
        assert_eq!(g.total_edge_size(), 4);
    }

    #[test]
    fn independence_checks() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(vec![v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.add_edge(vec![v(r, 1), v(r, 2), v(r, 3)], &[&row(1), &row(2), &row(3)], 1);
        let set: HashSet<Vertex> = [v(r, 0), v(r, 2), v(r, 3)].into_iter().collect();
        assert!(g.is_independent(&set));
        let set: HashSet<Vertex> = [v(r, 0), v(r, 1)].into_iter().collect();
        assert!(!g.is_independent(&set));
        // Subsets of an edge are independent.
        let set: HashSet<Vertex> = [v(r, 1), v(r, 2)].into_iter().collect();
        assert!(g.is_independent(&set));
        assert!(g.is_independent(&HashSet::new()));
    }

    #[test]
    fn blocking() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(vec![v(r, 0), v(r, 1), v(r, 2)], &[&row(0), &row(1), &row(2)], 0);
        let s: HashSet<Vertex> = [v(r, 1), v(r, 2)].into_iter().collect();
        assert!(g.is_blocked_by(v(r, 0), &s));
        let s: HashSet<Vertex> = [v(r, 1)].into_iter().collect();
        assert!(!g.is_blocked_by(v(r, 0), &s), "edge not fully covered");
        // Singleton edge blocks its vertex against the empty set.
        g.add_edge(vec![v(r, 7)], &[&row(7)], 1);
        assert!(g.is_blocked_by(v(r, 7), &HashSet::new()));
    }

    #[test]
    fn fact_index_tracks_conflicting_tuples() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let a = row(10);
        let b = row(20);
        g.add_edge(vec![v(r, 0), v(r, 1)], &[&a, &b], 0);
        assert_eq!(g.vertices_of_fact("r", &a), &[v(r, 0)]);
        assert_eq!(g.vertices_of_fact("r", &b), &[v(r, 1)]);
        assert!(g.vertices_of_fact("r", &row(99)).is_empty());
        assert!(g.vertices_of_fact("zzz", &a).is_empty());
    }

    #[test]
    fn duplicate_facts_map_to_multiple_vertices() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let a = row(10);
        // Two distinct physical tuples with the same values, each in a conflict.
        g.add_edge(vec![v(r, 0), v(r, 5)], &[&a, &row(50)], 0);
        g.add_edge(vec![v(r, 1), v(r, 5)], &[&a, &row(50)], 0);
        assert_eq!(g.vertices_of_fact("r", &a), &[v(r, 0), v(r, 1)]);
    }
}
