//! The conflict hypergraph, stored in compressed sparse row (CSR) form
//! with an interned fact table.
//!
//! Vertices are the *physical tuples* of the database instance; a
//! hyperedge connects the tuples that jointly violate one integrity
//! constraint. Repairs of the database (maximal consistent subsets under
//! tuple deletion) are exactly the **maximal independent sets** of this
//! hypergraph, which is why Hippo can answer consistency questions without
//! ever materialising a repair. The hypergraph has polynomial size (at
//! most `n^k` edges for `k`-ary constraints) and is kept in main memory,
//! as the paper assumes.
//!
//! # Representation
//!
//! The paper's performance argument rests on the prover doing *cheap*
//! main-memory lookups, so the layout is optimized for probe cost:
//!
//! * **Edges** live in a flat vertex arena (`edge_vertices`) with an
//!   offset array (`edge_offsets`); edge `e` is the slice
//!   `edge_vertices[edge_offsets[e] .. edge_offsets[e+1]]`. No per-edge
//!   `Vec`, no second copy for dedup: duplicates are detected through a
//!   hash → chained-index table (`edge_dedup_head` / `edge_dedup_next`)
//!   keyed by the Fx hash of the sorted vertex slice, comparing against
//!   the arena on collision.
//! * **Facts** (`(relation, values)` pairs that query answers talk about)
//!   are interned to dense [`FactId`]s. The values row is cloned exactly
//!   once — on first interning — and every later probe
//!   ([`ConflictHypergraph::fact_id`], [`ConflictHypergraph::vertices_of_fact`])
//!   hashes the *borrowed* relation + row and walks a chained bucket, so
//!   lookups (hit or miss) never allocate.
//! * **Vertex → edge adjacency** is built incrementally in a hash map and
//!   compacted into a CSR offset/edge-id array pair by
//!   [`ConflictHypergraph::finalize`] (called automatically at the end of
//!   conflict detection). Queries work in either state; adding an edge to
//!   a finalized graph transparently un-freezes it.
//!
//! All hash tables use the Fx hasher: keys are small (integers, vertex
//! pairs, short value rows) and the DoS resistance of SipHash buys nothing
//! against data the system itself generated.
//!
//! # Sharded construction
//!
//! Parallel detection does not touch the graph from worker threads.
//! Each shard emits its edges into a private [`EdgeFragment`] — a
//! shard-local CSR arena (offset array + flat vertex list + parallel row
//! references) with none of the dedup/fact machinery. The single-threaded
//! merge step then replays fragments **in shard order** through
//! [`ConflictHypergraph::absorb_fragment`], which routes every edge
//! through the ordinary [`ConflictHypergraph::add_edge`] path: the
//! chained-hash dedup table and the fact interner see edges in a
//! deterministic order that depends only on the shard decomposition,
//! never on thread scheduling, so edge ids are reproducible for any
//! worker count.

use hippo_engine::{Row, TupleId};
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{BuildHasher, Hash, Hasher};

/// A vertex: one physical tuple, identified by interned relation index and
/// stable tuple id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vertex {
    /// Interned relation index (see [`ConflictHypergraph::relation_name`]).
    pub rel: u32,
    /// Tuple id within the relation.
    pub tid: TupleId,
}

/// Edge identifier (index into the edge list).
pub type EdgeId = u32;

/// Interned fact identifier: a dense index for one distinct
/// `(relation, values)` pair. Stable for the lifetime of the hypergraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub u32);

/// A fact: relation name + tuple values. Facts are what query answers talk
/// about; vertices are the physical tuples that carry them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// Relation name.
    pub rel: String,
    /// Tuple values.
    pub values: Row,
}

impl Fact {
    /// Constructor.
    pub fn new(rel: impl Into<String>, values: Row) -> Fact {
        Fact {
            rel: rel.into(),
            values,
        }
    }
}

/// Sentinel for "no next entry" in the chained bucket arrays.
const NIL: u32 = u32::MAX;

/// Fx hash of a borrowed fact key; identical for owned and borrowed forms.
#[inline]
fn fact_hash(rel: u32, values: &[hippo_engine::Value]) -> u64 {
    let mut h = FxHasher::default();
    rel.hash(&mut h);
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Fx hash of a sorted, deduplicated vertex slice.
#[inline]
fn edge_hash(vertices: &[Vertex]) -> u64 {
    let mut h = FxHasher::default();
    for v in vertices {
        v.rel.hash(&mut h);
        v.tid.0.hash(&mut h);
    }
    h.finish()
}

/// A shard-local edge buffer: CSR-shaped (offset array + flat vertex
/// arena) but with no dedup table, fact interner or adjacency — those
/// stay centralized in the [`ConflictHypergraph`] the fragment is merged
/// into. Rows are borrowed from the catalog tables, so fragments are
/// cheap to build inside scoped worker threads and `Send` back to the
/// merging thread.
#[derive(Debug)]
pub struct EdgeFragment<'a> {
    /// Edge `i` spans `vertices[offsets[i] .. offsets[i+1]]` (and the
    /// same range of `rows`). Leading 0 sentinel as in every CSR.
    offsets: Vec<u32>,
    vertices: Vec<Vertex>,
    /// Row of each vertex, parallel to `vertices`.
    rows: Vec<&'a Row>,
    /// Constraint index of each edge.
    constraints: Vec<u32>,
}

impl<'a> EdgeFragment<'a> {
    /// Empty fragment.
    pub fn new() -> EdgeFragment<'a> {
        EdgeFragment {
            offsets: vec![0],
            vertices: Vec::new(),
            rows: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Append an edge. No sorting, dedup or fact work happens here; the
    /// absorbing graph does all of that.
    pub fn push_edge(&mut self, vertices: &[Vertex], rows: &[&'a Row], constraint: usize) {
        debug_assert_eq!(vertices.len(), rows.len());
        self.vertices.extend_from_slice(vertices);
        self.rows.extend_from_slice(rows);
        self.offsets.push(self.vertices.len() as u32);
        self.constraints.push(constraint as u32);
    }

    /// Number of buffered edges.
    pub fn edge_count(&self) -> usize {
        self.constraints.len()
    }

    /// Is the fragment empty?
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The `i`-th buffered edge: (vertices, rows, constraint index).
    pub fn edge(&self, i: usize) -> (&[Vertex], &[&'a Row], usize) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (
            &self.vertices[lo..hi],
            &self.rows[lo..hi],
            self.constraints[i] as usize,
        )
    }
}

impl Default for EdgeFragment<'_> {
    fn default() -> Self {
        EdgeFragment::new()
    }
}

/// The conflict hypergraph. `Default` is equivalent to
/// [`ConflictHypergraph::new`] (the CSR offset array is never empty).
#[derive(Debug)]
pub struct ConflictHypergraph {
    rel_names: Vec<String>,
    rel_index: FxHashMap<String, u32>,

    // ---- interned facts ----
    /// FactId → relation index.
    fact_rel: Vec<u32>,
    /// FactId → values (the only owned copy).
    fact_values: Vec<Row>,
    /// FactId → conflicting vertices carrying the fact.
    fact_vertices: Vec<Vec<Vertex>>,
    /// fact hash → head FactId of the collision chain.
    fact_head: FxHashMap<u64, u32>,
    /// FactId → next FactId with the same hash (NIL-terminated).
    fact_next: Vec<u32>,

    // ---- CSR edge arena ----
    /// Edge `e` occupies `edge_vertices[edge_offsets[e] .. edge_offsets[e+1]]`.
    edge_offsets: Vec<u32>,
    edge_vertices: Vec<Vertex>,
    /// Which constraint produced each edge (index into the detector's
    /// constraint list; for diagnostics and experiments).
    edge_constraint: Vec<u32>,
    /// edge hash → head EdgeId of the collision chain (dedup table).
    edge_dedup_head: FxHashMap<u64, u32>,
    /// EdgeId → next EdgeId with the same hash (NIL-terminated).
    edge_dedup_next: Vec<u32>,
    /// Scratch buffer for sorting incoming edges (reused across calls).
    scratch: Vec<Vertex>,

    // ---- vertex → edges adjacency ----
    /// Construction-time adjacency (drained into CSR by `finalize`).
    adj_build: FxHashMap<Vertex, Vec<EdgeId>>,
    /// Frozen CSR view: vertex → dense index, offsets, flat edge ids.
    frozen: bool,
    vertex_dense: FxHashMap<Vertex, u32>,
    vertex_list: Vec<Vertex>,
    adj_offsets: Vec<u32>,
    adj_edges: Vec<EdgeId>,
}

impl Default for ConflictHypergraph {
    fn default() -> ConflictHypergraph {
        ConflictHypergraph::new()
    }
}

impl ConflictHypergraph {
    /// Empty hypergraph. `edge_offsets` starts with the leading 0 sentinel
    /// every CSR offset array needs (edge `e` spans `offsets[e]..offsets[e+1]`).
    pub fn new() -> ConflictHypergraph {
        ConflictHypergraph {
            rel_names: Vec::new(),
            rel_index: FxHashMap::default(),
            fact_rel: Vec::new(),
            fact_values: Vec::new(),
            fact_vertices: Vec::new(),
            fact_head: FxHashMap::default(),
            fact_next: Vec::new(),
            edge_offsets: vec![0],
            edge_vertices: Vec::new(),
            edge_constraint: Vec::new(),
            edge_dedup_head: FxHashMap::default(),
            edge_dedup_next: Vec::new(),
            scratch: Vec::new(),
            adj_build: FxHashMap::default(),
            frozen: false,
            vertex_dense: FxHashMap::default(),
            vertex_list: Vec::new(),
            adj_offsets: Vec::new(),
            adj_edges: Vec::new(),
        }
    }

    /// Intern a relation name.
    pub fn intern(&mut self, rel: &str) -> u32 {
        if let Some(&i) = self.rel_index.get(rel) {
            return i;
        }
        let i = self.rel_names.len() as u32;
        self.rel_names.push(rel.to_string());
        self.rel_index.insert(rel.to_string(), i);
        i
    }

    /// Look up an interned relation index.
    pub fn relation_index(&self, rel: &str) -> Option<u32> {
        self.rel_index.get(rel).copied()
    }

    /// The name of an interned relation.
    pub fn relation_name(&self, rel: u32) -> &str {
        &self.rel_names[rel as usize]
    }

    /// Number of interned relations (indices are `0..relation_count`).
    pub fn relation_count(&self) -> usize {
        self.rel_names.len()
    }

    // ---- fact interner ----

    /// Number of distinct interned facts.
    pub fn fact_count(&self) -> usize {
        self.fact_rel.len()
    }

    /// Probe for an interned fact by borrowed key. Never allocates —
    /// hashes the borrowed row and compares within the hash chain.
    pub fn fact_id_interned(&self, rel: u32, values: &Row) -> Option<FactId> {
        let hash = fact_hash(rel, values);
        let mut cur = *self.fact_head.get(&hash)?;
        while cur != NIL {
            let i = cur as usize;
            if self.fact_rel[i] == rel && &self.fact_values[i] == values {
                return Some(FactId(cur));
            }
            cur = self.fact_next[i];
        }
        None
    }

    /// Probe for an interned fact by relation name + borrowed row.
    pub fn fact_id(&self, rel: &str, values: &Row) -> Option<FactId> {
        let ri = self.relation_index(rel)?;
        self.fact_id_interned(ri, values)
    }

    /// Probe for an interned fact whose values are a **projection of a
    /// candidate tuple**: column `j` of the fact is `tuple[cols[j]]`.
    /// Hashes and compares the projected columns in place — the fact row
    /// is never materialised, so the probe is allocation-free whether it
    /// hits or misses. This is the prover's per-literal fast path.
    pub fn fact_id_projected(&self, rel: u32, tuple: &Row, cols: &[usize]) -> Option<FactId> {
        let mut h = FxHasher::default();
        rel.hash(&mut h);
        for &c in cols {
            tuple[c].hash(&mut h);
        }
        let mut cur = *self.fact_head.get(&h.finish())?;
        while cur != NIL {
            let i = cur as usize;
            if self.fact_rel[i] == rel
                && self.fact_values[i].len() == cols.len()
                && self.fact_values[i]
                    .iter()
                    .zip(cols)
                    .all(|(v, &c)| *v == tuple[c])
            {
                return Some(FactId(cur));
            }
            cur = self.fact_next[i];
        }
        None
    }

    /// The relation index and values of an interned fact.
    pub fn fact(&self, id: FactId) -> (u32, &Row) {
        (
            self.fact_rel[id.0 as usize],
            &self.fact_values[id.0 as usize],
        )
    }

    /// Intern a fact, cloning the row only on first sight.
    pub fn intern_fact(&mut self, rel: u32, values: &Row) -> FactId {
        let hash = fact_hash(rel, values);
        let head = self.fact_head.get(&hash).copied().unwrap_or(NIL);
        let mut cur = head;
        while cur != NIL {
            let i = cur as usize;
            if self.fact_rel[i] == rel && &self.fact_values[i] == values {
                return FactId(cur);
            }
            cur = self.fact_next[i];
        }
        let id = self.fact_rel.len() as u32;
        self.fact_rel.push(rel);
        self.fact_values.push(values.clone());
        self.fact_vertices.push(Vec::new());
        self.fact_next.push(head);
        self.fact_head.insert(hash, id);
        FactId(id)
    }

    // ---- edges ----

    /// Add an edge (the violation set of one constraint instance).
    /// Vertices are sorted and deduplicated; duplicate edges are ignored.
    /// `values` provides each vertex's tuple values for the fact index.
    pub fn add_edge(
        &mut self,
        vertices: &[Vertex],
        values: &[&Row],
        constraint: usize,
    ) -> Option<EdgeId> {
        debug_assert_eq!(vertices.len(), values.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(vertices);
        scratch.sort_unstable();
        scratch.dedup();
        // Duplicate probe first: the dedup tables survive `finalize`, so a
        // duplicate add on a frozen graph is a pure read (no thaw, no fact
        // work — a duplicate edge carries no new fact→vertex pairs either).
        let hash = edge_hash(&scratch);
        if self.is_duplicate_edge(hash, &scratch) {
            self.scratch = scratch;
            return None;
        }
        self.unfreeze();
        // Register facts (values parallel to the caller's vertex order).
        for (v, row) in vertices.iter().zip(values) {
            let fid = self.intern_fact(v.rel, row);
            let entry = &mut self.fact_vertices[fid.0 as usize];
            if !entry.contains(v) {
                entry.push(*v);
            }
        }
        let id = self.append_edge(hash, &scratch, constraint);
        self.scratch = scratch;
        Some(id)
    }

    /// Merge a shard-local fragment into the graph, replaying its edges
    /// in buffer order through [`ConflictHypergraph::add_edge`] (so
    /// dedup and fact interning behave exactly as in sequential
    /// construction). Returns the number of edges actually added
    /// (duplicates across shards are silently dropped).
    pub fn absorb_fragment(&mut self, frag: &EdgeFragment<'_>) -> usize {
        let mut added = 0;
        for i in 0..frag.edge_count() {
            let (vertices, rows, constraint) = frag.edge(i);
            if self.add_edge(vertices, rows, constraint).is_some() {
                added += 1;
            }
        }
        added
    }

    /// Walk the chained dedup table for an edge equal to `sorted`.
    fn is_duplicate_edge(&self, hash: u64, sorted: &[Vertex]) -> bool {
        let mut cur = self.edge_dedup_head.get(&hash).copied().unwrap_or(NIL);
        while cur != NIL {
            if self.edge(cur) == sorted {
                return true;
            }
            cur = self.edge_dedup_next[cur as usize];
        }
        false
    }

    /// Append a known-new edge to the arena, dedup chain and adjacency.
    fn append_edge(&mut self, hash: u64, sorted: &[Vertex], constraint: usize) -> EdgeId {
        let id = self.edge_constraint.len() as u32;
        self.edge_vertices.extend_from_slice(sorted);
        self.edge_offsets.push(self.edge_vertices.len() as u32);
        self.edge_constraint.push(constraint as u32);
        self.edge_dedup_next
            .push(self.edge_dedup_head.get(&hash).copied().unwrap_or(NIL));
        self.edge_dedup_head.insert(hash, id);
        for v in sorted {
            self.adj_build.entry(*v).or_default().push(id);
        }
        id
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_constraint.len()
    }

    /// Number of distinct conflicting vertices.
    pub fn conflicting_vertex_count(&self) -> usize {
        if self.frozen {
            self.vertex_list.len()
        } else {
            self.adj_build.len()
        }
    }

    /// The vertices of an edge.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &[Vertex] {
        let i = id as usize;
        &self.edge_vertices[self.edge_offsets[i] as usize..self.edge_offsets[i + 1] as usize]
    }

    /// The constraint index that produced an edge.
    pub fn edge_constraint(&self, id: EdgeId) -> usize {
        self.edge_constraint[id as usize] as usize
    }

    /// Iterate all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &[Vertex])> {
        (0..self.edge_count() as u32).map(|id| (id, self.edge(id)))
    }

    /// Edges containing a vertex.
    #[inline]
    pub fn edges_of(&self, v: Vertex) -> &[EdgeId] {
        if self.frozen {
            match self.vertex_dense.get(&v) {
                Some(&d) => {
                    let d = d as usize;
                    &self.adj_edges[self.adj_offsets[d] as usize..self.adj_offsets[d + 1] as usize]
                }
                None => &[],
            }
        } else {
            self.adj_build.get(&v).map(Vec::as_slice).unwrap_or(&[])
        }
    }

    /// Is the vertex involved in any conflict?
    pub fn is_conflicting(&self, v: Vertex) -> bool {
        if self.frozen {
            self.vertex_dense.contains_key(&v)
        } else {
            self.adj_build.contains_key(&v)
        }
    }

    /// All conflicting vertices (unsorted before [`finalize`], sorted
    /// after).
    ///
    /// [`finalize`]: ConflictHypergraph::finalize
    pub fn conflicting_vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        // Exactly one side is non-empty depending on frozen state.
        self.vertex_list
            .iter()
            .copied()
            .chain(self.adj_build.keys().copied())
    }

    /// Conflicting vertices carrying a given fact (empty slice when the
    /// fact is not part of any conflict). Borrow-based probe: no clone,
    /// no allocation, hit or miss.
    pub fn vertices_of_fact(&self, rel: &str, values: &Row) -> &[Vertex] {
        match self.fact_id(rel, values) {
            Some(fid) => self.vertices_of_fact_id(fid),
            None => &[],
        }
    }

    /// Conflicting vertices carrying an interned fact.
    #[inline]
    pub fn vertices_of_fact_id(&self, id: FactId) -> &[Vertex] {
        &self.fact_vertices[id.0 as usize]
    }

    /// Is a set of vertices independent (no edge fully contained in it)?
    ///
    /// Only edges adjacent to the set need checking, so this is fast for
    /// the small witness sets the prover builds. Allocation-free: instead
    /// of tracking seen edges, an edge touching the set `k` times is
    /// simply re-checked `k` times (edges are tiny, sets are tiny).
    /// Generic over the set's hasher so both `FxHashSet` (prover) and the
    /// default `HashSet` (tests, repair enumeration) work.
    pub fn is_independent<S: BuildHasher>(
        &self,
        set: &std::collections::HashSet<Vertex, S>,
    ) -> bool {
        for &v in set {
            for &eid in self.edges_of(v) {
                if self.edge(eid).iter().all(|u| set.contains(u)) {
                    return false;
                }
            }
        }
        true
    }

    /// Is vertex `v` *blocked* by the set `s` — i.e. does some edge `e ∋ v`
    /// have all its other vertices inside `s`? A blocked vertex cannot be
    /// added to any independent superset of `s`.
    pub fn is_blocked_by<S: BuildHasher>(
        &self,
        v: Vertex,
        s: &std::collections::HashSet<Vertex, S>,
    ) -> bool {
        self.edges_of(v)
            .iter()
            .any(|&eid| self.edge(eid).iter().all(|u| *u == v || s.contains(u)))
    }

    /// Total size of all edges (Σ|e|; diagnostics).
    pub fn total_edge_size(&self) -> usize {
        self.edge_vertices.len()
    }

    // ---- CSR freeze / thaw ----

    /// Compact the vertex → edge adjacency into CSR arrays. Called by the
    /// detector once construction is done; safe to call repeatedly.
    /// Queries work before and after; probes are cheapest after.
    pub fn finalize(&mut self) {
        if self.frozen {
            return;
        }
        let mut vertex_list: Vec<Vertex> = self.adj_build.keys().copied().collect();
        vertex_list.sort_unstable();
        let mut vertex_dense =
            FxHashMap::with_capacity_and_hasher(vertex_list.len(), Default::default());
        for (d, v) in vertex_list.iter().enumerate() {
            vertex_dense.insert(*v, d as u32);
        }
        // Counting pass, then placement pass, iterating edges in id order
        // so each vertex's edge list stays sorted by edge id.
        let mut counts = vec![0u32; vertex_list.len() + 1];
        for v in &self.edge_vertices {
            counts[vertex_dense[v] as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let adj_offsets = counts.clone();
        let mut adj_edges = vec![0u32; self.edge_vertices.len()];
        let mut cursor = counts;
        for (id, _) in self.edge_constraint.iter().enumerate() {
            for v in self.edge(id as u32) {
                let d = vertex_dense[v] as usize;
                adj_edges[cursor[d] as usize] = id as u32;
                cursor[d] += 1;
            }
        }
        self.vertex_list = vertex_list;
        self.vertex_dense = vertex_dense;
        self.adj_offsets = adj_offsets;
        self.adj_edges = adj_edges;
        self.adj_build = FxHashMap::default();
        self.frozen = true;
    }

    /// Has [`ConflictHypergraph::finalize`] been applied (and no edge
    /// added since)?
    pub fn is_finalized(&self) -> bool {
        self.frozen
    }

    /// Rebuild the construction-time adjacency from the CSR view so more
    /// edges can be added.
    fn unfreeze(&mut self) {
        if !self.frozen {
            return;
        }
        let mut adj_build: FxHashMap<Vertex, Vec<EdgeId>> =
            FxHashMap::with_capacity_and_hasher(self.vertex_list.len(), Default::default());
        for (d, v) in self.vertex_list.iter().enumerate() {
            let ids =
                &self.adj_edges[self.adj_offsets[d] as usize..self.adj_offsets[d + 1] as usize];
            adj_build.insert(*v, ids.to_vec());
        }
        self.adj_build = adj_build;
        self.vertex_list = Vec::new();
        self.vertex_dense = FxHashMap::default();
        self.adj_offsets = Vec::new();
        self.adj_edges = Vec::new();
        self.frozen = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::Value;
    use std::collections::HashSet;

    fn v(rel: u32, tid: u32) -> Vertex {
        Vertex {
            rel,
            tid: TupleId(tid),
        }
    }

    fn row(x: i64) -> Row {
        vec![Value::Int(x)]
    }

    #[test]
    fn intern_is_idempotent() {
        let mut g = ConflictHypergraph::new();
        let a = g.intern("r");
        let b = g.intern("r");
        let c = g.intern("s");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.relation_name(a), "r");
        assert_eq!(g.relation_index("s"), Some(c));
        assert_eq!(g.relation_index("zzz"), None);
    }

    #[test]
    fn add_edge_dedups_vertices_and_edges() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let r0 = row(0);
        let r1 = row(1);
        let e1 = g.add_edge(&[v(r, 1), v(r, 0)], &[&r1, &r0], 0);
        assert!(e1.is_some());
        // Same edge in different order is a duplicate.
        let e2 = g.add_edge(&[v(r, 0), v(r, 1)], &[&r0, &r1], 0);
        assert!(e2.is_none());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(0), &[v(r, 0), v(r, 1)]);
        // Same vertex twice collapses to a singleton edge.
        let e3 = g.add_edge(&[v(r, 5), v(r, 5)], &[&row(5), &row(5)], 1);
        assert_eq!(g.edge(e3.unwrap()), &[v(r, 5)]);
    }

    #[test]
    fn adjacency_and_conflicting() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(&[v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.add_edge(&[v(r, 1), v(r, 2)], &[&row(1), &row(2)], 0);
        assert!(g.is_conflicting(v(r, 1)));
        assert!(!g.is_conflicting(v(r, 9)));
        assert_eq!(g.edges_of(v(r, 1)).len(), 2);
        assert_eq!(g.conflicting_vertex_count(), 3);
        assert_eq!(g.total_edge_size(), 4);
    }

    #[test]
    fn independence_checks() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(&[v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.add_edge(
            &[v(r, 1), v(r, 2), v(r, 3)],
            &[&row(1), &row(2), &row(3)],
            1,
        );
        let set: HashSet<Vertex> = [v(r, 0), v(r, 2), v(r, 3)].into_iter().collect();
        assert!(g.is_independent(&set));
        let set: HashSet<Vertex> = [v(r, 0), v(r, 1)].into_iter().collect();
        assert!(!g.is_independent(&set));
        // Subsets of an edge are independent.
        let set: HashSet<Vertex> = [v(r, 1), v(r, 2)].into_iter().collect();
        assert!(g.is_independent(&set));
        assert!(g.is_independent(&HashSet::new()));
    }

    #[test]
    fn blocking() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(
            &[v(r, 0), v(r, 1), v(r, 2)],
            &[&row(0), &row(1), &row(2)],
            0,
        );
        let s: HashSet<Vertex> = [v(r, 1), v(r, 2)].into_iter().collect();
        assert!(g.is_blocked_by(v(r, 0), &s));
        let s: HashSet<Vertex> = [v(r, 1)].into_iter().collect();
        assert!(!g.is_blocked_by(v(r, 0), &s), "edge not fully covered");
        // Singleton edge blocks its vertex against the empty set.
        g.add_edge(&[v(r, 7)], &[&row(7)], 1);
        assert!(g.is_blocked_by(v(r, 7), &HashSet::new()));
    }

    #[test]
    fn fact_index_tracks_conflicting_tuples() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let a = row(10);
        let b = row(20);
        g.add_edge(&[v(r, 0), v(r, 1)], &[&a, &b], 0);
        assert_eq!(g.vertices_of_fact("r", &a), &[v(r, 0)]);
        assert_eq!(g.vertices_of_fact("r", &b), &[v(r, 1)]);
        assert!(g.vertices_of_fact("r", &row(99)).is_empty());
        assert!(g.vertices_of_fact("zzz", &a).is_empty());
    }

    #[test]
    fn duplicate_facts_map_to_multiple_vertices() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let a = row(10);
        // Two distinct physical tuples with the same values, each in a conflict.
        g.add_edge(&[v(r, 0), v(r, 5)], &[&a, &row(50)], 0);
        g.add_edge(&[v(r, 1), v(r, 5)], &[&a, &row(50)], 0);
        assert_eq!(g.vertices_of_fact("r", &a), &[v(r, 0), v(r, 1)]);
    }

    #[test]
    fn fact_interning_assigns_stable_dense_ids() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let a = row(1);
        let b = row(2);
        let fa = g.intern_fact(r, &a);
        let fb = g.intern_fact(r, &b);
        assert_ne!(fa, fb);
        assert_eq!(g.intern_fact(r, &a), fa, "re-interning returns the same id");
        assert_eq!(g.fact_count(), 2);
        assert_eq!(g.fact_id("r", &a), Some(fa));
        assert_eq!(g.fact_id_interned(r, &b), Some(fb));
        let (rel, values) = g.fact(fa);
        assert_eq!(rel, r);
        assert_eq!(values, &a);
    }

    /// Regression (issue 1 satellite): the borrowed probe must work for
    /// hits *and misses* without cloning — exercised here through rows
    /// that were never interned and relations that do not exist. (The
    /// zero-clone property itself is structural: `fact_id` takes `&Row`
    /// and the interner compares borrowed slices in the hash chain.)
    #[test]
    fn borrowed_fact_lookup_hits_and_misses() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let present = row(1);
        g.add_edge(&[v(r, 0), v(r, 1)], &[&present, &row(2)], 0);
        // Hit via borrow.
        assert_eq!(g.vertices_of_fact("r", &present), &[v(r, 0)]);
        assert_eq!(g.fact_id("r", &present), Some(FactId(0)));
        // Miss on a never-interned row of the same relation.
        let absent = row(777);
        assert!(g.fact_id("r", &absent).is_none());
        assert!(g.vertices_of_fact("r", &absent).is_empty());
        // Miss on an unknown relation.
        assert!(g.fact_id("nope", &present).is_none());
        // Miss on a row that collides in length/shape but differs in value.
        let near = vec![Value::Int(1), Value::Int(0)];
        assert!(g.fact_id("r", &near).is_none());
        // Interner state unchanged by misses.
        assert_eq!(g.fact_count(), 2);
    }

    #[test]
    fn projected_probe_matches_materialised_probe() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let a = vec![Value::Int(7), Value::Int(8)];
        let b = vec![Value::Int(8), Value::Int(7)];
        g.add_edge(&[v(r, 0), v(r, 1)], &[&a, &b], 0);
        // Candidate tuple carrying both facts as column slices.
        let tuple = vec![Value::Int(7), Value::Int(8), Value::Int(9)];
        assert_eq!(g.fact_id_projected(r, &tuple, &[0, 1]), g.fact_id("r", &a));
        assert_eq!(g.fact_id_projected(r, &tuple, &[1, 0]), g.fact_id("r", &b));
        // Miss: projection not interned; arity mismatch never matches.
        assert_eq!(g.fact_id_projected(r, &tuple, &[2, 2]), None);
        assert_eq!(g.fact_id_projected(r, &tuple, &[0]), None);
    }

    #[test]
    fn finalize_preserves_all_queries() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        let s = g.intern("s");
        g.add_edge(&[v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.add_edge(&[v(r, 1), v(s, 2)], &[&row(1), &row(2)], 1);
        g.add_edge(&[v(s, 9)], &[&row(9)], 2);
        let before: Vec<(Vertex, Vec<EdgeId>)> = {
            let mut vs: Vec<Vertex> = g.conflicting_vertices().collect();
            vs.sort();
            vs.iter().map(|&v| (v, g.edges_of(v).to_vec())).collect()
        };
        assert!(!g.is_finalized());
        g.finalize();
        assert!(g.is_finalized());
        let after: Vec<(Vertex, Vec<EdgeId>)> = {
            let vs: Vec<Vertex> = g.conflicting_vertices().collect();
            vs.iter().map(|&v| (v, g.edges_of(v).to_vec())).collect()
        };
        assert_eq!(before, after, "finalize must not change adjacency");
        assert_eq!(
            g.edges_of(v(r, 9)),
            &[] as &[EdgeId],
            "unknown vertex still empty"
        );
        assert_eq!(g.conflicting_vertex_count(), 4);
        // Graph remains usable for independence/blocking.
        let set: HashSet<Vertex> = [v(r, 0), v(r, 1)].into_iter().collect();
        assert!(!g.is_independent(&set));
        g.finalize(); // idempotent
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn default_graph_is_usable() {
        // Regression: `default()` must uphold the CSR leading-offset
        // invariant, exactly like `new()`.
        let mut g = ConflictHypergraph::default();
        let r = g.intern("r");
        g.add_edge(&[v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        assert_eq!(g.edge(0), &[v(r, 0), v(r, 1)]);
        assert_eq!(g.edges().count(), 1);
    }

    #[test]
    fn fragments_absorb_in_order_with_dedup() {
        let r0 = row(0);
        let r1 = row(1);
        let r2 = row(2);
        let mut frag_a = EdgeFragment::new();
        let mut frag_b = EdgeFragment::new();
        // Shard A emits {0,1}; shard B emits the same edge (reversed) plus
        // a fresh one — the duplicate must be dropped at absorb time.
        frag_a.push_edge(&[v(0, 0), v(0, 1)], &[&r0, &r1], 0);
        frag_b.push_edge(&[v(0, 1), v(0, 0)], &[&r1, &r0], 0);
        frag_b.push_edge(&[v(0, 1), v(0, 2)], &[&r1, &r2], 1);
        assert_eq!(frag_a.edge_count(), 1);
        assert_eq!(frag_b.edge_count(), 2);
        assert!(!frag_b.is_empty());

        let mut g = ConflictHypergraph::new();
        g.intern("r");
        assert_eq!(g.absorb_fragment(&frag_a), 1);
        assert_eq!(g.absorb_fragment(&frag_b), 1, "duplicate dropped");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(0), &[v(0, 0), v(0, 1)]);
        assert_eq!(g.edge(1), &[v(0, 1), v(0, 2)]);
        assert_eq!(g.edge_constraint(1), 1);
        // Facts were interned through the ordinary path.
        assert_eq!(g.vertices_of_fact("r", &r1), &[v(0, 1)]);
    }

    #[test]
    fn duplicate_add_on_frozen_graph_stays_frozen() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(&[v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.finalize();
        assert!(g
            .add_edge(&[v(r, 1), v(r, 0)], &[&row(1), &row(0)], 0)
            .is_none());
        assert!(g.is_finalized(), "duplicate insert must not thaw the CSR");
    }

    #[test]
    fn add_edge_after_finalize_unfreezes() {
        let mut g = ConflictHypergraph::new();
        let r = g.intern("r");
        g.add_edge(&[v(r, 0), v(r, 1)], &[&row(0), &row(1)], 0);
        g.finalize();
        // Duplicate through the dedup table still detected post-freeze.
        assert!(g
            .add_edge(&[v(r, 1), v(r, 0)], &[&row(1), &row(0)], 0)
            .is_none());
        let e = g.add_edge(&[v(r, 1), v(r, 2)], &[&row(1), &row(2)], 0);
        assert!(e.is_some());
        assert!(!g.is_finalized());
        assert_eq!(g.edges_of(v(r, 1)).len(), 2);
        g.finalize();
        assert_eq!(g.edges_of(v(r, 1)).len(), 2);
        assert_eq!(g.conflicting_vertex_count(), 3);
    }
}
