//! Range-consistent scalar aggregation — the extension described in the
//! paper's reference \[3\] (Arenas, Bertossi, Chomicki, He, Raghavan,
//! Spinrad: *Scalar Aggregation in Inconsistent Databases*, TCS 296(3)).
//!
//! An aggregate query has no single consistent answer under
//! inconsistency; the natural semantics is the **range** `[glb, lub]` of
//! the aggregate's value over all repairs. For a relation with a single
//! functional dependency `X → A`, repairs have special structure — each
//! FD group keeps exactly one *value class* (all its tuples agreeing on
//! `A`), independently across groups — which yields polynomial (here
//! linear) algorithms for `COUNT(*)`, `SUM`, `MIN` and `MAX`:
//!
//! * `COUNT(*)`: sum per group of the smallest / largest class size;
//! * `SUM(B)`:   sum per group of the smallest / largest class sum;
//! * `MIN(B)`:   glb is the global minimum (some repair keeps that class);
//!   lub maximises the minimum: per group pick the class with the largest
//!   class-minimum, then take the smallest of those and the conflict-free
//!   part;
//! * `MAX(B)`:   symmetric.
//!
//! [`range_aggregate_naive`] computes the same ranges by repair
//! enumeration (exponential; the test oracle).

use crate::constraint::DenialConstraint;
use crate::detect::detect_conflicts;
use crate::hypergraph::Vertex;
use crate::repair::{enumerate_repairs, repair_instance};
use hippo_engine::{Catalog, EngineError, Value};
use std::collections::HashMap;

/// Aggregates supported by range-consistent answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// `COUNT(*)`
    Count,
    /// `SUM(attr)`
    Sum,
    /// `MIN(attr)`
    Min,
    /// `MAX(attr)`
    Max,
}

/// A closed interval of aggregate values over all repairs.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRange {
    /// Greatest lower bound (the aggregate's value in some repair).
    pub glb: Value,
    /// Least upper bound.
    pub lub: Value,
}

/// Per-class accumulators within one FD group.
#[derive(Debug, Clone)]
struct ClassStats {
    count: i64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

/// Range-consistent aggregate over `rel.agg_col` under the single FD
/// `lhs → rhs` (polynomial algorithm). `agg_col` is ignored for `Count`.
///
/// Tuples whose group satisfies the FD (a single value class) are in every
/// repair; conflicting groups contribute one class per repair.
pub fn range_aggregate_fd(
    catalog: &Catalog,
    rel: &str,
    lhs: &[usize],
    rhs: usize,
    agg_col: usize,
    op: AggOp,
) -> Result<AggRange, EngineError> {
    let table = catalog.table(rel)?;
    if op != AggOp::Count && agg_col >= table.schema.arity() {
        return Err(EngineError::new(format!(
            "aggregate column {agg_col} out of range for {rel:?}"
        )));
    }
    // group key -> class key (rhs value) -> stats
    let mut groups: HashMap<Vec<Value>, HashMap<Value, ClassStats>> = HashMap::new();
    for (_, row) in table.iter() {
        let gkey: Vec<Value> = lhs.iter().map(|&c| row[c].clone()).collect();
        let ckey = row[rhs].clone();
        let b = row.get(agg_col).and_then(Value::as_f64);
        let entry = groups
            .entry(gkey)
            .or_default()
            .entry(ckey)
            .or_insert(ClassStats {
                count: 0,
                sum: 0.0,
                min: None,
                max: None,
            });
        entry.count += 1;
        if let Some(b) = b {
            entry.sum += b;
            entry.min = Some(entry.min.map_or(b, |m| m.min(b)));
            entry.max = Some(entry.max.map_or(b, |m| m.max(b)));
        }
    }

    match op {
        AggOp::Count => {
            let (mut glb, mut lub) = (0i64, 0i64);
            for classes in groups.values() {
                let min = classes.values().map(|c| c.count).min().unwrap_or(0);
                let max = classes.values().map(|c| c.count).max().unwrap_or(0);
                if classes.len() == 1 {
                    glb += max;
                    lub += max;
                } else {
                    glb += min;
                    lub += max;
                }
            }
            Ok(AggRange {
                glb: Value::Int(glb),
                lub: Value::Int(lub),
            })
        }
        AggOp::Sum => {
            let (mut glb, mut lub) = (0.0f64, 0.0f64);
            for classes in groups.values() {
                let sums: Vec<f64> = classes.values().map(|c| c.sum).collect();
                let min = sums.iter().copied().fold(f64::INFINITY, f64::min);
                let max = sums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if classes.len() == 1 {
                    glb += max;
                    lub += max;
                } else {
                    glb += min;
                    lub += max;
                }
            }
            Ok(AggRange {
                glb: Value::Float(glb),
                lub: Value::Float(lub),
            })
        }
        AggOp::Min => {
            // glb: some repair keeps the class holding the global minimum.
            let glb = groups
                .values()
                .flat_map(|cs| cs.values().filter_map(|c| c.min))
                .fold(f64::INFINITY, f64::min);
            // lub: per conflicting group choose the class with the largest
            // class-min; single-class groups are fixed.
            let mut lub = f64::INFINITY;
            for classes in groups.values() {
                let choice = if classes.len() == 1 {
                    classes.values().next().and_then(|c| c.min)
                } else {
                    classes
                        .values()
                        .filter_map(|c| c.min)
                        .fold(None, |acc: Option<f64>, m| {
                            Some(acc.map_or(m, |a| a.max(m)))
                        })
                };
                if let Some(c) = choice {
                    lub = lub.min(c);
                }
            }
            if glb.is_infinite() {
                return Ok(AggRange {
                    glb: Value::Null,
                    lub: Value::Null,
                });
            }
            Ok(AggRange {
                glb: Value::Float(glb),
                lub: Value::Float(lub),
            })
        }
        AggOp::Max => {
            let lub = groups
                .values()
                .flat_map(|cs| cs.values().filter_map(|c| c.max))
                .fold(f64::NEG_INFINITY, f64::max);
            let mut glb = f64::NEG_INFINITY;
            for classes in groups.values() {
                let choice = if classes.len() == 1 {
                    classes.values().next().and_then(|c| c.max)
                } else {
                    classes
                        .values()
                        .filter_map(|c| c.max)
                        .fold(None, |acc: Option<f64>, m| {
                            Some(acc.map_or(m, |a| a.min(m)))
                        })
                };
                if let Some(c) = choice {
                    glb = glb.max(c);
                }
            }
            if lub.is_infinite() {
                return Ok(AggRange {
                    glb: Value::Null,
                    lub: Value::Null,
                });
            }
            Ok(AggRange {
                glb: Value::Float(glb),
                lub: Value::Float(lub),
            })
        }
    }
}

/// Range-consistent aggregate by repair enumeration (exponential; the
/// oracle the polynomial algorithm is tested against).
pub fn range_aggregate_naive(
    catalog: &Catalog,
    rel: &str,
    constraints: &[DenialConstraint],
    agg_col: usize,
    op: AggOp,
) -> Result<AggRange, EngineError> {
    let (g, _) = detect_conflicts(catalog, constraints)?;
    let repairs = enumerate_repairs(&g, None);
    let mut glb: Option<f64> = None;
    let mut lub: Option<f64> = None;
    let mut any_empty = false;
    for kept in &repairs {
        let inst = repair_instance(catalog, &g, kept);
        let rows = inst(rel);
        let v: Option<f64> = match op {
            AggOp::Count => Some(rows.len() as f64),
            AggOp::Sum => Some(rows.iter().filter_map(|r| r[agg_col].as_f64()).sum()),
            AggOp::Min => rows
                .iter()
                .filter_map(|r| r[agg_col].as_f64())
                .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x)))),
            AggOp::Max => rows
                .iter()
                .filter_map(|r| r[agg_col].as_f64())
                .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x)))),
        };
        match v {
            None => any_empty = true,
            Some(v) => {
                glb = Some(glb.map_or(v, |a| a.min(v)));
                lub = Some(lub.map_or(v, |a| a.max(v)));
            }
        }
    }
    let _ = any_empty; // MIN/MAX over an empty repair is NULL; ranges ignore it
    match (glb, lub, op) {
        (Some(g_), Some(l), AggOp::Count) => Ok(AggRange {
            glb: Value::Int(g_ as i64),
            lub: Value::Int(l as i64),
        }),
        (Some(g_), Some(l), _) => Ok(AggRange {
            glb: Value::Float(g_),
            lub: Value::Float(l),
        }),
        _ => Ok(AggRange {
            glb: Value::Null,
            lub: Value::Null,
        }),
    }
}

/// Vertices of `rel` grouped per FD class — exposed for diagnostics and
/// used by tests to cross-check the clustering the algorithm relies on.
pub fn fd_group_sizes(
    catalog: &Catalog,
    rel: &str,
    lhs: &[usize],
) -> Result<Vec<usize>, EngineError> {
    let table = catalog.table(rel)?;
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    for (_, row) in table.iter() {
        let key: Vec<Value> = lhs.iter().map(|&c| row[c].clone()).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = groups.into_values().collect();
    sizes.sort_unstable();
    Ok(sizes)
}

/// Sanity helper: are the hypergraph's conflicts confined to `rel` (the
/// single-FD algorithms assume no other constraints touch the relation)?
pub fn single_relation_conflicts(g: &crate::hypergraph::ConflictHypergraph, rel: &str) -> bool {
    let Some(ri) = g.relation_index(rel) else {
        return true;
    };
    g.edges()
        .all(|(_, e)| e.iter().all(|v: &Vertex| v.rel == ri))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::Database;

    fn db(rows: &[(i64, i64, i64)]) -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT, b INT)").unwrap();
        db.insert_rows(
            "t",
            rows.iter()
                .map(|&(k, v, b)| vec![Value::Int(k), Value::Int(v), Value::Int(b)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn fd() -> Vec<DenialConstraint> {
        vec![DenialConstraint::functional_dependency("t", &[0], 1)]
    }

    fn check_all_ops(rows: &[(i64, i64, i64)]) {
        let db = db(rows);
        for op in [AggOp::Count, AggOp::Sum, AggOp::Min, AggOp::Max] {
            let fast = range_aggregate_fd(db.catalog(), "t", &[0], 1, 2, op).unwrap();
            let slow = range_aggregate_naive(db.catalog(), "t", &fd(), 2, op).unwrap();
            // Compare numerically (Int vs Float tolerated by Value's eq).
            assert_eq!(
                fast.glb.as_f64(),
                slow.glb.as_f64(),
                "glb mismatch for {op:?} on {rows:?}"
            );
            assert_eq!(
                fast.lub.as_f64(),
                slow.lub.as_f64(),
                "lub mismatch for {op:?} on {rows:?}"
            );
        }
    }

    #[test]
    fn consistent_relation_has_point_ranges() {
        let db = db(&[(1, 10, 5), (2, 20, 7)]);
        let r = range_aggregate_fd(db.catalog(), "t", &[0], 1, 2, AggOp::Count).unwrap();
        assert_eq!(
            r,
            AggRange {
                glb: Value::Int(2),
                lub: Value::Int(2)
            }
        );
        let r = range_aggregate_fd(db.catalog(), "t", &[0], 1, 2, AggOp::Sum).unwrap();
        assert_eq!(r.glb.as_f64(), Some(12.0));
        assert_eq!(r.lub.as_f64(), Some(12.0));
    }

    #[test]
    fn count_range_with_unequal_classes() {
        // key 1: class v=10 has two tuples, class v=11 has one.
        let db = db(&[(1, 10, 1), (1, 10, 2), (1, 11, 3), (2, 20, 4)]);
        let r = range_aggregate_fd(db.catalog(), "t", &[0], 1, 2, AggOp::Count).unwrap();
        assert_eq!(
            r,
            AggRange {
                glb: Value::Int(2),
                lub: Value::Int(3)
            }
        );
    }

    #[test]
    fn matches_naive_on_handcrafted_cases() {
        check_all_ops(&[(1, 10, 5), (1, 20, 9), (2, 30, 1)]);
        check_all_ops(&[
            (1, 10, 5),
            (1, 10, 6),
            (1, 20, -3),
            (2, 30, 0),
            (2, 31, 100),
        ]);
        check_all_ops(&[(1, 1, 1)]);
        check_all_ops(&[]);
        check_all_ops(&[(1, 1, -5), (1, 2, -9), (1, 3, 7)]);
    }

    #[test]
    fn matches_naive_on_seeded_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..25 {
            let n = rng.gen_range(0..10);
            let rows: Vec<(i64, i64, i64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0..4),
                        rng.gen_range(0..3),
                        rng.gen_range(-10..10),
                    )
                })
                .collect();
            // Deduplicate (set semantics).
            let mut rows = rows;
            rows.sort_unstable();
            rows.dedup();
            check_all_ops(&rows);
        }
    }

    #[test]
    fn empty_relation_yields_null_minmax() {
        let db = db(&[]);
        let r = range_aggregate_fd(db.catalog(), "t", &[0], 1, 2, AggOp::Min).unwrap();
        assert_eq!(
            r,
            AggRange {
                glb: Value::Null,
                lub: Value::Null
            }
        );
        let r = range_aggregate_fd(db.catalog(), "t", &[0], 1, 2, AggOp::Count).unwrap();
        assert_eq!(
            r,
            AggRange {
                glb: Value::Int(0),
                lub: Value::Int(0)
            }
        );
    }

    #[test]
    fn helpers() {
        let db = db(&[(1, 10, 0), (1, 11, 0), (2, 20, 0)]);
        assert_eq!(fd_group_sizes(db.catalog(), "t", &[0]).unwrap(), vec![1, 2]);
        let (g, _) = detect_conflicts(db.catalog(), &fd()).unwrap();
        assert!(single_relation_conflicts(&g, "t"));
        assert!(single_relation_conflicts(&g, "ghost"));
    }
}
