//! Quantifier-free predicates over positional tuples.
//!
//! Used both as selection conditions in SJUD queries and as the comparison
//! part of denial constraints. A predicate refers to columns by position,
//! so it can be evaluated directly on a row or rendered to SQL against
//! generated column names (`c0`, `c1`, ...).

use hippo_engine::Value;
use hippo_sql::{BinaryOp, Expr};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate against an ordering result.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The SQL binary operator.
    pub fn to_sql_op(self) -> BinaryOp {
        match self {
            CmpOp::Eq => BinaryOp::Eq,
            CmpOp::Neq => BinaryOp::Neq,
            CmpOp::Lt => BinaryOp::Lt,
            CmpOp::Le => BinaryOp::Le,
            CmpOp::Gt => BinaryOp::Gt,
            CmpOp::Ge => BinaryOp::Ge,
        }
    }

    /// Logical negation (`<` ↔ `>=`, etc.).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_sql_op().sql())
    }
}

/// One side of a comparison: a column position or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Column by position.
    Col(usize),
    /// Constant value.
    Const(Value),
}

impl Operand {
    fn value<'a>(&'a self, row: &'a [Value]) -> Option<&'a Value> {
        match self {
            Operand::Col(i) => row.get(*i),
            Operand::Const(v) => Some(v),
        }
    }

    fn shift(&self, by: usize) -> Operand {
        match self {
            Operand::Col(i) => Operand::Col(i + by),
            c => c.clone(),
        }
    }

    fn max_col(&self) -> Option<usize> {
        match self {
            Operand::Col(i) => Some(*i),
            Operand::Const(_) => None,
        }
    }
}

/// A quantifier-free predicate over a positional row.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Operand,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `col <op> const` shorthand.
    pub fn cmp_const(col: usize, op: CmpOp, v: impl Into<Value>) -> Pred {
        Pred::Cmp {
            op,
            left: Operand::Col(col),
            right: Operand::Const(v.into()),
        }
    }

    /// `col <op> col` shorthand.
    pub fn cmp_cols(l: usize, op: CmpOp, r: usize) -> Pred {
        Pred::Cmp {
            op,
            left: Operand::Col(l),
            right: Operand::Col(r),
        }
    }

    /// `a AND b`.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, x) | (x, Pred::True) => x,
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// `a OR b`.
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::False, x) | (x, Pred::False) => x,
            (Pred::True, _) | (_, Pred::True) => Pred::True,
            (a, b) => Pred::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `NOT a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Cmp { op, left, right } => Pred::Cmp {
                op: op.negate(),
                left,
                right,
            },
            Pred::Not(inner) => *inner,
            p => Pred::Not(Box::new(p)),
        }
    }

    /// Conjunction of many predicates.
    pub fn conjoin(preds: impl IntoIterator<Item = Pred>) -> Pred {
        preds.into_iter().fold(Pred::True, Pred::and)
    }

    /// Evaluate on a row. SQL three-valued logic collapses to boolean here:
    /// comparisons involving `NULL` or incomparable types are *not
    /// satisfied* (and their negation via [`CmpOp::negate`] is not either).
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp { op, left, right } => {
                let (Some(l), Some(r)) = (left.value(row), right.value(row)) else {
                    return false;
                };
                match l.sql_cmp(r) {
                    Some(ord) => op.test(ord),
                    None => false,
                }
            }
            Pred::And(a, b) => a.eval(row) && b.eval(row),
            Pred::Or(a, b) => a.eval(row) || b.eval(row),
            Pred::Not(p) => !p.eval(row),
        }
    }

    /// Shift all column positions by `by` (used when a predicate moves to
    /// the right side of a product).
    pub fn shift(&self, by: usize) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp { op, left, right } => Pred::Cmp {
                op: *op,
                left: left.shift(by),
                right: right.shift(by),
            },
            Pred::And(a, b) => Pred::And(Box::new(a.shift(by)), Box::new(b.shift(by))),
            Pred::Or(a, b) => Pred::Or(Box::new(a.shift(by)), Box::new(b.shift(by))),
            Pred::Not(p) => Pred::Not(Box::new(p.shift(by))),
        }
    }

    /// Remap column positions through `f`.
    pub fn map_cols(&self, f: &impl Fn(usize) -> usize) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp { op, left, right } => {
                let m = |o: &Operand| match o {
                    Operand::Col(i) => Operand::Col(f(*i)),
                    c => c.clone(),
                };
                Pred::Cmp {
                    op: *op,
                    left: m(left),
                    right: m(right),
                }
            }
            Pred::And(a, b) => Pred::And(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            Pred::Or(a, b) => Pred::Or(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            Pred::Not(p) => Pred::Not(Box::new(p.map_cols(f))),
        }
    }

    /// Largest referenced column position.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Pred::True | Pred::False => None,
            Pred::Cmp { left, right, .. } => match (left.max_col(), right.max_col()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            Pred::And(a, b) | Pred::Or(a, b) => match (a.max_col(), b.max_col()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            Pred::Not(p) => p.max_col(),
        }
    }

    /// Render as a SQL expression over column names produced by `name`
    /// (e.g. `|i| format!("c{i}")` or a qualified form).
    pub fn to_sql_expr(&self, name: &impl Fn(usize) -> Expr) -> Expr {
        match self {
            Pred::True => Expr::int(1).eq(Expr::int(1)),
            Pred::False => Expr::int(1).eq(Expr::int(0)),
            Pred::Cmp { op, left, right } => {
                let render = |o: &Operand| match o {
                    Operand::Col(i) => name(*i),
                    Operand::Const(v) => value_to_sql(v),
                };
                Expr::Binary {
                    op: op.to_sql_op(),
                    left: Box::new(render(left)),
                    right: Box::new(render(right)),
                }
            }
            Pred::And(a, b) => a.to_sql_expr(name).and(b.to_sql_expr(name)),
            Pred::Or(a, b) => a.to_sql_expr(name).or(b.to_sql_expr(name)),
            Pred::Not(p) => p.to_sql_expr(name).not(),
        }
    }
}

/// Render a runtime value as a SQL literal expression.
pub fn value_to_sql(v: &Value) -> Expr {
    use hippo_sql::Literal;
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Bool(b) => Literal::Bool(*b),
        Value::Int(i) => Literal::Int(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Text(s) => Literal::Str(s.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn comparisons_evaluate() {
        let p = Pred::cmp_cols(0, CmpOp::Lt, 1);
        assert!(p.eval(&row(&[1, 2])));
        assert!(!p.eval(&row(&[2, 1])));
        let p = Pred::cmp_const(0, CmpOp::Eq, 5i64);
        assert!(p.eval(&row(&[5])));
        assert!(!p.eval(&row(&[4])));
    }

    #[test]
    fn null_never_satisfies() {
        let p = Pred::cmp_const(0, CmpOp::Eq, 5i64);
        assert!(!p.eval(&[Value::Null]));
        let p = Pred::cmp_const(0, CmpOp::Neq, 5i64);
        assert!(
            !p.eval(&[Value::Null]),
            "negated comparison on NULL is also false"
        );
    }

    #[test]
    fn and_or_not() {
        let p = Pred::cmp_const(0, CmpOp::Gt, 0i64).and(Pred::cmp_const(0, CmpOp::Lt, 10i64));
        assert!(p.eval(&row(&[5])));
        assert!(!p.eval(&row(&[11])));
        let q = p.clone().not();
        assert!(q.eval(&row(&[11])));
        let r = Pred::cmp_const(0, CmpOp::Eq, 1i64).or(Pred::cmp_const(0, CmpOp::Eq, 2i64));
        assert!(r.eval(&row(&[2])));
        assert!(!r.eval(&row(&[3])));
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            Pred::True.and(Pred::cmp_const(0, CmpOp::Eq, 1i64)),
            Pred::cmp_const(0, CmpOp::Eq, 1i64)
        );
        assert_eq!(Pred::False.and(Pred::True), Pred::False);
        assert_eq!(Pred::False.or(Pred::True), Pred::True);
        assert_eq!(Pred::True.not(), Pred::False);
        // NOT of a comparison flips the operator rather than wrapping.
        assert_eq!(
            Pred::cmp_cols(0, CmpOp::Lt, 1).not(),
            Pred::cmp_cols(0, CmpOp::Ge, 1)
        );
    }

    #[test]
    fn shift_and_map() {
        let p = Pred::cmp_cols(0, CmpOp::Eq, 2);
        assert_eq!(p.shift(3), Pred::cmp_cols(3, CmpOp::Eq, 5));
        assert_eq!(p.map_cols(&|i| i * 10), Pred::cmp_cols(0, CmpOp::Eq, 20));
        assert_eq!(p.max_col(), Some(2));
        assert_eq!(Pred::True.max_col(), None);
    }

    #[test]
    fn renders_to_sql() {
        let p = Pred::cmp_const(1, CmpOp::Ge, 100i64).and(Pred::cmp_cols(0, CmpOp::Neq, 2));
        let e = p.to_sql_expr(&|i| Expr::col(format!("c{i}")));
        let sql = hippo_sql::print_expr(&e);
        assert_eq!(sql, "((c1 >= 100) AND (c0 <> c2))");
    }

    #[test]
    fn conjoin_folds() {
        let p = Pred::conjoin(vec![
            Pred::cmp_const(0, CmpOp::Eq, 1i64),
            Pred::True,
            Pred::cmp_const(1, CmpOp::Eq, 2i64),
        ]);
        assert!(p.eval(&row(&[1, 2])));
        assert!(!p.eval(&row(&[1, 3])));
    }

    #[test]
    fn incomparable_types_unsatisfied() {
        let p = Pred::Cmp {
            op: CmpOp::Lt,
            left: Operand::Col(0),
            right: Operand::Const(Value::text("a")),
        };
        assert!(!p.eval(&[Value::Int(1)]));
    }
}
