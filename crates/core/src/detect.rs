//! Conflict detection: build the conflict hypergraph from a database
//! instance and a set of denial constraints.
//!
//! This is the "Conflict Detection" stage of the paper's Figure 1: it runs
//! once per (instance, constraint set) and produces the main-memory
//! hypergraph the Prover consults. Two evaluation strategies:
//!
//! * **FD fast path** — functional dependencies group tuples by the LHS
//!   columns with one hash pass and emit an edge per RHS-disagreeing pair.
//!   Grouping is *zero-copy*: rows are bucketed by the Fx hash of their
//!   LHS projection (no key `Vec<Value>` is built) and candidate pairs
//!   re-verify LHS equality, which also neutralises hash collisions.
//! * **General denials** — atoms are joined left-to-right; whenever the
//!   next atom is linked to an already-bound atom by equality comparisons,
//!   a pre-sized Fx hash index on those columns replaces the nested-loop
//!   scan.
//!
//! Edges are pushed straight into the [`ConflictHypergraph`]'s CSR arena
//! (facts are interned on insert); detection ends with
//! [`ConflictHypergraph::finalize`], which freezes the vertex→edge
//! adjacency into its compact offset-array form for the prover's reads.

use crate::constraint::{Comparison, DenialConstraint, Term};
use crate::hypergraph::{ConflictHypergraph, Vertex};
use crate::pred::CmpOp;
use hippo_engine::{Catalog, EngineError, Row, TupleId, Value};
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Detection statistics (reported by experiment E4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectStats {
    /// Wall-clock time spent detecting.
    pub elapsed: Duration,
    /// Candidate tuple combinations tested against constraint conditions.
    pub combinations_checked: usize,
    /// Edges produced (before dedup; the hypergraph dedups internally).
    pub edges_emitted: usize,
}

/// Build the conflict hypergraph for `constraints` over the catalog.
pub fn detect_conflicts(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
) -> Result<(ConflictHypergraph, DetectStats), EngineError> {
    let start = Instant::now();
    let (mut g, mut stats) = detect_conflicts_unfinalized(catalog, constraints)?;
    // Compact adjacency into CSR form: construction is over, the prover
    // only reads from here on.
    g.finalize();
    stats.elapsed = start.elapsed();
    Ok((g, stats))
}

/// Like [`detect_conflicts`] but leaves the graph un-finalized, for callers
/// that will add more edges (e.g. foreign-key orphan edges) before
/// freezing the adjacency themselves.
pub(crate) fn detect_conflicts_unfinalized(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
) -> Result<(ConflictHypergraph, DetectStats), EngineError> {
    let start = Instant::now();
    let mut g = ConflictHypergraph::new();
    let mut stats = DetectStats::default();
    for c in constraints {
        c.validate(catalog)?;
    }
    for (ci, c) in constraints.iter().enumerate() {
        if let Some((rel, lhs, rhs)) = as_fd(c) {
            detect_fd(catalog, &mut g, ci, &rel, &lhs, rhs, &mut stats)?;
        } else {
            detect_general(catalog, &mut g, ci, c, &mut stats)?;
        }
    }
    stats.elapsed = start.elapsed();
    Ok((g, stats))
}

/// Recognise the FD pattern: two atoms over the same relation, condition =
/// equalities on L columns plus exactly one `<>` on the same column of
/// both atoms.
fn as_fd(c: &DenialConstraint) -> Option<(String, Vec<usize>, usize)> {
    if c.atoms.len() != 2 || c.atoms[0] != c.atoms[1] {
        return None;
    }
    let mut lhs = Vec::new();
    let mut rhs = None;
    for cmp in &c.condition {
        match cmp {
            Comparison {
                op: CmpOp::Eq,
                left: Term::Attr(a),
                right: Term::Attr(b),
            } if a.atom != b.atom && a.col == b.col => {
                lhs.push(a.col);
            }
            Comparison {
                op: CmpOp::Neq,
                left: Term::Attr(a),
                right: Term::Attr(b),
            } if a.atom != b.atom && a.col == b.col && rhs.is_none() => {
                rhs = Some(a.col);
            }
            _ => return None,
        }
    }
    rhs.map(|r| (c.atoms[0].clone(), lhs, r))
}

fn detect_fd(
    catalog: &Catalog,
    g: &mut ConflictHypergraph,
    ci: usize,
    rel: &str,
    lhs: &[usize],
    rhs: usize,
    stats: &mut DetectStats,
) -> Result<(), EngineError> {
    let table = catalog.table(rel)?;
    let ri = g.intern(rel);
    // Group by LHS values — zero-clone: buckets are keyed by the Fx hash
    // of the LHS projection and pairs re-verify LHS equality, so no key
    // `Vec<Value>` is ever materialised. (Hash collisions merely co-locate
    // unrelated rows; the equality check keeps them from pairing.)
    let mut groups: FxHashMap<u64, Vec<(TupleId, &Row)>> =
        FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
    'rows: for (tid, row) in table.iter() {
        let mut h = FxHasher::default();
        for &c in lhs {
            // NULLs in the LHS never participate in FD violations (SQL
            // comparison with NULL is unknown).
            if row[c].is_null() {
                continue 'rows;
            }
            row[c].hash(&mut h);
        }
        groups.entry(h.finish()).or_default().push((tid, row));
    }
    for group in groups.values() {
        if group.len() < 2 {
            continue;
        }
        // Partition by RHS value; any same-LHS cross-partition pair is an
        // edge.
        for (i, (tid_a, row_a)) in group.iter().enumerate() {
            for (tid_b, row_b) in group.iter().skip(i + 1) {
                stats.combinations_checked += 1;
                if lhs.iter().any(|&c| row_a[c] != row_b[c]) {
                    continue; // hash collision, not a real group-mate
                }
                let va = &row_a[rhs];
                let vb = &row_b[rhs];
                if va.sql_eq(vb) == Some(false) {
                    stats.edges_emitted += 1;
                    g.add_edge(
                        &[
                            Vertex {
                                rel: ri,
                                tid: *tid_a,
                            },
                            Vertex {
                                rel: ri,
                                tid: *tid_b,
                            },
                        ],
                        &[row_a, row_b],
                        ci,
                    );
                }
            }
        }
    }
    Ok(())
}

fn detect_general(
    catalog: &Catalog,
    g: &mut ConflictHypergraph,
    ci: usize,
    c: &DenialConstraint,
    stats: &mut DetectStats,
) -> Result<(), EngineError> {
    // Intern all atom relations first.
    let rels: Vec<u32> = c.atoms.iter().map(|r| g.intern(r)).collect();

    // Materialise each atom's rows (tables are already in memory; this
    // borrows them).
    let tables: Vec<&hippo_engine::Table> = c
        .atoms
        .iter()
        .map(|r| catalog.table(r))
        .collect::<Result<_, _>>()?;

    // Bind atoms left to right; each partial assignment is a prefix of
    // (tuple id, row) bindings. Start from the single empty assignment.
    let mut current: Vec<Vec<(TupleId, Row)>> = vec![Vec::new()];

    for (atom_idx, table) in tables.iter().enumerate() {
        // Equalities linking this atom to an already-bound atom.
        let mut links: Vec<(usize, usize, usize)> = Vec::new(); // (bound_atom, bound_col, new_col)
        for prev in 0..atom_idx {
            for (pc, nc) in c.equalities_between(prev, atom_idx) {
                links.push((prev, pc, nc));
            }
        }
        let mut next: Vec<Vec<(TupleId, Row)>> = Vec::new();
        if links.is_empty() {
            // Nested loop extension.
            for assign in &current {
                for (tid, row) in table.iter() {
                    stats.combinations_checked += 1;
                    let mut a = assign.clone();
                    a.push((tid, row.clone()));
                    if partial_condition_ok(c, &a) {
                        next.push(a);
                    }
                }
            }
        } else {
            // Hash index on the new atom keyed by the linked columns.
            let key_cols: Vec<usize> = links.iter().map(|&(_, _, nc)| nc).collect();
            let mut index: FxHashMap<Vec<Value>, Vec<(TupleId, Row)>> =
                FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
            for (tid, row) in table.iter() {
                let key: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                index.entry(key).or_default().push((tid, row.clone()));
            }
            for assign in &current {
                let key: Vec<Value> = links
                    .iter()
                    .map(|&(prev, pc, _)| assign[prev].1[pc].clone())
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = index.get(&key) {
                    for (tid, row) in matches {
                        stats.combinations_checked += 1;
                        let mut a = assign.clone();
                        a.push((*tid, row.clone()));
                        if partial_condition_ok(c, &a) {
                            next.push(a);
                        }
                    }
                }
            }
        }
        current = next;
    }

    for assign in current {
        // Full assignment satisfying the condition = violation.
        let rows: Vec<&Row> = assign.iter().map(|(_, r)| r).collect();
        debug_assert!(c.condition_holds(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>()));
        stats.edges_emitted += 1;
        let vertices: Vec<Vertex> = assign
            .iter()
            .enumerate()
            .map(|(i, (tid, _))| Vertex {
                rel: rels[i],
                tid: *tid,
            })
            .collect();
        g.add_edge(&vertices, &rows, ci);
    }
    Ok(())
}

/// Check the comparisons whose atoms are all bound so far; used to prune
/// partial assignments early.
fn partial_condition_ok(c: &DenialConstraint, assign: &[(TupleId, Row)]) -> bool {
    let bound = assign.len();
    c.condition.iter().all(|cmp| {
        let val = |t: &Term| -> Option<Option<Value>> {
            // Outer None = atom not bound yet (skip); inner Option = value.
            match t {
                Term::Attr(a) => {
                    if a.atom >= bound {
                        None
                    } else {
                        Some(assign[a.atom].1.get(a.col).cloned())
                    }
                }
                Term::Const(v) => Some(Some(v.clone())),
            }
        };
        match (val(&cmp.left), val(&cmp.right)) {
            (Some(Some(l)), Some(Some(r))) => match l.sql_cmp(&r) {
                Some(ord) => cmp.op.test(ord),
                None => false,
            },
            (Some(None), _) | (_, Some(None)) => false, // missing column
            _ => true,                                  // not fully bound yet
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::AttrRef;
    use hippo_engine::{Column, DataType, Database, TableSchema};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn fd_detects_pairs() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, stats) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.conflicting_vertex_count(), 2);
        assert_eq!(stats.edges_emitted, 1);
    }

    #[test]
    fn fd_group_of_three_distinct_values_gives_three_edges() {
        let db = emp_db(&[("ann", 1), ("ann", 2), ("ann", 3)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, _) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 3, "all pairs violate");
    }

    #[test]
    fn fd_duplicate_rhs_values_do_not_conflict() {
        let db = emp_db(&[("ann", 100), ("ann", 100)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, _) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fd_null_lhs_is_ignored() {
        let mut db = emp_db(&[("ann", 100)]);
        db.insert_rows(
            "emp",
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap();
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, _) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn check_constraint_gives_singleton_edges() {
        let db = emp_db(&[("ann", -5), ("bob", 10), ("cyd", -1)]);
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let (g, _) = detect_conflicts(db.catalog(), &[chk]).unwrap();
        assert_eq!(g.edge_count(), 2);
        for (_, e) in g.edges() {
            assert_eq!(e.len(), 1, "CHECK denials produce singleton edges");
        }
    }

    #[test]
    fn exclusion_across_relations() {
        let mut db = emp_db(&[("ann", 100), ("bob", 200)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "contractor",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("rate", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "contractor",
            vec![
                vec![Value::text("ann"), Value::Int(50)],
                vec![Value::text("cyd"), Value::Int(60)],
            ],
        )
        .unwrap();
        let ex = DenialConstraint::exclusion("emp", "contractor", &[(0, 0)]);
        let (g, _) = detect_conflicts(db.catalog(), &[ex]).unwrap();
        assert_eq!(g.edge_count(), 1, "only ann is in both");
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.len(), 2);
        assert_ne!(e[0].rel, e[1].rel);
    }

    #[test]
    fn multiple_constraints_combine() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", -1)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let (g, _) = detect_conflicts(db.catalog(), &[fd.clone(), chk]).unwrap();
        assert_eq!(g.edge_count(), 2);
        // Constraint attribution is preserved.
        let by_constraint: Vec<usize> = g.edges().map(|(id, _)| g.edge_constraint(id)).collect();
        assert!(by_constraint.contains(&0));
        assert!(by_constraint.contains(&1));
        let _ = fd;
    }

    #[test]
    fn general_three_atom_denial() {
        // ¬(emp(a) ∧ emp(b) ∧ emp(c) ∧ a.salary < b.salary ∧ b.salary < c.salary
        //   ∧ a.name = b.name ∧ b.name = c.name) — contrived ternary chain.
        let db = emp_db(&[("ann", 1), ("ann", 2), ("ann", 3), ("bob", 9)]);
        let attr = |atom, col| AttrRef { atom, col };
        let c = DenialConstraint::new(
            "chain",
            vec!["emp".into(), "emp".into(), "emp".into()],
            vec![
                Comparison::attr_eq(attr(0, 0), attr(1, 0)),
                Comparison::attr_eq(attr(1, 0), attr(2, 0)),
                Comparison {
                    op: CmpOp::Lt,
                    left: Term::Attr(attr(0, 1)),
                    right: Term::Attr(attr(1, 1)),
                },
                Comparison {
                    op: CmpOp::Lt,
                    left: Term::Attr(attr(1, 1)),
                    right: Term::Attr(attr(2, 1)),
                },
            ],
        );
        let (g, _) = detect_conflicts(db.catalog(), &[c]).unwrap();
        assert_eq!(g.edge_count(), 1, "only 1<2<3 for ann");
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn detection_on_consistent_instance_is_empty() {
        let db = emp_db(&[("ann", 100), ("bob", 200)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, stats) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.conflicting_vertex_count(), 0);
        assert!(stats.elapsed.as_secs() < 5);
    }

    #[test]
    fn invalid_constraint_errors() {
        let db = emp_db(&[]);
        let bad = DenialConstraint::functional_dependency("emp", &[9], 1);
        assert!(detect_conflicts(db.catalog(), &[bad]).is_err());
    }
}
