//! Conflict detection: build the conflict hypergraph from a database
//! instance and a set of denial constraints.
//!
//! This is the "Conflict Detection" stage of the paper's Figure 1: it runs
//! once per (instance, constraint set) and produces the main-memory
//! hypergraph the Prover consults. Two evaluation strategies:
//!
//! * **FD fast path** — functional dependencies group tuples by the LHS
//!   columns with one hash pass and emit an edge per RHS-disagreeing pair.
//!   Grouping is *zero-copy*: rows are bucketed by the Fx hash of their
//!   LHS projection (no key `Vec<Value>` is built) and candidate pairs
//!   re-verify LHS equality, which also neutralises hash collisions.
//! * **General denials** — atoms are joined left-to-right; whenever the
//!   next atom is linked to an already-bound atom by equality comparisons,
//!   a pre-sized Fx hash index on those columns replaces the nested-loop
//!   scan. Partial assignments bind `(TupleId, &Row)` pairs, so the join
//!   never clones a row.
//!
//! # Shard → merge pipeline
//!
//! Both strategies are decomposed into [`DetectOptions::shards`]
//! deterministic shards executed by a [`crate::parallel`] worker pool:
//!
//! * the FD path partitions tuples by the **high bits of their LHS
//!   hash** (a hash pass over contiguous slot ranges feeds per-shard
//!   bins, so the expensive hashing itself is parallel), and each shard
//!   groups and pair-checks its buckets independently — a whole hash
//!   bucket always lands in exactly one shard;
//! * the general path partitions the **outer atom's tuple-slot range**
//!   into contiguous ranges; the per-atom join indexes are built once
//!   and shared read-only across shards.
//!
//! Each shard emits edges into a private
//! [`crate::hypergraph::EdgeFragment`]; the merge step absorbs fragments
//! **in shard order** into the [`ConflictHypergraph`], whose chained-hash
//! table dedups across shards. Shard decomposition depends only on the
//! data and the shard count — never on the worker count — so edge ids
//! are bit-identical for any `HIPPO_DETECT_THREADS` setting, and
//! [`DetectStats`] counters are exact sums over shards. Detection ends
//! with [`ConflictHypergraph::finalize`], which freezes the vertex→edge
//! adjacency into its compact offset-array form for the prover's reads.
//!
//! The two FD passes (hash, then group-and-check) share a **single**
//! thread scope with a barrier between them ([`parallel::run_fused`]),
//! so each constraint spawns its workers once instead of twice.
//!
//! The FD grouping pass doubles as the builder of the persistent
//! [`FdIndex`] (LHS-hash → tuple ids) that [`crate::hippo::Hippo`] keeps
//! for **incremental redetection**. General denials get the analogous
//! treatment through [`GenIndex`]: the per-atom join indexes (linked
//! columns → tuple ids) are persisted for every *seed orientation* of
//! the constraint, so a delta pass binds the changed tuple first and
//! hash-extends outward — `O(delta × matches)` work, never a rescan of
//! the constraint's outer atom. The `*_delta_*` helpers in this module
//! probe those indexes against just the inserted tuples instead of the
//! whole instance.

use crate::constraint::{Comparison, DenialConstraint, Term};
use crate::hypergraph::{ConflictHypergraph, EdgeFragment, Vertex};
use crate::parallel;
use crate::pred::CmpOp;
use hippo_engine::{Catalog, EngineError, Row, Table, TupleId, Value};
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Default shard count. Fixed (rather than derived from the worker
/// count) so the shard decomposition — and therefore edge ids — never
/// change when `HIPPO_DETECT_THREADS` does.
pub const DEFAULT_SHARDS: usize = 16;

/// Knobs for one detection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectOptions {
    /// Worker threads; `0` = auto (the `HIPPO_DETECT_THREADS`
    /// environment variable if set, else available parallelism). The
    /// thread count never affects the produced graph, only wall-clock.
    pub threads: usize,
    /// Shard count; `0` = auto ([`DEFAULT_SHARDS`]). The *edge id
    /// order* (not the edge set) depends on the shard count for FD
    /// constraints, because hash-range partitioning permutes bucket
    /// visit order.
    pub shards: usize,
}

impl DetectOptions {
    /// Auto shards, explicit thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> DetectOptions {
        DetectOptions { threads, shards: 0 }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            parallel::detect_threads()
        } else {
            self.threads
        }
    }

    fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            DEFAULT_SHARDS
        } else {
            self.shards
        }
    }
}

/// Detection statistics (reported by experiment E4). Under sharding
/// every counter is the exact sum of the per-shard counters, and the
/// totals are independent of both the shard and the thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectStats {
    /// Wall-clock time spent detecting.
    pub elapsed: Duration,
    /// Candidate tuple combinations tested against constraint conditions.
    pub combinations_checked: usize,
    /// Edges produced (before dedup; the hypergraph dedups internally).
    pub edges_emitted: usize,
    /// Shards the run was decomposed into (`0` for an incremental delta
    /// pass, which probes per-tuple instead of sharding the instance).
    pub shards_used: usize,
    /// Did this run take the incremental delta path (see
    /// [`crate::hippo::Hippo::redetect`]) instead of a full detection?
    pub incremental: bool,
}

impl std::fmt::Display for DetectStats {
    /// One-line report, shaped like [`crate::hippo::AnswerStats`]'s:
    /// mode, shard count, exact work counters, wall-clock.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mode={} shards={} combinations={} edges_emitted={} elapsed={:.3}ms",
            if self.incremental {
                "incremental"
            } else {
                "full"
            },
            self.shards_used,
            self.combinations_checked,
            self.edges_emitted,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// Persistent per-FD grouping state: the LHS-hash → tuple-id buckets the
/// sharded FD pass computed anyway, retained so later inserts/deletes
/// can be reconciled in O(bucket) instead of O(instance).
#[derive(Debug, Clone)]
pub(crate) struct FdIndex {
    /// Relation the FD constrains.
    pub rel: String,
    /// LHS column set.
    pub lhs: Vec<usize>,
    /// RHS column.
    pub rhs: usize,
    /// LHS-projection hash → live tuple ids carrying that hash, in
    /// insertion (slot, then arrival) order. Tuples with a NULL LHS
    /// column are absent (they never participate in FD violations).
    pub groups: FxHashMap<u64, Vec<TupleId>>,
}

/// One persisted join index of a general denial: `key_cols` of the
/// indexed atom's relation → live tuple ids carrying that key (NULL keys
/// are absent — they never join). Owned (ids, not row borrows), so it
/// survives inside [`crate::hippo::Hippo`] across database changes and
/// is maintained in O(1) per inserted/deleted tuple.
#[derive(Debug, Clone)]
pub(crate) struct OwnedJoinIndex {
    /// Columns of the indexed atom forming the key.
    pub key_cols: Vec<usize>,
    /// Key values → live tuple ids, in arrival order.
    pub map: FxHashMap<Vec<Value>, Vec<TupleId>>,
}

/// One step of a seed orientation: bind `atom` next, matching the
/// equality links back to already-bound atoms through `index` (an id
/// into [`GenIndex::indexes`]) when links exist, else a table scan.
#[derive(Debug, Clone)]
pub(crate) struct SeedStep {
    /// Atom being bound by this step.
    pub atom: usize,
    /// `(bound atom, bound col, this atom's col)` equality links.
    pub links: Vec<(usize, usize, usize)>,
    /// Persisted join index serving this step (`None` = no links).
    pub index: Option<usize>,
}

/// Persistent delta-join state for one general denial: for every **seed
/// orientation** `p` (the atom position a changed tuple occupies), the
/// step sequence binding the remaining atoms in ascending order, plus
/// the owned join indexes those steps probe. Indexes are deduplicated
/// by `(relation, key columns)`, so orientations share them.
#[derive(Debug, Clone)]
pub(crate) struct GenIndex {
    /// `orientations[p]` binds the remaining atoms after seeding atom `p`.
    pub orientations: Vec<Vec<SeedStep>>,
    /// `(relation name, index)` pairs referenced by the steps.
    pub indexes: Vec<(String, OwnedJoinIndex)>,
}

impl GenIndex {
    /// Register a newly inserted tuple with every index over its relation.
    pub fn insert_tuple(&mut self, table: &str, tid: TupleId, row: &Row) {
        for (rel, ix) in &mut self.indexes {
            if rel != table {
                continue;
            }
            let key: Vec<Value> = ix.key_cols.iter().map(|&c| row[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            ix.map.entry(key).or_default().push(tid);
        }
    }

    /// Remove a deleted tuple (`row` is its content as of deletion) from
    /// every index over its relation.
    pub fn remove_tuple(&mut self, table: &str, tid: TupleId, row: &Row) {
        for (rel, ix) in &mut self.indexes {
            if rel != table {
                continue;
            }
            let key: Vec<Value> = ix.key_cols.iter().map(|&c| row[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(tids) = ix.map.get_mut(&key) {
                tids.retain(|&t| t != tid);
                if tids.is_empty() {
                    ix.map.remove(&key);
                }
            }
        }
    }
}

/// Per-constraint incremental-detection state, parallel to the
/// constraint list: `fd[ci]` for FD constraints (a free by-product of
/// the sharded FD pass), `general[ci]` for everything else. General
/// indexes are **lazily** materialised by the first incremental
/// redetect that needs them — full detection never pays for the owned
/// copies — so `general[ci]` is `None` for FD constraints *and* for
/// general constraints whose index has not been demanded yet.
#[derive(Debug, Clone, Default)]
pub(crate) struct DetectIndex {
    pub fd: Vec<Option<FdIndex>>,
    pub general: Vec<Option<GenIndex>>,
}

/// Build the conflict hypergraph for `constraints` over the catalog,
/// with default [`DetectOptions`].
pub fn detect_conflicts(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
) -> Result<(ConflictHypergraph, DetectStats), EngineError> {
    detect_conflicts_with(catalog, constraints, &DetectOptions::default())
}

/// Build the conflict hypergraph with explicit sharding/threading knobs.
pub fn detect_conflicts_with(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
    opts: &DetectOptions,
) -> Result<(ConflictHypergraph, DetectStats), EngineError> {
    let start = Instant::now();
    let gov = crate::budget::Governance::default();
    let (mut g, mut stats, _) = detect_core(catalog, constraints, opts, false, &gov)?;
    // Compact adjacency into CSR form: construction is over, the prover
    // only reads from here on.
    g.finalize();
    stats.elapsed = start.elapsed();
    Ok((g, stats))
}

/// Like [`detect_with_index`] but leaves the graph un-finalized, for
/// callers that will add more edges (foreign-key orphan edges) before
/// freezing the adjacency themselves — keeping the [`DetectIndex`] (and
/// with it the incremental redetection path) available under foreign
/// keys.
pub(crate) fn detect_unfinalized_with_index(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
    gov: &crate::budget::Governance,
) -> Result<(ConflictHypergraph, DetectStats, DetectIndex), EngineError> {
    let (g, stats, index) =
        detect_core(catalog, constraints, &DetectOptions::default(), true, gov)?;
    Ok((g, stats, index.expect("index requested")))
}

/// Full detection that additionally returns the [`DetectIndex`] the
/// incremental redetection path needs (finalized graph).
///
/// Detection under governance is always **strict**: a budget trip here
/// surfaces as an error even when the caller is in degraded mode,
/// because an incomplete conflict hypergraph would make the prover
/// *unsound* rather than merely incomplete.
pub(crate) fn detect_with_index(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
    opts: &DetectOptions,
    gov: &crate::budget::Governance,
) -> Result<(ConflictHypergraph, DetectStats, DetectIndex), EngineError> {
    let start = Instant::now();
    let (mut g, mut stats, index) = detect_core(catalog, constraints, opts, true, gov)?;
    g.finalize();
    stats.elapsed = start.elapsed();
    Ok((g, stats, index.expect("index requested")))
}

fn detect_core(
    catalog: &Catalog,
    constraints: &[DenialConstraint],
    opts: &DetectOptions,
    want_index: bool,
    gov: &crate::budget::Governance,
) -> Result<(ConflictHypergraph, DetectStats, Option<DetectIndex>), EngineError> {
    let start = Instant::now();
    let threads = opts.resolved_threads();
    let shards = opts.resolved_shards();
    let mut g = ConflictHypergraph::new();
    let mut stats = DetectStats {
        shards_used: shards,
        ..DetectStats::default()
    };
    for c in constraints {
        c.validate(catalog)?;
    }
    let mut index = want_index.then(DetectIndex::default);
    for (ci, c) in constraints.iter().enumerate() {
        if let Some((rel, lhs, rhs)) = as_fd(c) {
            let groups = detect_fd(
                catalog, &mut g, ci, &rel, &lhs, rhs, threads, shards, want_index, &mut stats, gov,
            )?;
            if let Some(ix) = index.as_mut() {
                ix.fd.push(Some(FdIndex {
                    rel,
                    lhs,
                    rhs,
                    groups: groups.unwrap_or_default(),
                }));
                ix.general.push(None);
            }
        } else {
            detect_general(catalog, &mut g, ci, c, threads, shards, &mut stats, gov)?;
            if let Some(ix) = index.as_mut() {
                ix.fd.push(None);
                // Built lazily by the first incremental redetect: a
                // read-only Hippo never pays for the owned indexes.
                ix.general.push(None);
            }
        }
    }
    stats.elapsed = start.elapsed();
    Ok((g, stats, index))
}

/// Recognise the FD pattern: two atoms over the same relation, condition =
/// equalities on L columns plus exactly one `<>` on the same column of
/// both atoms.
fn as_fd(c: &DenialConstraint) -> Option<(String, Vec<usize>, usize)> {
    if c.atoms.len() != 2 || c.atoms[0] != c.atoms[1] {
        return None;
    }
    let mut lhs = Vec::new();
    let mut rhs = None;
    for cmp in &c.condition {
        match cmp {
            Comparison {
                op: CmpOp::Eq,
                left: Term::Attr(a),
                right: Term::Attr(b),
            } if a.atom != b.atom && a.col == b.col => {
                lhs.push(a.col);
            }
            Comparison {
                op: CmpOp::Neq,
                left: Term::Attr(a),
                right: Term::Attr(b),
            } if a.atom != b.atom && a.col == b.col && rhs.is_none() => {
                rhs = Some(a.col);
            }
            _ => return None,
        }
    }
    rhs.map(|r| (c.atoms[0].clone(), lhs, r))
}

/// Fx hash of a row's LHS projection; `None` when any LHS column is NULL
/// (SQL comparison with NULL is unknown, so such rows never violate).
#[inline]
fn lhs_hash(row: &Row, lhs: &[usize]) -> Option<u64> {
    let mut h = FxHasher::default();
    for &c in lhs {
        if row[c].is_null() {
            return None;
        }
        row[c].hash(&mut h);
    }
    Some(h.finish())
}

/// Shard of a hash: multiply-shift on the high 32 bits, so the shard
/// choice is independent of the low bits the grouping hash map consumes.
#[inline]
fn shard_of(hash: u64, shards: usize) -> usize {
    (((hash >> 32) * shards as u64) >> 32) as usize
}

/// `(lhs_hash, tuple, row)` triple binned to a shard by the FD hash pass.
type HashedTuple<'a> = (u64, TupleId, &'a Row);

/// Hash-join index of one atom: linked-column key → matching tuples.
type JoinIndex<'a> = FxHashMap<Vec<Value>, Vec<(TupleId, &'a Row)>>;

/// One FD shard's output.
struct FdShardOut<'a> {
    frag: EdgeFragment<'a>,
    combinations: usize,
    emitted: usize,
    groups: FxHashMap<u64, Vec<(TupleId, &'a Row)>>,
}

/// Sharded FD fast path. Returns the merged LHS-hash → tuple-id index
/// when `want_index` is set.
#[allow(clippy::too_many_arguments)]
fn detect_fd(
    catalog: &Catalog,
    g: &mut ConflictHypergraph,
    ci: usize,
    rel: &str,
    lhs: &[usize],
    rhs: usize,
    threads: usize,
    shards: usize,
    want_index: bool,
    stats: &mut DetectStats,
    gov: &crate::budget::Governance,
) -> Result<Option<FxHashMap<u64, Vec<TupleId>>>, EngineError> {
    let table = catalog.table(rel)?;
    let ri = g.intern(rel);
    // Both phases share ONE thread scope (a barrier separates them), so
    // each FD constraint spawns its workers once instead of twice.
    //
    // Phase A — parallel hash pass: contiguous slot-range chunks, each
    // binning `(hash, tid, row)` by shard. Concatenating chunk bins in
    // chunk order restores slot order, so the chunk count (= thread
    // count) leaves the per-shard tuple sequence unchanged.
    //
    // Phase B — per shard: group by full hash (zero-clone, keyed by the
    // hash itself; pairs re-verify LHS equality, which also neutralises
    // collisions) and emit an edge per RHS-disagreeing same-LHS pair.
    let chunks = parallel::split_ranges(table.slot_count(), threads);
    // Vectorized hash pass: when the table has a column store, each
    // chunk hashes the LHS projection straight off the contiguous typed
    // column slices (`ColumnStore::hash_cols` writes the exact byte
    // sequence `Value::hash` produces, and store positions follow slot
    // order), so the per-shard `(hash, tid, row)` sequences — and with
    // them every downstream stat and edge — are bit-identical to the
    // slot-loop fallback below.
    let store = if hippo_engine::columnar_enabled() {
        table.column_store()
    } else {
        None
    };
    type FdShardRes<'a> = Result<FdShardOut<'a>, EngineError>;
    let (_bins, outs): (Vec<Vec<Vec<HashedTuple>>>, Vec<FdShardRes>) = parallel::run_fused(
        chunks.len(),
        shards,
        threads,
        |i| {
            let (lo, hi) = chunks[i];
            let mut by_shard: Vec<Vec<HashedTuple>> = (0..shards).map(|_| Vec::new()).collect();
            if let Some(store) = store {
                let range = store.tid_range(lo as u32, hi as u32);
                // NULL LHS components never violate: `for_each_hash`
                // skips those rows, exactly like `lhs_hash` below.
                store.for_each_hash::<FxHasher, _>(range, lhs, |pos, h| {
                    let tid = TupleId(store.tid(pos));
                    let row = table.get(tid).expect("column store positions are live");
                    by_shard[shard_of(h, shards)].push((h, tid, row));
                });
                return by_shard;
            }
            for slot in lo..hi {
                let tid = TupleId(slot as u32);
                let Some(row) = table.get(tid) else { continue };
                let Some(h) = lhs_hash(row, lhs) else {
                    continue;
                };
                by_shard[shard_of(h, shards)].push((h, tid, row));
            }
            by_shard
        },
        |s, bins| {
            // Governance: checkpoint at shard start (fault-injection
            // point `("detect", s)`), strided budget ticks in the pair
            // loop. Trips surface as errors — detection is always
            // strict (see `detect_with_index`).
            gov.checkpoint("detect", s)?;
            let n: usize = bins.iter().map(|chunk| chunk[s].len()).sum();
            let mut groups: FxHashMap<u64, Vec<(TupleId, &Row)>> =
                FxHashMap::with_capacity_and_hasher(n, Default::default());
            for chunk in bins {
                for &(h, tid, row) in &chunk[s] {
                    groups.entry(h).or_default().push((tid, row));
                }
            }
            let mut frag = EdgeFragment::new();
            let mut combinations = 0;
            let mut emitted = 0;
            let mut work = 0u32;
            for group in groups.values() {
                if group.len() < 2 {
                    continue;
                }
                for (i, &(tid_a, row_a)) in group.iter().enumerate() {
                    for &(tid_b, row_b) in group.iter().skip(i + 1) {
                        combinations += 1;
                        gov.tick(&mut work, "detect")?;
                        if lhs.iter().any(|&c| row_a[c] != row_b[c]) {
                            continue; // hash collision, not a real group-mate
                        }
                        if row_a[rhs].sql_eq(&row_b[rhs]) == Some(false) {
                            emitted += 1;
                            frag.push_edge(
                                &[
                                    Vertex {
                                        rel: ri,
                                        tid: tid_a,
                                    },
                                    Vertex {
                                        rel: ri,
                                        tid: tid_b,
                                    },
                                ],
                                &[row_a, row_b],
                                ci,
                            );
                        }
                    }
                }
            }
            Ok(FdShardOut {
                frag,
                combinations,
                emitted,
                groups,
            })
        },
    );
    // Deterministic merge: shard order, exact stat sums. Shards
    // partition the hash space, so index buckets never collide.
    let mut index =
        want_index.then(|| FxHashMap::with_capacity_and_hasher(table.len(), Default::default()));
    for out in outs {
        let out = out?;
        stats.combinations_checked += out.combinations;
        stats.edges_emitted += out.emitted;
        g.absorb_fragment(&out.frag);
        if let Some(ix) = index.as_mut() {
            for (h, members) in out.groups {
                ix.insert(h, members.into_iter().map(|(tid, _)| tid).collect());
            }
        }
    }
    Ok(index)
}

/// One join step of a general denial: equality links back to bound atoms
/// and, when links exist, a shared hash index on the linked columns.
struct GenAtomStep<'a> {
    links: Vec<(usize, usize, usize)>, // (bound_atom, bound_col, new_col)
    index: Option<JoinIndex<'a>>,
}

/// Resolve tables and build the per-atom join steps (indexes are built
/// once, then shared read-only across all shards).
fn build_general_plan<'a>(
    catalog: &'a Catalog,
    c: &DenialConstraint,
) -> Result<(Vec<&'a Table>, Vec<GenAtomStep<'a>>), EngineError> {
    let tables: Vec<&Table> = c
        .atoms
        .iter()
        .map(|r| catalog.table(r))
        .collect::<Result<_, _>>()?;
    let mut steps = Vec::with_capacity(c.atoms.len());
    for (atom_idx, &table) in tables.iter().enumerate() {
        let mut links: Vec<(usize, usize, usize)> = Vec::new();
        for prev in 0..atom_idx {
            for (pc, nc) in c.equalities_between(prev, atom_idx) {
                links.push((prev, pc, nc));
            }
        }
        let index = if links.is_empty() {
            None
        } else {
            let key_cols: Vec<usize> = links.iter().map(|&(_, _, nc)| nc).collect();
            let mut ix: JoinIndex =
                FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
            for (tid, row) in table.iter() {
                let key: Vec<Value> = key_cols.iter().map(|&cc| row[cc].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                ix.entry(key).or_default().push((tid, row));
            }
            Some(ix)
        };
        steps.push(GenAtomStep { links, index });
    }
    Ok((tables, steps))
}

/// Run the left-to-right join from a seed of outer-atom rows, emitting
/// every full satisfying assignment as an edge into `frag`. Returns
/// `(combinations, emitted)`. (Delta passes no longer go through here —
/// they seed from the changed tuples via [`general_delta_insert`].)
#[allow(clippy::too_many_arguments)]
fn run_general_join<'a>(
    c: &DenialConstraint,
    rels: &[u32],
    tables: &[&'a Table],
    steps: &[GenAtomStep<'a>],
    ci: usize,
    outer: &[(TupleId, &'a Row)],
    frag: &mut EdgeFragment<'a>,
    gov: &crate::budget::Governance,
) -> Result<(usize, usize), EngineError> {
    let mut combinations = 0usize;
    let mut emitted = 0usize;
    let mut work = 0u32;
    // Bind atoms left to right; each partial assignment is a prefix of
    // (tuple id, row) bindings. Atom 0 is seeded from `outer`.
    let mut current: Vec<Vec<(TupleId, &Row)>> = Vec::new();
    for &(tid, row) in outer {
        combinations += 1;
        gov.tick(&mut work, "detect")?;
        let assign = vec![(tid, row)];
        if partial_condition_ok(c, &assign) {
            current.push(assign);
        }
    }
    for (atom_idx, step) in steps.iter().enumerate().skip(1) {
        let mut next: Vec<Vec<(TupleId, &Row)>> = Vec::new();
        if let Some(ix) = &step.index {
            // Hash-join extension on the linked columns.
            for assign in &current {
                let key: Vec<Value> = step
                    .links
                    .iter()
                    .map(|&(prev, pc, _)| assign[prev].1[pc].clone())
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = ix.get(&key) {
                    for &(tid, row) in matches {
                        combinations += 1;
                        gov.tick(&mut work, "detect")?;
                        let mut a = assign.clone();
                        a.push((tid, row));
                        if partial_condition_ok(c, &a) {
                            next.push(a);
                        }
                    }
                }
            }
        } else {
            // Nested-loop extension.
            for assign in &current {
                for (tid, row) in tables[atom_idx].iter() {
                    combinations += 1;
                    gov.tick(&mut work, "detect")?;
                    let mut a = assign.clone();
                    a.push((tid, row));
                    if partial_condition_ok(c, &a) {
                        next.push(a);
                    }
                }
            }
        }
        current = next;
    }
    for assign in current {
        // Full assignment satisfying the condition = violation.
        let rows: Vec<&Row> = assign.iter().map(|&(_, r)| r).collect();
        debug_assert!(c.condition_holds(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>()));
        emitted += 1;
        let vertices: Vec<Vertex> = assign
            .iter()
            .enumerate()
            .map(|(i, &(tid, _))| Vertex { rel: rels[i], tid })
            .collect();
        frag.push_edge(&vertices, &rows, ci);
    }
    Ok((combinations, emitted))
}

/// Sharded general-denial detection: contiguous outer-atom slot ranges,
/// one fragment per range, merged in range order (which reproduces the
/// sequential assignment enumeration order exactly, for any shard
/// count).
#[allow(clippy::too_many_arguments)]
fn detect_general(
    catalog: &Catalog,
    g: &mut ConflictHypergraph,
    ci: usize,
    c: &DenialConstraint,
    threads: usize,
    shards: usize,
    stats: &mut DetectStats,
    gov: &crate::budget::Governance,
) -> Result<(), EngineError> {
    let rels: Vec<u32> = c.atoms.iter().map(|r| g.intern(r)).collect();
    let (tables, steps) = build_general_plan(catalog, c)?;
    let outer_table = tables[0];
    let ranges = parallel::split_ranges(outer_table.slot_count(), shards);
    type GenShardRes<'a> = Result<(EdgeFragment<'a>, usize, usize), EngineError>;
    let outs: Vec<GenShardRes> = parallel::run_indexed(ranges.len(), threads, |i| {
        gov.checkpoint("detect", i)?;
        let (lo, hi) = ranges[i];
        let outer: Vec<(TupleId, &Row)> = (lo..hi)
            .filter_map(|slot| {
                let tid = TupleId(slot as u32);
                outer_table.get(tid).map(|row| (tid, row))
            })
            .collect();
        let mut frag = EdgeFragment::new();
        let (combinations, emitted) =
            run_general_join(c, &rels, &tables, &steps, ci, &outer, &mut frag, gov)?;
        Ok((frag, combinations, emitted))
    });
    for out in outs {
        let (frag, combinations, emitted) = out?;
        stats.combinations_checked += combinations;
        stats.edges_emitted += emitted;
        g.absorb_fragment(&frag);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Incremental (delta) detection — used by `Hippo::redetect`
// ---------------------------------------------------------------------------

/// Probe freshly inserted tuples against a persistent FD index: each new
/// tuple is pair-checked against its LHS-hash bucket only, then appended
/// to the bucket (so new-new pairs within one batch are found too).
pub(crate) fn fd_delta_insert(
    catalog: &Catalog,
    g: &mut ConflictHypergraph,
    ci: usize,
    ix: &mut FdIndex,
    tids: &[TupleId],
    stats: &mut DetectStats,
) -> Result<(), EngineError> {
    let table = catalog.table(&ix.rel)?;
    let ri = g.intern(&ix.rel);
    for &tid in tids {
        let Some(row) = table.get(tid) else { continue };
        let Some(h) = lhs_hash(row, &ix.lhs) else {
            continue;
        };
        let members = ix.groups.entry(h).or_default();
        for &tid_b in members.iter() {
            let Some(row_b) = table.get(tid_b) else {
                continue;
            };
            stats.combinations_checked += 1;
            if ix.lhs.iter().any(|&c| row[c] != row_b[c]) {
                continue; // hash collision, not a real group-mate
            }
            if row[ix.rhs].sql_eq(&row_b[ix.rhs]) == Some(false) {
                stats.edges_emitted += 1;
                g.add_edge(
                    &[
                        Vertex { rel: ri, tid },
                        Vertex {
                            rel: ri,
                            tid: tid_b,
                        },
                    ],
                    &[row, row_b],
                    ci,
                );
            }
        }
        members.push(tid);
    }
    Ok(())
}

/// Remove a deleted tuple from a persistent FD index (`row` is the
/// tuple's content as of deletion; a NULL-LHS row was never indexed).
pub(crate) fn fd_delta_delete(ix: &mut FdIndex, row: &Row, tid: TupleId) {
    if let Some(h) = lhs_hash(row, &ix.lhs) {
        if let Some(members) = ix.groups.get_mut(&h) {
            members.retain(|&t| t != tid);
            if members.is_empty() {
                ix.groups.remove(&h);
            }
        }
    }
}

/// Build the persistent [`GenIndex`] for a general denial: the seed
/// orientations plus their owned join indexes. Indexes keyed by the same
/// `(relation, key columns)` pair are built once and shared.
pub(crate) fn build_gen_index(
    catalog: &Catalog,
    c: &DenialConstraint,
) -> Result<GenIndex, EngineError> {
    let n = c.atoms.len();
    let mut gix = GenIndex {
        orientations: Vec::with_capacity(n),
        indexes: Vec::new(),
    };
    let mut by_key: FxHashMap<(String, Vec<usize>), usize> = FxHashMap::default();
    for p in 0..n {
        let mut bound: Vec<usize> = vec![p];
        let mut steps = Vec::new();
        for q in 0..n {
            if q == p {
                continue;
            }
            let mut links: Vec<(usize, usize, usize)> = Vec::new();
            for &b in &bound {
                for (bc, qc) in c.equalities_between(b, q) {
                    links.push((b, bc, qc));
                }
            }
            let index = if links.is_empty() {
                None
            } else {
                let key_cols: Vec<usize> = links.iter().map(|&(_, _, qc)| qc).collect();
                let slot = match by_key.entry((c.atoms[q].clone(), key_cols.clone())) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let table = catalog.table(&c.atoms[q])?;
                        let mut map: FxHashMap<Vec<Value>, Vec<TupleId>> =
                            FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
                        for (tid, row) in table.iter() {
                            let key: Vec<Value> =
                                key_cols.iter().map(|&cc| row[cc].clone()).collect();
                            if key.iter().any(Value::is_null) {
                                continue;
                            }
                            map.entry(key).or_default().push(tid);
                        }
                        let id = gix.indexes.len();
                        gix.indexes
                            .push((c.atoms[q].clone(), OwnedJoinIndex { key_cols, map }));
                        e.insert(id);
                        id
                    }
                };
                Some(slot)
            };
            steps.push(SeedStep {
                atom: q,
                links,
                index,
            });
            bound.push(q);
        }
        gix.orientations.push(steps);
    }
    Ok(gix)
}

/// Delta-detect a general denial after inserts, **seeded from the
/// changed tuples**: for every atom position `p` whose relation received
/// new tuples, bind each new tuple at `p` first, then extend to the
/// remaining atoms through the persisted [`GenIndex`] join indexes (or
/// a scan for link-free atoms). Work is `O(delta × join matches)` — the
/// constraint's outer atom is never rescanned. Combinations where
/// several new tuples occupy different positions are found more than
/// once; the graph's dedup collapses them.
pub(crate) fn general_delta_insert(
    catalog: &Catalog,
    g: &mut ConflictHypergraph,
    ci: usize,
    c: &DenialConstraint,
    ix: &GenIndex,
    deltas: &FxHashMap<String, Vec<TupleId>>,
    stats: &mut DetectStats,
) -> Result<(), EngineError> {
    if !c
        .atoms
        .iter()
        .any(|a| deltas.get(a).is_some_and(|d| !d.is_empty()))
    {
        return Ok(());
    }
    let rels: Vec<u32> = c.atoms.iter().map(|r| g.intern(r)).collect();
    let tables: Vec<&Table> = c
        .atoms
        .iter()
        .map(|r| catalog.table(r))
        .collect::<Result<_, _>>()?;
    let mut bindings: Vec<Option<(TupleId, &Row)>> = vec![None; c.atoms.len()];
    for p in 0..c.atoms.len() {
        let Some(delta) = deltas.get(&c.atoms[p]) else {
            continue;
        };
        for &tid in delta {
            let Some(row) = tables[p].get(tid) else {
                continue;
            };
            stats.combinations_checked += 1;
            bindings[p] = Some((tid, row));
            if sparse_condition_ok(c, &bindings) {
                seed_extend(c, &rels, &tables, ix, p, 0, &mut bindings, ci, g, stats);
            }
            bindings[p] = None;
        }
    }
    Ok(())
}

/// Recursive extension of a seeded partial assignment along orientation
/// `p`'s steps; emits an edge for every full satisfying assignment.
#[allow(clippy::too_many_arguments)]
fn seed_extend<'a>(
    c: &DenialConstraint,
    rels: &[u32],
    tables: &[&'a Table],
    ix: &GenIndex,
    p: usize,
    step_i: usize,
    bindings: &mut Vec<Option<(TupleId, &'a Row)>>,
    ci: usize,
    g: &mut ConflictHypergraph,
    stats: &mut DetectStats,
) {
    let steps = &ix.orientations[p];
    if step_i == steps.len() {
        // Full assignment satisfying the condition = violation.
        let rows: Vec<&Row> = bindings.iter().map(|b| b.expect("all bound").1).collect();
        debug_assert!(c.condition_holds(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>()));
        let vertices: Vec<Vertex> = bindings
            .iter()
            .enumerate()
            .map(|(i, b)| Vertex {
                rel: rels[i],
                tid: b.expect("all bound").0,
            })
            .collect();
        stats.edges_emitted += 1;
        g.add_edge(&vertices, &rows, ci);
        return;
    }
    let step = &steps[step_i];
    let try_tuple = |tid: TupleId,
                     row: &'a Row,
                     bindings: &mut Vec<Option<(TupleId, &'a Row)>>,
                     g: &mut ConflictHypergraph,
                     stats: &mut DetectStats| {
        stats.combinations_checked += 1;
        bindings[step.atom] = Some((tid, row));
        if sparse_condition_ok(c, bindings) {
            seed_extend(c, rels, tables, ix, p, step_i + 1, bindings, ci, g, stats);
        }
        bindings[step.atom] = None;
    };
    match step.index {
        Some(id) => {
            // Hash-extension on the persisted index for the linked columns.
            let (_, jix) = &ix.indexes[id];
            let key: Vec<Value> = step
                .links
                .iter()
                .map(|&(b, bc, _)| bindings[b].expect("link to bound atom").1[bc].clone())
                .collect();
            if key.iter().any(Value::is_null) {
                return;
            }
            if let Some(tids) = jix.map.get(&key) {
                // The index is maintained eagerly, but guard against a
                // tombstoned slot anyway.
                for &tid in tids {
                    let Some(row) = tables[step.atom].get(tid) else {
                        continue;
                    };
                    try_tuple(tid, row, bindings, g, stats);
                }
            }
        }
        None => {
            // No equality links to any bound atom: scan (matches the full
            // detection path for cartesian constraints).
            for (tid, row) in tables[step.atom].iter() {
                try_tuple(tid, row, bindings, g, stats);
            }
        }
    }
}

/// Check the comparisons whose atoms are all bound in a **sparse**
/// assignment (any subset of atoms may be bound, in any order); used to
/// prune seeded partial assignments early. Borrow-only.
fn sparse_condition_ok(c: &DenialConstraint, bindings: &[Option<(TupleId, &Row)>]) -> bool {
    // Outer None = atom not bound yet (skip); inner Option = value.
    fn val<'t>(
        t: &'t Term,
        bindings: &'t [Option<(TupleId, &'t Row)>],
    ) -> Option<Option<&'t Value>> {
        match t {
            Term::Attr(a) => bindings[a.atom].map(|(_, row)| row.get(a.col)),
            Term::Const(v) => Some(Some(v)),
        }
    }
    c.condition.iter().all(|cmp| {
        match (val(&cmp.left, bindings), val(&cmp.right, bindings)) {
            (Some(Some(l)), Some(Some(r))) => match l.sql_cmp(r) {
                Some(ord) => cmp.op.test(ord),
                None => false,
            },
            (Some(None), _) | (_, Some(None)) => false, // missing column
            _ => true,                                  // not fully bound yet
        }
    })
}

/// Check the comparisons whose atoms are all bound so far; used to prune
/// partial assignments early. Borrow-only: no value is cloned.
fn partial_condition_ok(c: &DenialConstraint, assign: &[(TupleId, &Row)]) -> bool {
    // Outer None = atom not bound yet (skip); inner Option = value.
    fn val<'t>(t: &'t Term, assign: &'t [(TupleId, &'t Row)]) -> Option<Option<&'t Value>> {
        match t {
            Term::Attr(a) => {
                if a.atom >= assign.len() {
                    None
                } else {
                    Some(assign[a.atom].1.get(a.col))
                }
            }
            Term::Const(v) => Some(Some(v)),
        }
    }
    c.condition.iter().all(|cmp| {
        match (val(&cmp.left, assign), val(&cmp.right, assign)) {
            (Some(Some(l)), Some(Some(r))) => match l.sql_cmp(r) {
                Some(ord) => cmp.op.test(ord),
                None => false,
            },
            (Some(None), _) | (_, Some(None)) => false, // missing column
            _ => true,                                  // not fully bound yet
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::AttrRef;
    use hippo_engine::{Column, DataType, Database, TableSchema};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn fd_detects_pairs() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, stats) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.conflicting_vertex_count(), 2);
        assert_eq!(stats.edges_emitted, 1);
        assert_eq!(stats.shards_used, DEFAULT_SHARDS);
        assert!(!stats.incremental);
    }

    #[test]
    fn fd_group_of_three_distinct_values_gives_three_edges() {
        let db = emp_db(&[("ann", 1), ("ann", 2), ("ann", 3)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, _) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 3, "all pairs violate");
    }

    #[test]
    fn fd_duplicate_rhs_values_do_not_conflict() {
        let db = emp_db(&[("ann", 100), ("ann", 100)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, _) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fd_null_lhs_is_ignored() {
        let mut db = emp_db(&[("ann", 100)]);
        db.insert_rows(
            "emp",
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap();
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, _) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn check_constraint_gives_singleton_edges() {
        let db = emp_db(&[("ann", -5), ("bob", 10), ("cyd", -1)]);
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let (g, _) = detect_conflicts(db.catalog(), &[chk]).unwrap();
        assert_eq!(g.edge_count(), 2);
        for (_, e) in g.edges() {
            assert_eq!(e.len(), 1, "CHECK denials produce singleton edges");
        }
    }

    #[test]
    fn exclusion_across_relations() {
        let mut db = emp_db(&[("ann", 100), ("bob", 200)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "contractor",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("rate", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "contractor",
            vec![
                vec![Value::text("ann"), Value::Int(50)],
                vec![Value::text("cyd"), Value::Int(60)],
            ],
        )
        .unwrap();
        let ex = DenialConstraint::exclusion("emp", "contractor", &[(0, 0)]);
        let (g, _) = detect_conflicts(db.catalog(), &[ex]).unwrap();
        assert_eq!(g.edge_count(), 1, "only ann is in both");
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.len(), 2);
        assert_ne!(e[0].rel, e[1].rel);
    }

    #[test]
    fn multiple_constraints_combine() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", -1)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let (g, _) = detect_conflicts(db.catalog(), &[fd.clone(), chk]).unwrap();
        assert_eq!(g.edge_count(), 2);
        // Constraint attribution is preserved.
        let by_constraint: Vec<usize> = g.edges().map(|(id, _)| g.edge_constraint(id)).collect();
        assert!(by_constraint.contains(&0));
        assert!(by_constraint.contains(&1));
        let _ = fd;
    }

    #[test]
    fn general_three_atom_denial() {
        // ¬(emp(a) ∧ emp(b) ∧ emp(c) ∧ a.salary < b.salary ∧ b.salary < c.salary
        //   ∧ a.name = b.name ∧ b.name = c.name) — contrived ternary chain.
        let db = emp_db(&[("ann", 1), ("ann", 2), ("ann", 3), ("bob", 9)]);
        let attr = |atom, col| AttrRef { atom, col };
        let c = DenialConstraint::new(
            "chain",
            vec!["emp".into(), "emp".into(), "emp".into()],
            vec![
                Comparison::attr_eq(attr(0, 0), attr(1, 0)),
                Comparison::attr_eq(attr(1, 0), attr(2, 0)),
                Comparison {
                    op: CmpOp::Lt,
                    left: Term::Attr(attr(0, 1)),
                    right: Term::Attr(attr(1, 1)),
                },
                Comparison {
                    op: CmpOp::Lt,
                    left: Term::Attr(attr(1, 1)),
                    right: Term::Attr(attr(2, 1)),
                },
            ],
        );
        let (g, _) = detect_conflicts(db.catalog(), &[c]).unwrap();
        assert_eq!(g.edge_count(), 1, "only 1<2<3 for ann");
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn detection_on_consistent_instance_is_empty() {
        let db = emp_db(&[("ann", 100), ("bob", 200)]);
        let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
        let (g, stats) = detect_conflicts(db.catalog(), &[fd]).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.conflicting_vertex_count(), 0);
        assert!(stats.elapsed.as_secs() < 5);
    }

    #[test]
    fn invalid_constraint_errors() {
        let db = emp_db(&[]);
        let bad = DenialConstraint::functional_dependency("emp", &[9], 1);
        assert!(detect_conflicts(db.catalog(), &[bad]).is_err());
    }

    /// Same shard count, different worker counts → bit-identical graphs
    /// (edge ids included) and identical stat totals.
    #[test]
    fn thread_count_never_changes_output() {
        let mut db = emp_db(&[
            ("ann", 100),
            ("ann", 200),
            ("ann", 300),
            ("bob", 1),
            ("bob", 2),
            ("cyd", 7),
            ("dee", -3),
        ]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "contractor",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("rate", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "contractor",
            vec![
                vec![Value::text("ann"), Value::Int(50)],
                vec![Value::text("bob"), Value::Int(60)],
            ],
        )
        .unwrap();
        let constraints = [
            DenialConstraint::functional_dependency("emp", &[0], 1),
            DenialConstraint::exclusion("emp", "contractor", &[(0, 0)]),
            DenialConstraint::check(
                "emp",
                vec![Comparison {
                    op: CmpOp::Lt,
                    left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                    right: Term::Const(Value::Int(0)),
                }],
            ),
        ];
        let (g1, s1) = detect_conflicts_with(
            db.catalog(),
            &constraints,
            &DetectOptions {
                threads: 1,
                shards: 0,
            },
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let (g, s) = detect_conflicts_with(
                db.catalog(),
                &constraints,
                &DetectOptions { threads, shards: 0 },
            )
            .unwrap();
            assert_eq!(g.edge_count(), g1.edge_count());
            for (id, e) in g.edges() {
                assert_eq!(e, g1.edge(id), "edge {id} differs at threads={threads}");
                assert_eq!(g.edge_constraint(id), g1.edge_constraint(id));
            }
            assert_eq!(s.combinations_checked, s1.combinations_checked);
            assert_eq!(s.edges_emitted, s1.edges_emitted);
            assert_eq!(s.shards_used, s1.shards_used);
        }
    }

    /// Different shard counts may permute FD edge ids but must agree on
    /// the edge *set* and on stat totals.
    #[test]
    fn shard_count_preserves_edge_set_and_stats() {
        let db = emp_db(&[
            ("ann", 100),
            ("ann", 200),
            ("bob", 1),
            ("bob", 2),
            ("bob", 3),
            ("cyd", 7),
        ]);
        let constraints = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let canonical = |g: &ConflictHypergraph| {
            let mut edges: Vec<(usize, Vec<Vertex>)> = g
                .edges()
                .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
                .collect();
            edges.sort();
            edges
        };
        let (g1, s1) = detect_conflicts_with(
            db.catalog(),
            &constraints,
            &DetectOptions {
                threads: 1,
                shards: 1,
            },
        )
        .unwrap();
        for shards in [2usize, 3, 7, 16] {
            let (g, s) = detect_conflicts_with(
                db.catalog(),
                &constraints,
                &DetectOptions { threads: 2, shards },
            )
            .unwrap();
            assert_eq!(canonical(&g), canonical(&g1), "shards={shards}");
            assert_eq!(s.combinations_checked, s1.combinations_checked);
            assert_eq!(s.edges_emitted, s1.edges_emitted);
            assert_eq!(s.shards_used, shards);
        }
    }
}
