//! Repairs as maximal independent sets of the conflict hypergraph.
//!
//! A **repair** keeps every non-conflicting tuple and a maximal independent
//! subset of the conflicting ones. Enumerating repairs is exponential in
//! the worst case — this module exists for ground truth in tests and for
//! experiment E7, which *measures* that blow-up; Hippo itself never calls
//! it when answering queries.

use crate::hypergraph::{ConflictHypergraph, Vertex};
use hippo_engine::{Catalog, Row};
use std::collections::{BTreeSet, HashSet};

/// A repair, represented by the set of **conflicting vertices it keeps**
/// (all non-conflicting tuples are implicitly kept).
pub type RepairKept = BTreeSet<Vertex>;

/// Enumerate all repairs (as kept-sets over conflicting vertices).
///
/// `limit` caps the number of repairs produced (`None` = unbounded); the
/// experiments use the cap to keep E7 runs bounded.
pub fn enumerate_repairs(g: &ConflictHypergraph, limit: Option<usize>) -> Vec<RepairKept> {
    let vertices: Vec<Vertex> = {
        let mut v: Vec<Vertex> = g.conflicting_vertices().collect();
        v.sort();
        v
    };
    let mut results: HashSet<RepairKept> = HashSet::new();
    let mut kept: BTreeSet<Vertex> = vertices.iter().copied().collect();
    let mut removed: BTreeSet<Vertex> = BTreeSet::new();
    recurse(g, &mut kept, &mut removed, &mut results, limit);
    let mut out: Vec<RepairKept> = results.into_iter().collect();
    out.sort();
    out
}

fn recurse(
    g: &ConflictHypergraph,
    kept: &mut BTreeSet<Vertex>,
    removed: &mut BTreeSet<Vertex>,
    results: &mut HashSet<RepairKept>,
    limit: Option<usize>,
) {
    if let Some(l) = limit {
        if results.len() >= l {
            return;
        }
    }
    // Find a violated edge (fully kept).
    let violated = g
        .edges()
        .find(|(_, e)| e.iter().all(|v| kept.contains(v)))
        .map(|(id, _)| id);
    match violated {
        None => {
            // Independent. Check maximality: every removed vertex must be
            // blocked (some edge all of whose other vertices are kept).
            let kept_set: HashSet<Vertex> = kept.iter().copied().collect();
            let maximal = removed.iter().all(|&v| g.is_blocked_by(v, &kept_set));
            if maximal {
                results.insert(kept.clone());
            }
        }
        Some(eid) => {
            let edge: Vec<Vertex> = g.edge(eid).to_vec();
            for v in edge {
                kept.remove(&v);
                removed.insert(v);
                recurse(g, kept, removed, results, limit);
                removed.remove(&v);
                kept.insert(v);
            }
        }
    }
}

/// Count repairs without keeping them all in memory (still exponential
/// time; used by experiment E7's "number of repairs" series).
pub fn count_repairs(g: &ConflictHypergraph, cap: usize) -> usize {
    enumerate_repairs(g, Some(cap)).len()
}

/// The *core*: tuples present in **every** repair. Contains all
/// non-conflicting tuples plus conflicting vertices that are kept in every
/// maximal independent set. This function returns only the always-kept
/// conflicting vertices; use [`core_instance`] for full relations.
///
/// Computed exactly via a sufficient local criterion when cheap, falling
/// back to enumeration when `exact` is set (tests); Hippo's core-filter
/// optimization only needs a *subset* of the core, for which
/// "non-conflicting" suffices (the paper's envelope/filter construction).
pub fn always_kept_exact(g: &ConflictHypergraph) -> BTreeSet<Vertex> {
    let repairs = enumerate_repairs(g, None);
    let mut iter = repairs.into_iter();
    let Some(first) = iter.next() else {
        return BTreeSet::new();
    };
    iter.fold(first, |acc, r| acc.intersection(&r).copied().collect())
}

/// Materialise a repair (or the consistent core) as an instance view:
/// relation name → rows, where conflicting vertices not in `kept` are
/// dropped.
pub fn repair_instance<'a>(
    catalog: &'a Catalog,
    g: &'a ConflictHypergraph,
    kept: &'a RepairKept,
) -> impl Fn(&str) -> Vec<Row> + 'a {
    move |rel: &str| {
        let Ok(table) = catalog.table(rel) else {
            return Vec::new();
        };
        let ri = g.relation_index(rel);
        table
            .iter()
            .filter(|(tid, _)| match ri {
                None => true,
                Some(ri) => {
                    let v = Vertex { rel: ri, tid: *tid };
                    !g.is_conflicting(v) || kept.contains(&v)
                }
            })
            .map(|(_, row)| row.clone())
            .collect()
    }
}

/// The conflict-free core as an instance view: every conflicting tuple is
/// dropped. This is the instance the "traditional approach" (delete all
/// conflicting data) queries, and the positive base of Hippo's core-filter
/// optimization.
pub fn core_instance<'a>(
    catalog: &'a Catalog,
    g: &'a ConflictHypergraph,
) -> impl Fn(&str) -> Vec<Row> + 'a {
    move |rel: &str| {
        let Ok(table) = catalog.table(rel) else {
            return Vec::new();
        };
        let ri = g.relation_index(rel);
        table
            .iter()
            .filter(|(tid, _)| match ri {
                None => true,
                Some(ri) => !g.is_conflicting(Vertex { rel: ri, tid: *tid }),
            })
            .map(|(_, row)| row.clone())
            .collect()
    }
}

/// Check that a kept-set is a repair: independent and maximal.
pub fn is_repair(g: &ConflictHypergraph, kept: &RepairKept) -> bool {
    let kept_set: HashSet<Vertex> = kept.iter().copied().collect();
    if !g.is_independent(&kept_set) {
        return false;
    }
    g.conflicting_vertices()
        .filter(|v| !kept_set.contains(v))
        .all(|v| g.is_blocked_by(v, &kept_set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hippo_engine::{TupleId, Value};

    fn v(tid: u32) -> Vertex {
        Vertex {
            rel: 0,
            tid: TupleId(tid),
        }
    }

    fn graph(edges: &[&[u32]]) -> ConflictHypergraph {
        let mut g = ConflictHypergraph::new();
        g.intern("r");
        for (i, e) in edges.iter().enumerate() {
            let rows: Vec<Row> = e.iter().map(|&t| vec![Value::Int(t as i64)]).collect();
            let refs: Vec<&Row> = rows.iter().collect();
            let vertices: Vec<Vertex> = e.iter().map(|&t| v(t)).collect();
            g.add_edge(&vertices, &refs, i);
        }
        g
    }

    #[test]
    fn single_edge_two_repairs() {
        let g = graph(&[&[0, 1]]);
        let rs = enumerate_repairs(&g, None);
        assert_eq!(rs.len(), 2);
        assert!(rs.contains(&[v(0)].into_iter().collect()));
        assert!(rs.contains(&[v(1)].into_iter().collect()));
        for r in &rs {
            assert!(is_repair(&g, r));
        }
    }

    #[test]
    fn empty_graph_single_empty_repair() {
        let g = graph(&[]);
        let rs = enumerate_repairs(&g, None);
        assert_eq!(rs.len(), 1);
        assert!(rs[0].is_empty());
    }

    #[test]
    fn triangle_graph_three_repairs() {
        // pairwise conflicts 0-1, 1-2, 0-2: repairs keep exactly one vertex
        let g = graph(&[&[0, 1], &[1, 2], &[0, 2]]);
        let rs = enumerate_repairs(&g, None);
        assert_eq!(rs.len(), 3);
        for r in &rs {
            assert_eq!(r.len(), 1);
            assert!(is_repair(&g, r));
        }
    }

    #[test]
    fn path_graph_maximality() {
        // 0-1, 1-2: repairs are {0,2} and {1}; {0} alone is not maximal.
        let g = graph(&[&[0, 1], &[1, 2]]);
        let rs = enumerate_repairs(&g, None);
        assert_eq!(rs.len(), 2);
        assert!(rs.contains(&[v(0), v(2)].into_iter().collect()));
        assert!(rs.contains(&[v(1)].into_iter().collect()));
    }

    #[test]
    fn hyperedge_of_three() {
        // one edge {0,1,2}: repairs drop exactly one vertex
        let g = graph(&[&[0, 1, 2]]);
        let rs = enumerate_repairs(&g, None);
        assert_eq!(rs.len(), 3);
        for r in &rs {
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn singleton_edge_vertex_in_no_repair() {
        let g = graph(&[&[7]]);
        let rs = enumerate_repairs(&g, None);
        assert_eq!(rs.len(), 1);
        assert!(rs[0].is_empty());
        assert!(is_repair(&g, &rs[0]));
    }

    #[test]
    fn independent_conflicts_multiply() {
        // k independent edges → 2^k repairs
        let g = graph(&[&[0, 1], &[2, 3], &[4, 5]]);
        assert_eq!(enumerate_repairs(&g, None).len(), 8);
    }

    #[test]
    fn limit_caps_enumeration() {
        let g = graph(&[&[0, 1], &[2, 3], &[4, 5]]);
        assert_eq!(count_repairs(&g, 3), 3);
    }

    #[test]
    fn always_kept_exact_on_path() {
        // 0-1, 1-2: repairs {0,2}, {1}: intersection empty
        let g = graph(&[&[0, 1], &[1, 2]]);
        assert!(always_kept_exact(&g).is_empty());
        // one edge {0,1} plus vertex 2 in a hyperedge {0,1,2}? Instead:
        // edges {0,1} and {0,1,2}: repairs: {0,2}:0 kept,1 blocked by {0,1}?
        // keep simple: single edge {0,1}: intersection of {0},{1} is empty.
        let g = graph(&[&[0, 1]]);
        assert!(always_kept_exact(&g).is_empty());
    }

    #[test]
    fn is_repair_rejects_non_maximal_and_dependent() {
        let g = graph(&[&[0, 1], &[1, 2]]);
        assert!(!is_repair(&g, &[v(0)].into_iter().collect()), "not maximal");
        assert!(
            !is_repair(&g, &[v(0), v(1)].into_iter().collect()),
            "contains an edge"
        );
    }
}
