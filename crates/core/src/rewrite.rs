//! The query-rewriting baseline (Arenas–Bertossi–Chomicki, PODS 1999).
//!
//! The first practical CQA technique rewrites the input query `Q` into a
//! query `Q'` such that evaluating `Q'` over the inconsistent instance
//! yields the consistent answers directly. Each positive relation leaf is
//! augmented with **residues** derived from the constraints: a tuple
//! qualifies only if no other tuples witness a violation with it (rendered
//! as `NOT EXISTS` subqueries).
//!
//! The method's scope is what the Hippo paper states: **SJD queries with
//! binary universal constraints** — and no union. This module faithfully
//! reproduces those limits and returns [`RewriteError::Unsupported`]
//! outside them; the expressiveness comparison of demo part 2 (experiment
//! D2) and the running-time comparison of part 3 (E1–E3) are driven by
//! this implementation.
//!
//! Soundness/completeness note: with one residue round the rewriting is
//! exact for constraint sets whose conflict graphs have no singleton edges
//! (FDs and cross-relation exclusion constraints qualify: every tuple then
//! belongs to at least one repair). CHECK-style single-atom denials make a
//! tuple belong to *no* repair; their residue is the negated condition on
//! the tuple itself, which remains exact. Mixing them with binary
//! constraints over the *same* relation can require iterated residues,
//! which the classical method does not perform — those inputs are rejected
//! as unsupported.

use crate::constraint::DenialConstraint;
use crate::query::SjudQuery;
use hippo_engine::{Catalog, EngineError, Row};
use hippo_sql::{Expr, Query, SelectCore, SelectItem, SetOp, TableRef};
use std::fmt;

/// Why a query/constraint combination cannot be rewritten.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The combination falls outside the rewriting method's class.
    Unsupported(String),
    /// Engine-level failure (missing table etc.).
    Engine(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Unsupported(m) => write!(f, "query rewriting unsupported: {m}"),
            RewriteError::Engine(m) => write!(f, "query rewriting failed: {m}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<EngineError> for RewriteError {
    fn from(e: EngineError) -> Self {
        RewriteError::Engine(e.message)
    }
}

/// Rewrite `q` under `constraints` into a SQL query computing the
/// consistent answers.
pub fn rewrite_query(
    q: &SjudQuery,
    constraints: &[DenialConstraint],
    catalog: &Catalog,
) -> Result<Query, RewriteError> {
    q.validate(catalog)?;
    check_constraints(constraints)?;
    if q.has_union() {
        return Err(RewriteError::Unsupported(
            "union queries are outside the SJD class the rewriting handles".into(),
        ));
    }
    render(q, constraints, catalog)
}

/// Rewrite and evaluate; returns sorted distinct rows.
pub fn rewritten_answers(
    q: &SjudQuery,
    constraints: &[DenialConstraint],
    db: &hippo_engine::Database,
) -> Result<Vec<Row>, RewriteError> {
    let sql_q = rewrite_query(q, constraints, db.catalog())?;
    let sql = hippo_sql::print_query(&sql_q);
    let mut rows = db.query(&sql)?.rows;
    rows.sort();
    rows.dedup();
    Ok(rows)
}

fn check_constraints(constraints: &[DenialConstraint]) -> Result<(), RewriteError> {
    let mut unary_rels: Vec<&str> = Vec::new();
    let mut binary_rels: Vec<&str> = Vec::new();
    for c in constraints {
        if !c.is_binary() {
            return Err(RewriteError::Unsupported(format!(
                "constraint {:?} has {} atoms; the rewriting handles binary constraints only",
                c.name,
                c.atoms.len()
            )));
        }
        if c.atoms.len() == 1 {
            unary_rels.push(&c.atoms[0]);
        } else {
            binary_rels.extend(c.atoms.iter().map(String::as_str));
        }
    }
    // Iterated residues would be needed when a relation carries both a
    // CHECK denial and a binary constraint; reject (see module docs).
    for r in &unary_rels {
        if binary_rels.contains(r) {
            return Err(RewriteError::Unsupported(format!(
                "relation {r:?} mixes unary and binary constraints; one-round residues are \
                 incomplete here"
            )));
        }
    }
    Ok(())
}

fn render(
    q: &SjudQuery,
    constraints: &[DenialConstraint],
    catalog: &Catalog,
) -> Result<Query, RewriteError> {
    match q {
        SjudQuery::Rel(rel) => rewritten_leaf(rel, constraints, catalog),
        SjudQuery::Select { input, pred } => {
            let inner = render(input, constraints, catalog)?;
            let mut core = SelectCore::empty();
            core.projection = vec![SelectItem::Wildcard];
            core.from = vec![TableRef::Subquery {
                query: Box::new(inner),
                alias: "s".into(),
            }];
            core.filter = Some(pred.to_sql_expr(&|i| Expr::qcol("s", format!("c{i}"))));
            Ok(Query::Select(Box::new(core)))
        }
        SjudQuery::Product(l, r) => {
            let la = l.validate(catalog)?;
            let ra = r.validate(catalog)?;
            let lq = render(l, constraints, catalog)?;
            let rq = render(r, constraints, catalog)?;
            let mut core = SelectCore::empty();
            core.projection = (0..la)
                .map(|i| SelectItem::Expr {
                    expr: Expr::qcol("a", format!("c{i}")),
                    alias: Some(format!("c{i}")),
                })
                .chain((0..ra).map(|i| SelectItem::Expr {
                    expr: Expr::qcol("b", format!("c{i}")),
                    alias: Some(format!("c{}", la + i)),
                }))
                .collect();
            core.from = vec![
                TableRef::Subquery {
                    query: Box::new(lq),
                    alias: "a".into(),
                },
                TableRef::Subquery {
                    query: Box::new(rq),
                    alias: "b".into(),
                },
            ];
            Ok(Query::Select(Box::new(core)))
        }
        SjudQuery::Union(_, _) => Err(RewriteError::Unsupported(
            "union queries are outside the SJD class the rewriting handles".into(),
        )),
        SjudQuery::Diff(l, r) => {
            // ∀D′: t ∈ (E1−E2)(D′) ⟺ (∀D′ t ∈ E1(D′)) ∧ (∀D′ t ∉ E2(D′)).
            // Under constraint sets without unavoidable deletions (checked
            // in `check_constraints`), every tuple of D is in some repair,
            // so "t ∉ E2(D′) for all D′" for a monotone SJ branch reduces
            // to t ∉ env(E2)(D). Differences nested on the right would need
            // certain-absence reasoning beyond residues — unsupported.
            if r.has_diff() {
                return Err(RewriteError::Unsupported(
                    "nested difference on the subtrahend side is beyond one-round residues".into(),
                ));
            }
            let lq = render(l, constraints, catalog)?;
            let renv = crate::envelope::envelope(r);
            let rq = renv.to_sql_query(catalog)?;
            Ok(Query::SetOp {
                op: SetOp::Except,
                all: false,
                left: Box::new(lq),
                right: Box::new(rq),
            })
        }
        SjudQuery::Permute { input, perm } => {
            let inner = render(input, constraints, catalog)?;
            let mut core = SelectCore::empty();
            core.distinct = true;
            core.projection = perm
                .iter()
                .enumerate()
                .map(|(i, &p)| SelectItem::Expr {
                    expr: Expr::qcol("s", format!("c{p}")),
                    alias: Some(format!("c{i}")),
                })
                .collect();
            core.from = vec![TableRef::Subquery {
                query: Box::new(inner),
                alias: "s".into(),
            }];
            Ok(Query::Select(Box::new(core)))
        }
    }
}

/// A relation leaf with residues: `SELECT DISTINCT cols FROM rel t0 WHERE
/// <residue for every constraint atom matching rel>`.
fn rewritten_leaf(
    rel: &str,
    constraints: &[DenialConstraint],
    catalog: &Catalog,
) -> Result<Query, RewriteError> {
    let schema = &catalog.table(rel)?.schema;
    let mut core = SelectCore::empty();
    core.distinct = true;
    core.projection = schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| SelectItem::Expr {
            expr: Expr::qcol("t0", c.name.clone()),
            alias: Some(format!("c{i}")),
        })
        .collect();
    core.from = vec![TableRef::Table {
        name: rel.to_string(),
        alias: Some("t0".into()),
    }];

    let mut residues: Vec<Expr> = Vec::new();
    for c in constraints {
        for (atom_idx, atom_rel) in c.atoms.iter().enumerate() {
            if atom_rel != rel {
                continue;
            }
            residues.push(residue_for_atom(c, atom_idx, catalog)?);
        }
    }
    core.filter = Expr::conjoin(residues);
    Ok(Query::Select(Box::new(core)))
}

/// The residue of a constraint for one of its atoms: the tuple bound to
/// that atom must not complete a violation.
///
/// * unary constraint `¬(R(t) ∧ φ(t))` → residue `¬φ(t0)`;
/// * binary constraint `¬(R(t) ∧ S(u) ∧ φ(t,u))` → residue
///   `NOT EXISTS (SELECT * FROM S t1 WHERE φ(t0, t1))`, excluding the
///   degenerate match of the same physical tuple when `R = S` (an FD's
///   inequality already excludes it; exclusion constraints within one
///   relation genuinely forbid the tuple itself, so no exclusion applies).
fn residue_for_atom(
    c: &DenialConstraint,
    atom_idx: usize,
    catalog: &Catalog,
) -> Result<Expr, RewriteError> {
    let arities: Vec<usize> = c
        .atoms
        .iter()
        .map(|r| Ok::<usize, EngineError>(catalog.table(r)?.schema.arity()))
        .collect::<Result<_, _>>()?;
    let cond = c.condition_as_pred(&arities);
    if c.atoms.len() == 1 {
        // Bound tuple must falsify the condition.
        let schema = &catalog.table(&c.atoms[0])?.schema;
        let name = |i: usize| Expr::qcol("t0", schema.columns[i].name.clone());
        return Ok(cond.not().to_sql_expr(&name));
    }
    // Binary: other atom index.
    let other_idx = 1 - atom_idx;
    let other_rel = &c.atoms[other_idx];
    let this_schema = &catalog.table(&c.atoms[atom_idx])?.schema;
    let other_schema = &catalog.table(other_rel)?.schema;
    // Combined offsets: atom0 columns first. Map offsets to (t0|t1, name).
    let offset0 = 0usize;
    let offset1 = arities[0];
    let name = |i: usize| -> Expr {
        let (atom, col) = if i < offset1 {
            (0, i - offset0)
        } else {
            (1, i - offset1)
        };
        let (alias, schema) = if atom == atom_idx {
            ("t0", this_schema)
        } else {
            ("t1", other_schema)
        };
        Expr::qcol(alias, schema.columns[col].name.clone())
    };
    let mut sub = SelectCore::empty();
    sub.projection = vec![SelectItem::Wildcard];
    sub.from = vec![TableRef::Table {
        name: other_rel.clone(),
        alias: Some("t1".into()),
    }];
    sub.filter = Some(cond.to_sql_expr(&name));
    Ok(Expr::Exists {
        query: Box::new(Query::Select(Box::new(sub))),
        negated: true,
    })
}

/// Can this (query, constraints) pair be rewritten at all? Used by the
/// expressiveness matrix (experiment D2).
pub fn rewrite_supported(
    q: &SjudQuery,
    constraints: &[DenialConstraint],
) -> Result<(), RewriteError> {
    check_constraints(constraints)?;
    if q.has_union() {
        return Err(RewriteError::Unsupported("union".into()));
    }
    fn diff_rhs_ok(q: &SjudQuery) -> bool {
        match q {
            SjudQuery::Rel(_) => true,
            SjudQuery::Select { input, .. } | SjudQuery::Permute { input, .. } => {
                diff_rhs_ok(input)
            }
            SjudQuery::Product(l, r) | SjudQuery::Union(l, r) => diff_rhs_ok(l) && diff_rhs_ok(r),
            SjudQuery::Diff(l, r) => diff_rhs_ok(l) && !r.has_diff() && diff_rhs_ok(r),
        }
    }
    if !diff_rhs_ok(q) {
        return Err(RewriteError::Unsupported("nested difference".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_conflicts;
    use crate::naive::naive_consistent_answers;
    use crate::pred::{CmpOp, Pred};
    use hippo_engine::{Column, DataType, Database, TableSchema, Value};

    fn emp_db(rows: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "emp",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("salary", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "emp",
            rows.iter()
                .map(|&(n, s)| vec![Value::text(n), Value::Int(s)])
                .collect(),
        )
        .unwrap();
        db
    }

    fn fd() -> Vec<DenialConstraint> {
        vec![DenialConstraint::functional_dependency("emp", &[0], 1)]
    }

    #[test]
    fn rewriting_matches_ground_truth_on_relation_query() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        let (g, _) = detect_conflicts(db.catalog(), &fd()).unwrap();
        let q = SjudQuery::rel("emp");
        let rewritten = rewritten_answers(&q, &fd(), &db).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(rewritten, truth);
    }

    #[test]
    fn rewriting_matches_ground_truth_with_selection() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 10)]);
        let (g, _) = detect_conflicts(db.catalog(), &fd()).unwrap();
        let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 50i64));
        let rewritten = rewritten_answers(&q, &fd(), &db).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(rewritten, truth);
    }

    #[test]
    fn rewriting_matches_ground_truth_on_join() {
        let mut db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "dept",
                    vec![
                        Column::new("dname", DataType::Text),
                        Column::new("head", DataType::Text),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows(
            "dept",
            vec![
                vec![Value::text("cs"), Value::text("ann")],
                vec![Value::text("ee"), Value::text("bob")],
            ],
        )
        .unwrap();
        let constraints = fd();
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        // join emp and dept on head = name
        let q = SjudQuery::rel("emp")
            .product(SjudQuery::rel("dept"))
            .select(Pred::cmp_cols(0, CmpOp::Eq, 3));
        let rewritten = rewritten_answers(&q, &constraints, &db).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(rewritten, truth);
    }

    #[test]
    fn rewriting_matches_ground_truth_with_exclusion_constraint() {
        let mut db = emp_db(&[("ann", 100), ("bob", 200)]);
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    "banned",
                    vec![
                        Column::new("name", DataType::Text),
                        Column::new("x", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        db.insert_rows("banned", vec![vec![Value::text("ann"), Value::Int(0)]])
            .unwrap();
        let constraints = vec![DenialConstraint::exclusion("emp", "banned", &[(0, 0)])];
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let q = SjudQuery::rel("emp");
        let rewritten = rewritten_answers(&q, &constraints, &db).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(
            rewritten, truth,
            "ann conflicts with a banned row in both directions"
        );
    }

    #[test]
    fn rewriting_matches_ground_truth_on_difference() {
        let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300), ("cyd", 10)]);
        let (g, _) = detect_conflicts(db.catalog(), &fd()).unwrap();
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            50i64,
        )));
        let rewritten = rewritten_answers(&q, &fd(), &db).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(rewritten, truth);
    }

    #[test]
    fn union_is_unsupported() {
        let db = emp_db(&[("ann", 100)]);
        let q = SjudQuery::rel("emp").union(SjudQuery::rel("emp"));
        let err = rewrite_query(&q, &fd(), db.catalog()).unwrap_err();
        assert!(matches!(err, RewriteError::Unsupported(_)));
        assert!(rewrite_supported(&q, &fd()).is_err());
    }

    #[test]
    fn ternary_constraints_unsupported() {
        let db = emp_db(&[("ann", 100)]);
        let c = DenialConstraint::new(
            "ternary",
            vec!["emp".into(), "emp".into(), "emp".into()],
            vec![],
        );
        let err = rewrite_query(&SjudQuery::rel("emp"), &[c], db.catalog()).unwrap_err();
        assert!(matches!(err, RewriteError::Unsupported(_)));
    }

    #[test]
    fn nested_difference_unsupported() {
        let db = emp_db(&[("ann", 100)]);
        let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").diff(SjudQuery::rel("emp")));
        let err = rewrite_query(&q, &fd(), db.catalog()).unwrap_err();
        assert!(matches!(err, RewriteError::Unsupported(_)));
    }

    #[test]
    fn rewritten_sql_uses_not_exists() {
        let db = emp_db(&[("ann", 100)]);
        let sql = hippo_sql::print_query(
            &rewrite_query(&SjudQuery::rel("emp"), &fd(), db.catalog()).unwrap(),
        );
        assert!(sql.contains("NOT EXISTS"), "{sql}");
    }

    #[test]
    fn check_constraint_alone_is_supported_and_exact() {
        use crate::constraint::{AttrRef, Comparison, Term};
        let db = emp_db(&[("ann", -5), ("bob", 10)]);
        let chk = vec![DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        )];
        let (g, _) = detect_conflicts(db.catalog(), &chk).unwrap();
        let q = SjudQuery::rel("emp");
        let rewritten = rewritten_answers(&q, &chk, &db).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        assert_eq!(rewritten, truth);
    }

    #[test]
    fn mixed_unary_binary_on_same_relation_rejected() {
        use crate::constraint::{AttrRef, Comparison, Term};
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Lt,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let mut cs = fd();
        cs.push(chk);
        assert!(rewrite_supported(&SjudQuery::rel("emp"), &cs).is_err());
    }
}
