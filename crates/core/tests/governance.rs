//! Integration tests for the resource-governance layer: deadlines, row
//! budgets, cooperative cancellation, strict vs. degraded mode, panic
//! isolation in the prover shard pool, and recovery after injected
//! faults in every pipeline stage.
//!
//! The deterministic fault-injection hooks (`FaultPlan`) are one-shot:
//! a plan fires at most once, so the same `Hippo` instance can be
//! re-driven after the fault to prove the engine stays usable — no
//! poisoned caches, no half-absorbed hypergraph state.

use hippo_cqa::prelude::*;
use hippo_engine::schema::ErrorKind;
use hippo_engine::Database;
use std::time::Duration;

/// Seeded FD workload: `t(k, v, payload)` with `k -> v` violated on
/// `conflict_rate` of the keys.
fn workload(rows: usize, seed: u64) -> (Database, Vec<DenialConstraint>) {
    let spec = FdTableSpec::new("t", rows, 0.05, seed);
    let mut db = Database::new();
    spec.populate(&mut db).unwrap();
    (db, vec![spec.fd()])
}

/// The E9-style projection-free difference query: tuples of `t` minus
/// the high-`v` slice. Keeps every base tuple a prover candidate.
fn query() -> SjudQuery {
    SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 900i64)))
}

/// Reference (ungoverned) answer rows for a workload/query pair.
fn reference_rows(rows: usize, seed: u64) -> Vec<hippo_engine::Row> {
    let (db, cons) = workload(rows, seed);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    hippo.consistent_answers(&query()).unwrap()
}

/// `sub` must be a subset of the (sorted, deduped) `sup`.
fn assert_subset(sub: &[hippo_engine::Row], sup: &[hippo_engine::Row]) {
    for row in sub {
        assert!(
            sup.binary_search(row).is_ok(),
            "degraded answer {row:?} is not in the complete answer set"
        );
    }
}

// ---------------------------------------------------------------------
// Ungoverned calls: the governance layer must be invisible.
// ---------------------------------------------------------------------

#[test]
fn ungoverned_calls_report_no_budget_accounting() {
    let (db, cons) = workload(400, 11);
    let hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let ans = hippo.consistent_answers_governed(&query()).unwrap();
    assert!(ans.completeness.is_complete());
    assert_eq!(ans.stats.budget_checks, 0, "no budget => no checks");
    assert_eq!(ans.stats.cancelled_shards, 0);
    assert!(!ans.stats.degraded);
    assert_eq!(ans.rows, reference_rows(400, 11));
}

// ---------------------------------------------------------------------
// Acceptance: a 1ms deadline on the 16k E9 workload trips (never hangs
// or panics), in strict and degraded mode, at 1 and 4 prover threads.
// ---------------------------------------------------------------------

#[test]
fn millisecond_deadline_on_16k_workload_trips_strict() {
    // Construct ungoverned (detection at build time is not the call
    // under test), then arm the deadline for the answer call only.
    let (db, cons) = workload(16_000, 84);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    for threads in [1usize, 4] {
        hippo.options = HippoOptions::full()
            .with_prover_threads(threads)
            .with_deadline(Duration::from_millis(1));
        let err = hippo
            .consistent_answers_governed(&query())
            .expect_err("1ms deadline over 16k rows must trip");
        assert!(
            err.is_budget(),
            "expected a Budget error at threads={threads}, got {err:?}"
        );
        match err.kind {
            ErrorKind::Budget { stage, .. } => assert!(
                ["envelope", "corefilter", "membership", "prover"].contains(&stage),
                "unexpected trip stage {stage}"
            ),
            ref k => panic!("expected Budget kind, got {k:?}"),
        }
    }
}

#[test]
fn millisecond_deadline_on_16k_workload_degrades_soundly() {
    let complete = reference_rows(16_000, 84);
    let (db, cons) = workload(16_000, 84);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    for threads in [1usize, 4] {
        hippo.options = HippoOptions::full()
            .with_prover_threads(threads)
            .with_deadline(Duration::from_millis(1))
            .degraded();
        let ans = hippo
            .consistent_answers_governed(&query())
            .expect("degraded mode absorbs the trip");
        assert!(
            !ans.completeness.is_complete(),
            "1ms over 16k rows cannot complete (threads={threads})"
        );
        assert!(ans.stats.degraded);
        assert!(ans.stats.budget_checks > 0);
        assert_subset(&ans.rows, &complete);
    }
}

// ---------------------------------------------------------------------
// Row budgets and cancellation.
// ---------------------------------------------------------------------

#[test]
fn strict_row_budget_reports_stage_and_spend() {
    let (db, cons) = workload(4_000, 29);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    hippo.options = HippoOptions::full().with_row_budget(64);
    let err = hippo
        .consistent_answers_governed(&query())
        .expect_err("64-row budget over 4k rows must trip");
    match err.kind {
        ErrorKind::Budget { spent, limit, .. } => {
            assert_eq!(limit, 64);
            assert!(spent >= limit, "spent {spent} < limit {limit}");
        }
        ref k => panic!("expected Budget kind, got {k:?}"),
    }
}

#[test]
fn cancellation_trips_and_is_resettable() {
    let (db, cons) = workload(300, 5);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let mut opts = HippoOptions::full();
    let handle = opts.cancel_handle();
    hippo.options = opts;

    handle.cancel();
    let err = hippo
        .consistent_answers_governed(&query())
        .expect_err("cancelled before the call even starts");
    assert!(err.is_cancelled(), "expected Cancelled, got {err:?}");

    // Un-trip the flag: the very same instance answers normally.
    handle.reset();
    let ans = hippo.consistent_answers_governed(&query()).unwrap();
    assert!(ans.completeness.is_complete());
    assert_eq!(ans.rows, reference_rows(300, 5));
}

#[test]
fn cancellation_in_degraded_mode_yields_truncated_answer() {
    let (db, cons) = workload(300, 5);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let mut opts = HippoOptions::full().degraded();
    let handle = opts.cancel_handle();
    hippo.options = opts;

    handle.cancel();
    let ans = hippo.consistent_answers_governed(&query()).unwrap();
    assert!(!ans.completeness.is_complete());
    assert!(
        ans.rows.is_empty(),
        "cancelled at envelope => nothing proved"
    );
    assert!(ans.stats.degraded);
}

// ---------------------------------------------------------------------
// Satellite 3: prover-shard panic isolation. A panic in shard 7 of 16
// surfaces as a structured WorkerPanic, the sibling shards drain, and
// the same Hippo instance answers correctly on the next call.
// ---------------------------------------------------------------------

#[test]
fn prover_shard_panic_is_isolated_and_recoverable() {
    let complete = reference_rows(600, 42);
    for threads in [1usize, 4] {
        let (db, cons) = workload(600, 42);
        let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
        // 600 candidates >> 16, so split_ranges yields all 16 prover
        // shards and shard 7 is guaranteed to exist.
        hippo.options = HippoOptions::full()
            .with_prover_threads(threads)
            .with_faults(FaultPlan::new("prover", Some(7), FaultKind::Panic));

        let err = hippo
            .consistent_answers_governed(&query())
            .expect_err("injected panic in shard 7 must surface");
        match err.kind {
            ErrorKind::WorkerPanic { stage, shard } => {
                assert_eq!(stage, "prover", "threads={threads}");
                assert_eq!(shard, 7, "threads={threads}");
            }
            ref k => panic!("expected WorkerPanic, got {k:?} (threads={threads})"),
        }

        // The one-shot plan is spent: the same instance — same verdict
        // cache, same snapshot — must now answer correctly.
        let ans = hippo.consistent_answers_governed(&query()).unwrap();
        assert!(ans.completeness.is_complete(), "threads={threads}");
        assert_eq!(ans.rows, complete, "recovery diverged at threads={threads}");
    }
}

#[test]
fn prover_shard_panic_in_degraded_mode_is_still_an_error() {
    // Degraded mode absorbs *governance* trips (budget, cancel), not
    // worker panics: a crash is not a resource decision.
    let (db, cons) = workload(600, 42);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    hippo.options = HippoOptions::full().degraded().with_faults(FaultPlan::new(
        "prover",
        Some(3),
        FaultKind::Panic,
    ));
    let err = hippo
        .consistent_answers_governed(&query())
        .expect_err("panics are never absorbed");
    assert!(err.is_worker_panic(), "got {err:?}");
}

// ---------------------------------------------------------------------
// Satellite 2: a panic inside detection must not leave a partially
// absorbed hypergraph or stale stats behind — the instance recovers.
// ---------------------------------------------------------------------

#[test]
fn detect_panic_during_redetect_leaves_hippo_usable() {
    let (db, cons) = workload(500, 77);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let edges_before = hippo.graph().edge_count();

    // Dirty the catalog through the raw handle (forces a full rebuild),
    // then arm a wildcard detect-stage panic.
    hippo.db_mut();
    hippo.options =
        HippoOptions::full().with_faults(FaultPlan::new("detect", None, FaultKind::Panic));
    let err = hippo.redetect().expect_err("injected detect panic");
    match err.kind {
        ErrorKind::WorkerPanic { stage, .. } => assert_eq!(stage, "detect"),
        ref k => panic!("expected WorkerPanic, got {k:?}"),
    }
    // The failed rebuild must not have clobbered the old graph.
    assert_eq!(hippo.graph().edge_count(), edges_before);

    // The plan is spent; the catalog is still marked dirty, so this
    // redetect performs the full rebuild that just failed — and the
    // instance then answers exactly like a fresh one.
    hippo.redetect().expect("recovery redetect");
    let ans = hippo.consistent_answers_governed(&query()).unwrap();
    assert!(ans.completeness.is_complete());
    assert_eq!(ans.rows, reference_rows(500, 77));
}

#[test]
fn detect_stage_trips_are_strict_even_in_degraded_mode() {
    // An incomplete conflict hypergraph makes the prover unsound, so a
    // budget trip during detection can never be absorbed into a
    // degraded answer: construction itself fails, structurally.
    let (db, cons) = workload(500, 13);
    let res = Hippo::with_options(
        db,
        cons,
        HippoOptions::full().degraded().with_faults(FaultPlan::new(
            "detect",
            None,
            FaultKind::BudgetTrip,
        )),
    );
    match res {
        Ok(_) => panic!("detect-stage trip must refuse, even degraded"),
        Err(err) => assert!(err.is_budget(), "got {err:?}"),
    }
}

// ---------------------------------------------------------------------
// Injected budget trips in every answer-pipeline stage: strict mode
// errors, degraded mode returns a sound truncated subset.
// ---------------------------------------------------------------------

#[test]
fn budget_trip_in_each_stage_errors_in_strict_mode() {
    for (stage, opts) in [
        ("envelope", HippoOptions::full()),
        ("corefilter", HippoOptions::full()),
        ("prover", HippoOptions::full()),
        // Membership probes only run in base mode (no prefetched flags).
        ("membership", HippoOptions::base()),
    ] {
        let (db, cons) = workload(400, 99);
        let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
        hippo.options = opts.with_faults(FaultPlan::new(stage, None, FaultKind::BudgetTrip));
        let err = hippo
            .consistent_answers_governed(&query())
            .expect_err("strict mode propagates the trip");
        assert!(err.is_budget(), "stage {stage}: got {err:?}");
    }
}

#[test]
fn budget_trip_in_each_stage_degrades_to_sound_subset() {
    let complete = reference_rows(400, 99);
    for (stage, opts) in [
        ("envelope", HippoOptions::full()),
        ("corefilter", HippoOptions::full()),
        ("prover", HippoOptions::full()),
        ("membership", HippoOptions::base()),
    ] {
        let (db, cons) = workload(400, 99);
        let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
        hippo.options =
            opts.degraded()
                .with_faults(FaultPlan::new(stage, None, FaultKind::BudgetTrip));
        let ans = hippo
            .consistent_answers_governed(&query())
            .unwrap_or_else(|e| panic!("stage {stage}: degraded mode must absorb, got {e:?}"));
        assert!(
            !ans.completeness.is_complete(),
            "stage {stage}: a forced trip cannot complete"
        );
        assert!(ans.stats.degraded, "stage {stage}");
        assert_subset(&ans.rows, &complete);
    }
}

// ---------------------------------------------------------------------
// The HIPPO_FAULT environment hook parses to the same plans the API
// builds — the CI fault-matrix leg drives injection through it.
// ---------------------------------------------------------------------

#[test]
fn hippo_fault_env_var_round_trips() {
    // All env mutation lives in this one test — the harness runs tests
    // in parallel and HIPPO_FAULT is process-global.
    // Not set (or set to whitespace) => no plan.
    std::env::remove_var("HIPPO_FAULT");
    assert!(FaultPlan::from_env().is_none());
    std::env::set_var("HIPPO_FAULT", "  ");
    assert!(FaultPlan::from_env().is_none());

    // A typo'd spec is a loud startup error, not a silently disabled
    // injection: try_from_env names the problem, from_env panics.
    std::env::set_var("HIPPO_FAULT", "prover:2:panik");
    let err = FaultPlan::try_from_env().expect_err("malformed spec must error");
    assert!(err.contains("unknown fault kind"), "{err}");
    assert!(err.contains("panik"), "{err}");
    let panicked = std::panic::catch_unwind(FaultPlan::from_env).expect_err("from_env panics");
    let msg = panicked
        .downcast_ref::<String>()
        .expect("panic carries the parse error");
    assert!(msg.contains("HIPPO_FAULT"), "{msg}");

    std::env::set_var("HIPPO_FAULT", "prover:2:panic");
    let plan = FaultPlan::from_env().expect("well-formed spec parses");
    std::env::remove_var("HIPPO_FAULT");

    let (db, cons) = workload(600, 3);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    hippo.options = HippoOptions::full().with_faults(plan);
    let err = hippo
        .consistent_answers_governed(&query())
        .expect_err("env-sourced plan injects like the API one");
    match err.kind {
        ErrorKind::WorkerPanic { stage, shard } => {
            assert_eq!((stage, shard), ("prover", 2));
        }
        ref k => panic!("expected WorkerPanic, got {k:?}"),
    }
    // Spent plan: the instance recovers.
    assert_eq!(
        hippo.consistent_answers_governed(&query()).unwrap().rows,
        reference_rows(600, 3)
    );
}

// ---------------------------------------------------------------------
// Cancel race: a second thread cancels mid-call. The call must return
// `Cancelled` promptly (no deadlock, no waiting out the full run) at 1
// and 4 prover threads, and `reset` makes the same instance reusable.
// ---------------------------------------------------------------------

#[test]
fn cancel_race_from_second_thread_is_prompt_and_resettable() {
    let (db, cons) = workload(16_000, 84);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    let reference = hippo.consistent_answers(&query()).unwrap();
    for threads in [1usize, 4] {
        hippo.options = HippoOptions::full().with_prover_threads(threads);
        let handle = hippo.options.cancel_handle();
        std::thread::scope(|s| {
            let canceller = s.spawn(move || {
                std::thread::sleep(Duration::from_millis(3));
                handle.cancel();
            });
            let t0 = std::time::Instant::now();
            let err = hippo
                .consistent_answers_governed(&query())
                .expect_err("cancelled mid-call");
            assert!(err.is_cancelled(), "threads={threads}: {err}");
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "threads={threads}: cancellation was not prompt: {:?}",
                t0.elapsed()
            );
            canceller.join().unwrap();
        });
        // The flag is sticky until reset — then the *same* instance
        // answers in full again.
        let handle = hippo.options.cancel_handle();
        handle.reset();
        assert_eq!(
            hippo.consistent_answers_governed(&query()).unwrap().rows,
            reference,
            "threads={threads}: instance unusable after cancel+reset"
        );
    }
}

// ---------------------------------------------------------------------
// Delay fault under concurrency: a delay injected into one prover
// shard must not stall sibling shards' budget checks — they trip on
// their own deadline instead of queueing behind the sleeping shard, so
// the call returns in O(delay), not O(delay × shards).
// ---------------------------------------------------------------------

#[test]
fn delayed_shard_does_not_stall_sibling_budget_checks() {
    let (db, cons) = workload(4_000, 29);
    let mut hippo = Hippo::with_options(db, cons, HippoOptions::full()).unwrap();
    // Wide margins so the test is timing-robust under parallel test
    // load: the deadline must be generous enough that the prover stage
    // is reached (arming the fault), yet well under the delay so the
    // sleeping shard is guaranteed to overshoot it.
    let delay = Duration::from_millis(600);
    for threads in [1usize, 4] {
        hippo.options = HippoOptions::full()
            .with_prover_threads(threads)
            .with_deadline(Duration::from_millis(250))
            .with_faults(FaultPlan::new("prover", Some(0), FaultKind::Delay(delay)));
        let t0 = std::time::Instant::now();
        let err = hippo
            .consistent_answers_governed(&query())
            .expect_err("deadline < injected delay must trip");
        let elapsed = t0.elapsed();
        assert!(err.is_budget(), "threads={threads}: {err}");
        assert!(
            hippo.options.governance_faults_fired(),
            "threads={threads}: the delay never fired — deadline too tight to reach the prover"
        );
        // The sleeping shard is drained (elapsed covers the delay once)
        // but siblings trip on their own checks instead of sleeping too.
        assert!(
            elapsed < delay * 4,
            "threads={threads}: siblings stalled behind the delayed shard: {elapsed:?}"
        );
    }
    // Spent plans, tripped budgets: the instance stays fully usable.
    hippo.options = HippoOptions::full();
    assert_eq!(
        hippo.consistent_answers(&query()).unwrap(),
        reference_rows(4_000, 29)
    );
}
