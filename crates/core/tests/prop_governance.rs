//! Differential property tests for the governance layer.
//!
//! 1. **Degraded soundness** — for a random workload and a random
//!    (often tiny) row budget, a degraded call returns a subset of the
//!    ungoverned answer set; if nothing tripped, it returns exactly the
//!    complete set marked `Complete`.
//! 2. **Generous budgets are invisible** — a budget far above what the
//!    call needs yields bit-identical answer rows *and* pipeline
//!    counters; only the new `budget_checks` accounting differs from an
//!    ungoverned run.
//! 3. **Thread counts stay invisible under governance faults** — a
//!    `BudgetTrip` fault at a pinned shard degrades to the same kind of
//!    sound answer at every worker count.

use hippo_cqa::constraint::DenialConstraint;
use hippo_cqa::prelude::*;
use hippo_engine::{Column, DataType, Database, Row, TableSchema, Value};
use proptest::prelude::*;

fn db_with(t_rows: &[(u32, u32)]) -> Database {
    let mut db = Database::new();
    db.catalog_mut()
        .create_table(
            TableSchema::new(
                "t",
                vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    let rows: Vec<Row> = t_rows
        .iter()
        .map(|&(k, v)| vec![Value::Int(k as i64), Value::Int(v as i64)])
        .collect();
    db.insert_rows("t", rows).unwrap();
    db
}

fn fd() -> Vec<DenialConstraint> {
    vec![DenialConstraint::functional_dependency("t", &[0], 1)]
}

fn query(pick: u32) -> SjudQuery {
    match pick % 3 {
        0 => SjudQuery::rel("t"),
        1 => SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            2i64,
        ))),
        _ => SjudQuery::rel("t").permute(vec![1, 0]),
    }
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..10, 0u32..4), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn degraded_answers_are_sound_subsets(
        t_rows in arb_rows(60),
        budget in 1u64..80,
        pick in 0u32..3,
        threads in 1usize..5,
    ) {
        let q = query(pick);
        let complete = Hippo::with_options(db_with(&t_rows), fd(), HippoOptions::full())
            .unwrap()
            .consistent_answers(&q)
            .unwrap();

        let hippo = Hippo::with_options(
            db_with(&t_rows),
            fd(),
            HippoOptions::full()
                .with_prover_threads(threads)
                .with_row_budget(budget)
                .degraded(),
        ).unwrap();
        let ans = hippo.consistent_answers_governed(&q).unwrap();

        for row in &ans.rows {
            prop_assert!(
                complete.binary_search(row).is_ok(),
                "unsound degraded row {:?} (budget={})", row, budget
            );
        }
        if ans.completeness.is_complete() {
            prop_assert_eq!(&ans.rows, &complete, "complete claim must mean complete");
        }
    }

    #[test]
    fn generous_budget_is_invisible(
        t_rows in arb_rows(60),
        pick in 0u32..3,
        threads in 1usize..5,
    ) {
        let q = query(pick);
        let plain = Hippo::with_options(
            db_with(&t_rows),
            fd(),
            HippoOptions::full().with_prover_threads(threads),
        ).unwrap();
        let (rows_plain, st_plain) = plain.consistent_answers_with_stats(&q).unwrap();

        let governed = Hippo::with_options(
            db_with(&t_rows),
            fd(),
            HippoOptions::full()
                .with_prover_threads(threads)
                .with_row_budget(u64::MAX)
                .with_deadline(std::time::Duration::from_secs(3600)),
        ).unwrap();
        let ans = governed.consistent_answers_governed(&q).unwrap();

        prop_assert!(ans.completeness.is_complete());
        prop_assert_eq!(&ans.rows, &rows_plain, "generous budget changed the answers");
        prop_assert_eq!(ans.stats.candidates, st_plain.candidates);
        prop_assert_eq!(ans.stats.prover_calls, st_plain.prover_calls);
        prop_assert_eq!(ans.stats.prover_cache_hits, st_plain.prover_cache_hits);
        prop_assert_eq!(ans.stats.filtered_consistent, st_plain.filtered_consistent);
        prop_assert_eq!(ans.stats.cancelled_shards, 0);
        prop_assert!(!ans.stats.degraded);
        prop_assert_eq!(st_plain.budget_checks, 0, "ungoverned run must not count checks");
    }

    #[test]
    fn pinned_shard_trip_degrades_soundly_at_any_thread_count(
        t_rows in arb_rows(60),
        shard in 0usize..16,
        threads in 1usize..5,
    ) {
        let q = query(0);
        let complete = Hippo::with_options(db_with(&t_rows), fd(), HippoOptions::full())
            .unwrap()
            .consistent_answers(&q)
            .unwrap();

        let hippo = Hippo::with_options(
            db_with(&t_rows),
            fd(),
            HippoOptions::full()
                .with_prover_threads(threads)
                .degraded()
                .with_faults(FaultPlan::new("prover", Some(shard), FaultKind::BudgetTrip)),
        ).unwrap();
        let ans = hippo.consistent_answers_governed(&q).unwrap();
        for row in &ans.rows {
            prop_assert!(
                complete.binary_search(row).is_ok(),
                "unsound row {:?} after trip in shard {}", row, shard
            );
        }
        // The fault is pinned to a shard that may not exist for tiny
        // candidate sets; when it never fires the answer is complete.
        if !hippo.options.governance_faults_fired() {
            prop_assert_eq!(&ans.rows, &complete);
            prop_assert!(ans.completeness.is_complete());
        }
    }
}
