//! Differential property tests for sharded parallel detection and
//! incremental redetection.
//!
//! Two invariants, each checked against the sequential / from-scratch
//! ground truth on randomized workloads:
//!
//! 1. **Sharding is invisible** — for random shard counts (1..8) and
//!    worker counts (1..4), detection produces the same edge set,
//!    constraint attribution and exact `DetectStats` totals as the
//!    sequential single-shard run; and for a *fixed* shard count, edge
//!    ids are bit-identical across worker counts.
//! 2. **Incremental ≡ rebuild** — after random insert/delete batches
//!    applied through `Hippo::insert_tuples` / `Hippo::delete_tuples`,
//!    the incrementally-redetected graph equals a from-scratch `Hippo`
//!    built on the same final instance (edge set and per-fact conflict
//!    vertices), and the two systems return identical consistent
//!    answers.

use hippo_cqa::constraint::{Comparison, DenialConstraint, Term};
use hippo_cqa::detect::{detect_conflicts_with, DetectOptions};
use hippo_cqa::hypergraph::{ConflictHypergraph, Vertex};
use hippo_cqa::pred::CmpOp;
use hippo_cqa::prelude::*;
use hippo_engine::{Column, DataType, Database, Row, TableSchema, TupleId, Value};
use proptest::prelude::*;

/// Random two-table instance: `t(k, v)` and `s(k, v)` with small key /
/// value domains so FD violations, exclusion overlaps and CHECK hits
/// all occur at useful rates.
fn db_with(t_rows: &[(u32, u32)], s_rows: &[(u32, u32)]) -> Database {
    let mut db = Database::new();
    for name in ["t", "s"] {
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    name,
                    vec![
                        Column::new("k", DataType::Int),
                        Column::new("v", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
    }
    let to_rows = |rows: &[(u32, u32)]| -> Vec<Row> {
        rows.iter()
            .map(|&(k, v)| vec![Value::Int(k as i64), Value::Int(v as i64)])
            .collect()
    };
    db.insert_rows("t", to_rows(t_rows)).unwrap();
    db.insert_rows("s", to_rows(s_rows)).unwrap();
    db
}

/// FD on `t`, exclusion between `t` and `s`, and a CHECK denial on `t` —
/// exercising the FD fast path, the hash-joined general path and the
/// singleton general path at once.
fn constraints() -> Vec<DenialConstraint> {
    vec![
        DenialConstraint::functional_dependency("t", &[0], 1),
        DenialConstraint::exclusion("t", "s", &[(0, 0)]),
        DenialConstraint::check(
            "t",
            vec![Comparison {
                op: CmpOp::Ge,
                left: Term::Attr(hippo_cqa::constraint::AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(3)),
            }],
        ),
    ]
}

/// Canonical edge-set representation: sorted (constraint, vertices).
fn edge_set(g: &ConflictHypergraph) -> Vec<(usize, Vec<Vertex>)> {
    let mut edges: Vec<(usize, Vec<Vertex>)> = g
        .edges()
        .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
        .collect();
    edges.sort();
    edges
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..8, 0u32..4), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sharded_detection_matches_sequential(
        t_rows in arb_rows(50),
        s_rows in arb_rows(20),
        shards in 1usize..8,
        threads in 1usize..4,
    ) {
        let db = db_with(&t_rows, &s_rows);
        let cs = constraints();
        let (g_seq, s_seq) = detect_conflicts_with(
            db.catalog(),
            &cs,
            &DetectOptions { threads: 1, shards: 1 },
        ).unwrap();
        let (g_par, s_par) = detect_conflicts_with(
            db.catalog(),
            &cs,
            &DetectOptions { threads, shards },
        ).unwrap();

        // Same edge set + constraint attribution, exact stat totals.
        prop_assert_eq!(edge_set(&g_par), edge_set(&g_seq));
        prop_assert_eq!(s_par.combinations_checked, s_seq.combinations_checked);
        prop_assert_eq!(s_par.edges_emitted, s_seq.edges_emitted);
        prop_assert_eq!(s_par.shards_used, shards);

        // For a fixed shard count, edge ids are identical for any
        // worker count (thread scheduling must be invisible).
        let (g_one, _) = detect_conflicts_with(
            db.catalog(),
            &cs,
            &DetectOptions { threads: 1, shards },
        ).unwrap();
        prop_assert_eq!(g_par.edge_count(), g_one.edge_count());
        for (id, e) in g_par.edges() {
            prop_assert_eq!(e, g_one.edge(id), "edge id {} differs", id);
            prop_assert_eq!(g_par.edge_constraint(id), g_one.edge_constraint(id));
        }

        // Fact index agrees with the sequential build for every row.
        for (rel, rows) in [("t", &t_rows), ("s", &s_rows)] {
            for &(k, v) in rows.iter() {
                let row = vec![Value::Int(k as i64), Value::Int(v as i64)];
                let mut a = g_par.vertices_of_fact(rel, &row).to_vec();
                let mut b = g_seq.vertices_of_fact(rel, &row).to_vec();
                a.sort();
                b.sort();
                prop_assert_eq!(a, b, "vertices_of_fact {} {:?}", rel, row);
            }
        }
    }

    /// Ops: `0` insert into `t`, `1` insert into `s`, `2` delete from
    /// `t` (slot = `pick % slots`), `3` delete from `s`, `4` in-place
    /// update in `t`, `5` in-place update in `s`. The same sequence is
    /// replayed against a plain `Database` (tuple ids are
    /// deterministic), and the incrementally-maintained Hippo must match
    /// a from-scratch build on that final instance.
    #[test]
    fn incremental_redetect_matches_rebuild(
        t_rows in arb_rows(40),
        s_rows in arb_rows(16),
        ops in prop::collection::vec((0u32..6, 0u32..8, 0u32..4, 0u32..64), 0..16),
    ) {
        let mut hippo = Hippo::new(db_with(&t_rows, &s_rows), constraints()).unwrap();
        let mut mirror = db_with(&t_rows, &s_rows);
        // Ops that were actually applied (a delete of a tombstoned or
        // out-of-range tuple records nothing and must not be counted).
        let mut applied = 0usize;
        for &(kind, k, v, pick) in &ops {
            let table = if kind % 2 == 0 { "t" } else { "s" };
            let row = vec![Value::Int(k as i64), Value::Int(v as i64)];
            if kind < 2 {
                let got = hippo.insert_tuples(table, vec![row.clone()]).unwrap();
                let want = mirror.catalog_mut().table_mut(table).unwrap().insert(row).unwrap();
                prop_assert_eq!(got, vec![want], "tuple ids must replay identically");
                applied += 1;
            } else if kind < 4 {
                let slots = hippo.db().catalog().table(table).unwrap().slot_count();
                if slots == 0 {
                    continue;
                }
                let tid = TupleId((pick as usize % slots) as u32);
                let got = hippo.delete_tuples(table, &[tid]).unwrap();
                let want = mirror.catalog_mut().table_mut(table).unwrap().delete(tid);
                prop_assert_eq!(got, usize::from(want));
                applied += got;
            } else {
                // In-place update of a live tuple (recorded as
                // delete + insert of the same id).
                let slots = hippo.db().catalog().table(table).unwrap().slot_count();
                if slots == 0 {
                    continue;
                }
                let tid = TupleId((pick as usize % slots) as u32);
                if hippo.db().catalog().table(table).unwrap().get(tid).is_none() {
                    continue; // tombstoned slot: update would reject the batch
                }
                let got = hippo.update_tuples(table, vec![(tid, row.clone())]).unwrap();
                prop_assert_eq!(got, 1);
                mirror.catalog_mut().table_mut(table).unwrap().update(tid, row).unwrap();
                applied += 1;
            }
        }
        let stats = hippo.redetect().unwrap();
        prop_assert_eq!(stats.incremental, applied > 0, "delta path taken iff changes recorded");

        let reference = Hippo::new(mirror, constraints()).unwrap();
        prop_assert_eq!(edge_set(hippo.graph()), edge_set(reference.graph()));

        // Per-fact conflict vertices agree (as sets) for every live row.
        for table in ["t", "s"] {
            for (_, row) in reference.db().catalog().table(table).unwrap().iter() {
                let mut a = hippo.graph().vertices_of_fact(table, row).to_vec();
                let mut b = reference.graph().vertices_of_fact(table, row).to_vec();
                a.sort();
                b.sort();
                prop_assert_eq!(a, b, "vertices_of_fact {} {:?}", table, row);
            }
        }

        // End to end: identical consistent answers on both tables.
        for q in [SjudQuery::rel("t"), SjudQuery::rel("s")] {
            prop_assert_eq!(
                hippo.consistent_answers(&q).unwrap(),
                reference.consistent_answers(&q).unwrap(),
                "query {} diverged", q
            );
        }
    }
}
