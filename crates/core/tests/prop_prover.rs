//! Differential property tests for the parallel batched prover and the
//! conflict-closure verdict cache.
//!
//! Two invariants, each checked on randomized seeded FD + general-denial
//! workloads (FD on `t`, exclusion between `t` and `s`, CHECK denial on
//! `t`) across a small query zoo:
//!
//! 1. **Thread count is invisible** — for random prover worker counts,
//!    `consistent_answers_with_stats` returns the same answer rows *and*
//!    the same exact `AnswerStats` counters (prover calls, cache hits,
//!    prover-internal counters) as the single-threaded run, in both KG
//!    and full option modes.
//! 2. **Memoization is invisible** — with the closure-signature cache
//!    disabled, the answer set is identical; the cached run proves
//!    exactly `prover_calls − prover_cache_hits` tuples while the
//!    uncached run proves all of them.

use hippo_cqa::constraint::{Comparison, DenialConstraint, Term};
use hippo_cqa::pred::CmpOp;
use hippo_cqa::prelude::*;
use hippo_engine::{Column, DataType, Database, Row, TableSchema, Value};
use proptest::prelude::*;

fn db_with(t_rows: &[(u32, u32)], s_rows: &[(u32, u32)]) -> Database {
    let mut db = Database::new();
    for name in ["t", "s"] {
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    name,
                    vec![
                        Column::new("k", DataType::Int),
                        Column::new("v", DataType::Int),
                    ],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
    }
    let to_rows = |rows: &[(u32, u32)]| -> Vec<Row> {
        rows.iter()
            .map(|&(k, v)| vec![Value::Int(k as i64), Value::Int(v as i64)])
            .collect()
    };
    db.insert_rows("t", to_rows(t_rows)).unwrap();
    db.insert_rows("s", to_rows(s_rows)).unwrap();
    db
}

/// FD fast path + hash-joined general path + singleton general path.
fn constraints() -> Vec<DenialConstraint> {
    vec![
        DenialConstraint::functional_dependency("t", &[0], 1),
        DenialConstraint::exclusion("t", "s", &[(0, 0)]),
        DenialConstraint::check(
            "t",
            vec![Comparison {
                op: CmpOp::Ge,
                left: Term::Attr(hippo_cqa::constraint::AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(3)),
            }],
        ),
    ]
}

/// A small query zoo covering S, SD, SU and permutation shapes.
fn query(pick: u32) -> SjudQuery {
    match pick % 4 {
        0 => SjudQuery::rel("t"),
        1 => SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            2i64,
        ))),
        2 => SjudQuery::rel("t")
            .select(Pred::cmp_const(1, CmpOp::Ge, 1i64))
            .union(SjudQuery::rel("s")),
        _ => SjudQuery::rel("t").permute(vec![1, 0]),
    }
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..8, 0u32..4), 0..max)
}

/// The deterministic (thread-independent) slice of the stats.
#[allow(clippy::type_complexity)]
fn counters(
    s: &AnswerStats,
) -> (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
) {
    (
        s.candidates,
        s.filtered_consistent,
        s.prover_calls,
        s.prover_cache_hits,
        s.prover_cache_cross_hits,
        s.shards_used,
        s.membership_queries,
        s.membership_memo_hits,
        s.prover.tuples_checked,
        s.prover.membership_checks,
        s.prover.disjuncts_checked,
        s.prover.edge_visits,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn parallel_prover_matches_sequential(
        t_rows in arb_rows(50),
        s_rows in arb_rows(20),
        threads in 2usize..5,
        pick in 0u32..4,
        full in 0u32..2,
    ) {
        let q = query(pick);
        let base = if full == 1 { HippoOptions::full() } else { HippoOptions::kg() };
        let seq = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            base.clone().with_prover_threads(1),
        ).unwrap();
        let (ans_seq, st_seq) = seq.consistent_answers_with_stats(&q).unwrap();

        let par = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            base.with_prover_threads(threads),
        ).unwrap();
        let (ans_par, st_par) = par.consistent_answers_with_stats(&q).unwrap();

        prop_assert_eq!(ans_par, ans_seq, "answers diverged at threads={}", threads);
        prop_assert_eq!(counters(&st_par), counters(&st_seq),
            "stats diverged at threads={}", threads);
    }

    #[test]
    fn base_mode_parallel_matches_sequential(
        t_rows in arb_rows(50),
        s_rows in arb_rows(20),
        threads in 2usize..5,
        pick in 0u32..4,
    ) {
        // Base mode now runs the same sharded pipeline over a frozen
        // engine snapshot: answers *and* every counter — including the
        // SQL membership query/memo counts — must be bit-identical for
        // any worker count, and the answers must agree with KG mode.
        let q = query(pick);
        let seq = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::base().with_prover_threads(1),
        ).unwrap();
        let (ans_seq, st_seq) = seq.consistent_answers_with_stats(&q).unwrap();

        let par = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::base().with_prover_threads(threads),
        ).unwrap();
        let (ans_par, st_par) = par.consistent_answers_with_stats(&q).unwrap();

        prop_assert_eq!(&ans_par, &ans_seq, "base answers diverged at threads={}", threads);
        prop_assert_eq!(counters(&st_par), counters(&st_seq),
            "base stats diverged at threads={}", threads);

        let kg = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::kg().with_prover_threads(threads),
        ).unwrap();
        let (ans_kg, st_kg) = kg.consistent_answers_with_stats(&q).unwrap();
        prop_assert_eq!(ans_kg, ans_par, "base and KG disagree");
        prop_assert_eq!(st_kg.membership_queries, 0, "KG never issues membership SQL");
    }

    #[test]
    fn memoized_matches_unmemoized(
        t_rows in arb_rows(50),
        s_rows in arb_rows(20),
        threads in 1usize..5,
        pick in 0u32..4,
    ) {
        let q = query(pick);
        let cached = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::kg().with_prover_threads(threads),
        ).unwrap();
        let (ans_c, st_c) = cached.consistent_answers_with_stats(&q).unwrap();

        let raw = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::kg().with_prover_threads(threads).without_prover_cache(),
        ).unwrap();
        let (ans_r, st_r) = raw.consistent_answers_with_stats(&q).unwrap();

        prop_assert_eq!(ans_c, ans_r, "cache changed the answer set");
        prop_assert_eq!(st_c.prover_calls, st_r.prover_calls);
        prop_assert_eq!(st_r.prover_cache_hits, 0);
        // Cached run proves exactly the cache misses; uncached proves all.
        prop_assert_eq!(
            st_c.prover.tuples_checked + st_c.prover_cache_hits,
            st_c.prover_calls
        );
        prop_assert_eq!(st_r.prover.tuples_checked, st_r.prover_calls);
    }
}
