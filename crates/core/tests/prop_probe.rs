//! Differential property tests for index-backed membership probes.
//!
//! Base mode's per-candidate membership probe is compiled to a prepared
//! physical plan whose access path the engine's optimizer picks — an
//! `IndexLookup` when the relation carries a covering hash index, a
//! sequential scan otherwise. The optimizer must be **invisible**:
//! over random FD + general-denial workloads (indexed via primary-key
//! auto-indexes) and worker counts, answers and every `AnswerStats`
//! counter are bit-identical with index probes enabled and disabled —
//! only the `index_probes`/`scan_probes` split moves, and its total is
//! conserved. KG mode agrees on the answers throughout.

use hippo_cqa::constraint::DenialConstraint;
use hippo_cqa::pred::CmpOp;
use hippo_cqa::prelude::*;
use hippo_engine::{Column, DataType, Database, Row, TableSchema, Value};
use proptest::prelude::*;

/// `t` declares its (violated) FD key as PRIMARY KEY, so the engine
/// auto-builds a hash index on `k`; `s` stays unindexed — its probes
/// must fall back to scans even with index selection on.
fn db_with(t_rows: &[(u32, u32)], s_rows: &[(u32, u32)]) -> Database {
    let mut db = Database::new();
    for (name, pk) in [("t", &["k"] as &[&str]), ("s", &[])] {
        db.catalog_mut()
            .create_table(
                TableSchema::new(
                    name,
                    vec![
                        Column::new("k", DataType::Int),
                        Column::new("v", DataType::Int),
                    ],
                    pk,
                )
                .unwrap(),
            )
            .unwrap();
    }
    let to_rows = |rows: &[(u32, u32)]| -> Vec<Row> {
        rows.iter()
            .map(|&(k, v)| vec![Value::Int(k as i64), Value::Int(v as i64)])
            .collect()
    };
    db.insert_rows("t", to_rows(t_rows)).unwrap();
    db.insert_rows("s", to_rows(s_rows)).unwrap();
    db
}

fn constraints() -> Vec<DenialConstraint> {
    vec![
        DenialConstraint::functional_dependency("t", &[0], 1),
        DenialConstraint::exclusion("t", "s", &[(0, 0)]),
    ]
}

/// Shapes whose membership templates touch both the indexed and the
/// unindexed relation.
fn query(pick: u32) -> SjudQuery {
    match pick % 4 {
        0 => SjudQuery::rel("t"),
        1 => SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            2i64,
        ))),
        2 => SjudQuery::rel("t").diff(SjudQuery::rel("s")),
        _ => SjudQuery::rel("t").permute(vec![1, 0]),
    }
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..8, 0u32..4), 0..max)
}

/// Every `AnswerStats` counter that must not move when the access path
/// changes (everything except the index/scan split itself).
fn counters(s: &AnswerStats) -> Vec<usize> {
    vec![
        s.candidates,
        s.filtered_consistent,
        s.prover_calls,
        s.prover_cache_hits,
        s.prover_cache_cross_hits,
        s.shards_used,
        s.membership_queries,
        s.membership_memo_hits,
        s.answers,
        s.prover.tuples_checked,
        s.prover.membership_checks,
        s.prover.disjuncts_checked,
        s.prover.edge_visits,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn index_probes_are_invisible_to_answers_and_stats(
        t_rows in arb_rows(50),
        s_rows in arb_rows(20),
        pick in 0u32..4,
        threads_pick in 0u32..2,
    ) {
        let threads = [1usize, 4][threads_pick as usize];
        let q = query(pick);
        let indexed = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::base().with_prover_threads(threads),
        ).unwrap();
        let (ans_idx, st_idx) = indexed.consistent_answers_with_stats(&q).unwrap();

        let scanned = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::base().without_index_probes().with_prover_threads(threads),
        ).unwrap();
        let (ans_scan, st_scan) = scanned.consistent_answers_with_stats(&q).unwrap();

        prop_assert_eq!(&ans_idx, &ans_scan, "optimizer changed answers at threads={}", threads);
        prop_assert_eq!(counters(&st_idx), counters(&st_scan),
            "optimizer changed counters at threads={}", threads);
        // The access-path split is the only thing that moves, and its
        // total is conserved: every executed probe is exactly one of
        // the two kinds.
        prop_assert_eq!(st_idx.index_probes + st_idx.scan_probes, st_idx.membership_queries);
        prop_assert_eq!(st_scan.index_probes, 0, "disabled optimizer still indexed");
        prop_assert_eq!(st_scan.scan_probes, st_scan.membership_queries);

        // KG mode issues no probes at all and agrees on the answers.
        let kg = Hippo::with_options(
            db_with(&t_rows, &s_rows),
            constraints(),
            HippoOptions::kg().with_prover_threads(threads),
        ).unwrap();
        let (ans_kg, st_kg) = kg.consistent_answers_with_stats(&q).unwrap();
        prop_assert_eq!(ans_kg, ans_idx, "base and KG disagree");
        prop_assert_eq!((st_kg.index_probes, st_kg.scan_probes), (0, 0));
    }

    #[test]
    fn probes_on_indexed_relations_use_the_index(
        t_rows in arb_rows(50),
        pick in 0u32..2,
    ) {
        // Queries over `t` only: every literal targets the indexed
        // relation, so with index probes on, *no* executed probe scans.
        let q = query(pick); // picks 0/1 stay within t
        let hippo = Hippo::with_options(
            db_with(&t_rows, &[]),
            vec![DenialConstraint::functional_dependency("t", &[0], 1)],
            HippoOptions::base(),
        ).unwrap();
        let (_, st) = hippo.consistent_answers_with_stats(&q).unwrap();
        prop_assert_eq!(st.scan_probes, 0, "indexed relation fell back to a scan: {}", st);
        prop_assert_eq!(st.index_probes, st.membership_queries);
    }
}
