//! Differential property test for **incremental redetection under
//! restricted foreign keys** (PR 4's orphan-count index).
//!
//! Random batches of recorded inserts/deletes/updates against a
//! parent/child schema (child also carries an FD, so denial edges and
//! orphan edges interleave in one graph) are reconciled with
//! [`Hippo::redetect`], which must stay on the incremental path; after
//! every batch the graph must match a forced full rebuild
//! ([`Hippo::redetect_full`]) edge-for-edge, and the consistent answers
//! must be unchanged by which path produced the graph.

use hippo_cqa::hypergraph::Vertex;
use hippo_cqa::prelude::*;
use hippo_engine::{Database, Row, TupleId, Value};
use proptest::prelude::*;

fn setup(parents: &[u32], children: &[(u32, u32)]) -> Hippo {
    let mut db = Database::new();
    db.execute("CREATE TABLE parent (id INT)").unwrap();
    db.execute("CREATE TABLE child (pid INT, v INT)").unwrap();
    db.insert_rows(
        "parent",
        parents
            .iter()
            .map(|&p| vec![Value::Int(p as i64)])
            .collect(),
    )
    .unwrap();
    db.insert_rows(
        "child",
        children
            .iter()
            .map(|&(p, v)| vec![Value::Int(p as i64), Value::Int(v as i64)])
            .collect(),
    )
    .unwrap();
    let fk = ForeignKey::new("child", vec![0], "parent", vec![0]);
    // FD on the child: pid → v. Denial edges and orphan edges coexist.
    let fd = DenialConstraint::functional_dependency("child", &[0], 1);
    Hippo::with_foreign_keys(db, vec![fd], vec![fk]).unwrap()
}

/// Sorted (constraint, vertex-set) rendering — the graph's identity.
fn canon(h: &Hippo) -> Vec<(usize, Vec<Vertex>)> {
    let g = h.graph();
    let mut edges: Vec<(usize, Vec<Vertex>)> = g
        .edges()
        .map(|(id, e)| (g.edge_constraint(id), e.to_vec()))
        .collect();
    edges.sort();
    edges
}

/// Live tuple ids of a table, in slot order.
fn live_tids(h: &Hippo, table: &str) -> Vec<TupleId> {
    h.db()
        .catalog()
        .table(table)
        .unwrap()
        .iter()
        .map(|(tid, _)| tid)
        .collect()
}

/// Apply one encoded op through the *recorded* mutation API.
fn apply(h: &mut Hippo, selector: u32, a: u32, b: u32) {
    let int_row = |xs: &[i64]| -> Row { xs.iter().map(|&x| Value::Int(x)).collect() };
    match selector % 6 {
        0 => {
            h.insert_tuples("parent", vec![int_row(&[(a % 6) as i64])])
                .unwrap();
        }
        1 => {
            let tids = live_tids(h, "parent");
            if !tids.is_empty() {
                let tid = tids[a as usize % tids.len()];
                h.delete_tuples("parent", &[tid]).unwrap();
            }
        }
        2 | 3 => {
            h.insert_tuples("child", vec![int_row(&[(a % 8) as i64, (b % 4) as i64])])
                .unwrap();
        }
        4 => {
            let tids = live_tids(h, "child");
            if !tids.is_empty() {
                let tid = tids[a as usize % tids.len()];
                h.delete_tuples("child", &[tid]).unwrap();
            }
        }
        _ => {
            let tids = live_tids(h, "child");
            if !tids.is_empty() {
                let tid = tids[a as usize % tids.len()];
                h.update_tuples(
                    "child",
                    vec![(tid, int_row(&[(a % 8) as i64, (b % 4) as i64]))],
                )
                .unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn fk_incremental_redetect_matches_full_rebuild(
        parents in prop::collection::vec(0u32..6, 0..5),
        children in prop::collection::vec((0u32..8, 0u32..4), 0..12),
        batches in prop::collection::vec(
            prop::collection::vec((0u32..6, 0u32..16, 0u32..8), 1..6),
            1..4,
        ),
    ) {
        let mut hippo = setup(&parents, &children);
        let q = SjudQuery::rel("child");
        for batch in batches {
            for (selector, a, b) in batch {
                apply(&mut hippo, selector, a, b);
            }
            let stats = hippo.redetect().unwrap();
            prop_assert!(
                stats.incremental,
                "recorded fk changes must take the incremental path"
            );
            let inc_edges = canon(&hippo);
            let inc_answers = hippo.consistent_answers(&q).unwrap();
            // Forced full rebuild on the same database must agree.
            hippo.redetect_full().unwrap();
            prop_assert_eq!(inc_edges, canon(&hippo), "graphs diverged");
            prop_assert_eq!(
                inc_answers,
                hippo.consistent_answers(&q).unwrap(),
                "answers diverged"
            );
        }
    }
}
