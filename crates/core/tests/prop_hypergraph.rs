//! Differential property tests for the CSR conflict hypergraph.
//!
//! The CSR + interned-fact representation must be observationally
//! identical to the obvious reference implementation (per-edge `Vec`s, a
//! `HashSet` for dedup, plain adjacency and fact maps — the shape the
//! seed code used). Random edge soups are inserted into both and every
//! query surface is compared: `edges_of`, `is_independent`,
//! `is_blocked_by`, `vertices_of_fact`, plus edge/vertex counts and the
//! dedup behaviour itself. `finalize` (CSR freeze) and post-freeze
//! insertion (thaw) are exercised at a random split point.

use hippo_cqa::hypergraph::{ConflictHypergraph, Vertex};
use hippo_engine::{Row, TupleId, Value};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// The reference implementation: the straightforward representation.
#[derive(Default)]
struct NaiveGraph {
    edges: Vec<Vec<Vertex>>,
    edge_set: HashSet<Vec<Vertex>>,
    adjacency: HashMap<Vertex, Vec<usize>>,
    fact_vertices: HashMap<(u32, Row), Vec<Vertex>>,
}

impl NaiveGraph {
    fn add_edge(&mut self, vertices: &[Vertex], values: &[&Row]) -> Option<usize> {
        for (v, row) in vertices.iter().zip(values) {
            let entry = self
                .fact_vertices
                .entry((v.rel, (*row).clone()))
                .or_default();
            if !entry.contains(v) {
                entry.push(*v);
            }
        }
        let mut sorted = vertices.to_vec();
        sorted.sort();
        sorted.dedup();
        if self.edge_set.contains(&sorted) {
            return None;
        }
        let id = self.edges.len();
        for v in &sorted {
            self.adjacency.entry(*v).or_default().push(id);
        }
        self.edge_set.insert(sorted.clone());
        self.edges.push(sorted);
        Some(id)
    }

    fn edges_of(&self, v: Vertex) -> &[usize] {
        self.adjacency.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    fn is_independent(&self, set: &HashSet<Vertex>) -> bool {
        self.edges
            .iter()
            .all(|e| !e.iter().all(|v| set.contains(v)))
    }

    fn is_blocked_by(&self, v: Vertex, s: &HashSet<Vertex>) -> bool {
        self.edges_of(v)
            .iter()
            .any(|&eid| self.edges[eid].iter().all(|u| *u == v || s.contains(u)))
    }

    fn vertices_of_fact(&self, rel: u32, values: &Row) -> &[Vertex] {
        self.fact_vertices
            .get(&(rel, values.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Vertex universe: 2 relations × 10 tuple ids. Each vertex carries a
/// deterministic row; `tid % 4` makes distinct tuples share fact values,
/// exercising the fact → multiple-vertices case.
fn vx(rel: u32, tid: u32) -> Vertex {
    Vertex {
        rel,
        tid: TupleId(tid),
    }
}

fn row_of(v: Vertex) -> Row {
    vec![Value::Int(v.rel as i64), Value::Int((v.tid.0 % 4) as i64)]
}

fn arb_edges() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    prop::collection::vec(prop::collection::vec((0u32..2, 0u32..10), 1..4), 0..24)
}

fn arb_vertex_set() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..2, 0u32..10), 0..6)
}

fn build_both(edges: &[Vec<(u32, u32)>], freeze_at: usize) -> (ConflictHypergraph, NaiveGraph) {
    let mut g = ConflictHypergraph::new();
    g.intern("r0");
    g.intern("r1");
    let mut n = NaiveGraph::default();
    for (i, e) in edges.iter().enumerate() {
        if i == freeze_at {
            g.finalize(); // adding more edges afterwards must thaw correctly
        }
        let vertices: Vec<Vertex> = e.iter().map(|&(r, t)| vx(r, t)).collect();
        let rows: Vec<Row> = vertices.iter().map(|&v| row_of(v)).collect();
        let refs: Vec<&Row> = rows.iter().collect();
        let got = g.add_edge(&vertices, &refs, i);
        let want = n.add_edge(&vertices, &refs);
        assert_eq!(
            got.is_some(),
            want.is_some(),
            "dedup disagreement on edge {i}"
        );
    }
    g.finalize();
    (g, n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn csr_matches_reference(
        edges in arb_edges(),
        freeze_at in 0usize..24,
        probe in arb_vertex_set(),
        blocked_v in (0u32..2, 0u32..10),
    ) {
        let (g, n) = build_both(&edges, freeze_at);

        // Counts.
        prop_assert_eq!(g.edge_count(), n.edges.len());
        prop_assert_eq!(g.conflicting_vertex_count(), n.adjacency.len());
        prop_assert_eq!(
            g.total_edge_size(),
            n.edges.iter().map(Vec::len).sum::<usize>()
        );

        // Edge contents (CSR edge ids are assigned in insertion order,
        // matching the reference exactly).
        for (id, edge) in g.edges() {
            prop_assert_eq!(edge, n.edges[id as usize].as_slice());
        }

        // Adjacency over the whole vertex universe (including non-members).
        for rel in 0..2u32 {
            for tid in 0..10u32 {
                let v = vx(rel, tid);
                let got: Vec<usize> = g.edges_of(v).iter().map(|&e| e as usize).collect();
                prop_assert_eq!(got, n.edges_of(v).to_vec(), "edges_of {:?}", v);
                prop_assert_eq!(g.is_conflicting(v), n.adjacency.contains_key(&v));
            }
        }

        // Fact index over every possible fact value, hits and misses.
        for rel in 0..2u32 {
            for tid in 0..10u32 {
                let values = row_of(vx(rel, tid));
                let name = if rel == 0 { "r0" } else { "r1" };
                prop_assert_eq!(
                    g.vertices_of_fact(name, &values),
                    n.vertices_of_fact(rel, &values),
                    "vertices_of_fact {} {:?}", name, values
                );
            }
        }

        // Independence and blocking on a random probe set.
        let set: HashSet<Vertex> = probe.iter().map(|&(r, t)| vx(r, t)).collect();
        prop_assert_eq!(g.is_independent(&set), n.is_independent(&set));
        let bv = vx(blocked_v.0, blocked_v.1);
        prop_assert_eq!(
            g.is_blocked_by(bv, &set),
            n.is_blocked_by(bv, &set),
            "is_blocked_by {:?}", bv
        );
    }
}

/// `HippoOptions::base` / `kg` / `full` must agree on seeded random
/// workloads — end-to-end differential check over the interned hot path
/// (base exercises `SqlMembership`, kg the literal-indexed flags, full
/// additionally the core filter).
#[test]
fn option_levels_agree_on_seeded_workloads() {
    use hippo_cqa::prelude::*;
    use hippo_engine::Database;

    for seed in [7u64, 41, 1234] {
        let spec = FdTableSpec::new("t", 300, 0.08, seed);
        let queries = [
            SjudQuery::rel("t"),
            SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 500i64)),
            SjudQuery::rel("t").diff(SjudQuery::rel("t").select(Pred::cmp_const(
                2,
                CmpOp::Lt,
                300i64,
            ))),
            SjudQuery::rel("t")
                .select(Pred::cmp_const(1, CmpOp::Lt, 500_000i64))
                .union(SjudQuery::rel("t").select(Pred::cmp_const(2, CmpOp::Ge, 800i64))),
            SjudQuery::rel("t").permute(vec![2, 1, 0]),
        ];
        let mut answers_by_level = Vec::new();
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let mut db = Database::new();
            spec.populate(&mut db).unwrap();
            let hippo = Hippo::with_options(db, vec![spec.fd()], opts.clone()).unwrap();
            let per_query: Vec<_> = queries
                .iter()
                .map(|q| hippo.consistent_answers(q).unwrap())
                .collect();
            answers_by_level.push((opts, per_query));
        }
        let (_, reference) = &answers_by_level[0];
        for (opts, got) in &answers_by_level[1..] {
            assert_eq!(got, reference, "options {opts:?} diverged on seed {seed}");
        }
    }
}
