//! Integration tests for the SQL-facing API (`consistent_answers_sql`) and
//! the restricted foreign-key extension, end to end through the umbrella
//! crate.

use hippo::cqa::naive::naive_consistent_answers;
use hippo::cqa::prelude::*;
use hippo::engine::{Database, Value};

fn inventory_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE parts (pid INT, weight INT)")
        .unwrap();
    db.execute("CREATE TABLE stock (pid INT, qty INT)").unwrap();
    db.execute("INSERT INTO parts VALUES (1, 10), (1, 12), (2, 20), (3, 30)")
        .unwrap();
    db.execute("INSERT INTO stock VALUES (1, 5), (2, 7), (9, 1)")
        .unwrap();
    db
}

#[test]
fn sql_text_to_consistent_answers() {
    let constraints = vec![DenialConstraint::functional_dependency("parts", &[0], 1)];
    let hippo = Hippo::new(inventory_db(), constraints.clone()).unwrap();

    let answers = hippo.consistent_answers_sql("SELECT * FROM parts").unwrap();
    assert_eq!(
        answers,
        vec![
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(3), Value::Int(30)],
        ],
        "part 1's weight is in doubt"
    );

    // Join through SQL.
    let answers = hippo
        .consistent_answers_sql(
            "SELECT p.pid, p.weight, s.pid, s.qty FROM parts p \
             INNER JOIN stock s ON p.pid = s.pid",
        )
        .unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0][0], Value::Int(2));

    // Union through SQL (the class rewriting cannot express).
    let answers = hippo
        .consistent_answers_sql(
            "SELECT * FROM parts WHERE weight < 15 UNION SELECT * FROM parts WHERE weight > 25",
        )
        .unwrap();
    assert_eq!(answers, vec![vec![Value::Int(3), Value::Int(30)]]);

    // Agreement with ground truth for each.
    let q = sjud_from_sql("SELECT * FROM parts", hippo.db().catalog()).unwrap();
    let truth = naive_consistent_answers(&q, hippo.db().catalog(), hippo.graph());
    assert_eq!(hippo.consistent_answers(&q).unwrap(), truth);
}

#[test]
fn sql_outside_class_is_rejected_with_explanation() {
    let hippo = Hippo::new(inventory_db(), vec![]).unwrap();
    let err = hippo
        .consistent_answers_sql("SELECT pid FROM parts")
        .unwrap_err();
    assert!(err.message.contains("existential"), "{err}");
    let err = hippo
        .consistent_answers_sql("SELECT COUNT(*) FROM parts")
        .unwrap_err();
    assert!(
        err.message.contains("SJUD") || err.message.contains("plain columns"),
        "{err}"
    );
}

#[test]
fn foreign_keys_combine_with_fds_end_to_end() {
    let constraints = vec![DenialConstraint::functional_dependency("parts", &[0], 1)];
    // stock.pid references parts.pid? No — parts has an FD, so parts cannot
    // be a parent under the restriction. Reference the other way: build a
    // clean parent.
    let mut db = inventory_db();
    db.execute("CREATE TABLE suppliers (sid INT)").unwrap();
    db.execute("INSERT INTO suppliers VALUES (1), (2)").unwrap();
    db.execute("CREATE TABLE shipments (sid INT, pid INT)")
        .unwrap();
    db.execute("INSERT INTO shipments VALUES (1, 1), (2, 2), (7, 3)")
        .unwrap();

    let fks = vec![ForeignKey::new("shipments", vec![0], "suppliers", vec![0])];
    let hippo = Hippo::with_foreign_keys(db, constraints, fks).unwrap();

    // Shipment (7,3) is orphaned (supplier 7 does not exist): a singleton
    // edge, so it is in no repair.
    let answers = hippo
        .consistent_answers(&SjudQuery::rel("shipments"))
        .unwrap();
    assert_eq!(answers.len(), 2);
    assert!(answers.iter().all(|r| r[0] != Value::Int(7)));

    // The FD on parts still works in the same system.
    let answers = hippo.consistent_answers(&SjudQuery::rel("parts")).unwrap();
    assert_eq!(answers.len(), 2);
}

#[test]
fn foreign_key_restriction_enforced_end_to_end() {
    let mut db = inventory_db();
    db.execute("CREATE TABLE shipments (pid INT)").unwrap();
    // parts carries an FD, so it cannot be an FK parent.
    let result = Hippo::with_foreign_keys(
        db,
        vec![DenialConstraint::functional_dependency("parts", &[0], 1)],
        vec![ForeignKey::new("shipments", vec![0], "parts", vec![0])],
    );
    let err = match result {
        Err(e) => e,
        Ok(_) => panic!("restriction should have been rejected"),
    };
    assert!(err.message.contains("parent relation"), "{err}");
}

#[test]
fn intersect_sql_answers_match_algebra() {
    let hippo = Hippo::new(
        inventory_db(),
        vec![DenialConstraint::functional_dependency("parts", &[0], 1)],
    )
    .unwrap();
    let via_sql = hippo
        .consistent_answers_sql(
            "SELECT * FROM parts INTERSECT SELECT * FROM parts WHERE weight >= 20",
        )
        .unwrap();
    let q = SjudQuery::rel("parts").select(Pred::cmp_const(1, CmpOp::Ge, 20i64));
    let direct = hippo.consistent_answers(&q).unwrap();
    assert_eq!(via_sql, direct);
}
