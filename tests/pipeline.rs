//! Cross-crate integration tests: the full Figure-1 pipeline (experiment
//! F1) — SQL text through the engine, conflict detection, enveloping,
//! proving — plus agreement between every strategy on curated instances.

use hippo::cqa::detect::detect_conflicts;
use hippo::cqa::naive::{conflict_free_answers, naive_consistent_answers, plain_answers};
use hippo::cqa::prelude::*;
use hippo::engine::{Database, Value};

fn emp_db(rows: &[(&str, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE emp (name TEXT, salary INT)")
        .unwrap();
    for (n, s) in rows {
        db.execute(&format!("INSERT INTO emp VALUES ('{n}', {s})"))
            .unwrap();
    }
    db
}

#[test]
fn f1_pipeline_end_to_end() {
    // Load through SQL (as a JDBC client would), constrain, query.
    let db = emp_db(&[("ann", 100), ("ann", 200), ("bob", 300)]);
    let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
    let hippo = Hippo::new(db, vec![fd]).unwrap();

    // Stage 1: conflict detection ran at construction.
    assert_eq!(hippo.graph().edge_count(), 1);
    assert!(hippo.detect_stats().combinations_checked > 0);

    // Stage 2+3: envelope is produced as SQL and evaluated by the engine.
    let q = SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
        1,
        CmpOp::Lt,
        150i64,
    )));
    let env = envelope(&q);
    let env_sql = env.to_sql(hippo.db().catalog()).unwrap();
    assert!(
        env_sql.contains("SELECT"),
        "envelope ships as SQL: {env_sql}"
    );
    let candidates = hippo.db().query(&env_sql).unwrap();
    assert_eq!(candidates.rows.len(), 3, "envelope drops the subtrahend");

    // Stage 4: prover filters candidates into the answer set.
    let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
    assert_eq!(answers, vec![vec![Value::text("bob"), Value::Int(300)]]);
    assert_eq!(stats.candidates, 3);
    assert!(stats.answers <= stats.candidates);
}

#[test]
fn all_strategies_agree_where_applicable() {
    let rows: Vec<(String, i64)> = (0..30)
        .map(|i| (format!("e{}", i % 20), 100 + (i * 37) % 400))
        .collect();
    let rows: Vec<(&str, i64)> = rows.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];

    let queries = vec![
        SjudQuery::rel("emp"),
        SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 250i64)),
        SjudQuery::rel("emp").diff(SjudQuery::rel("emp").select(Pred::cmp_const(
            1,
            CmpOp::Lt,
            250i64,
        ))),
    ];
    for q in queries {
        let db = emp_db(&rows);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        let rewritten = rewritten_answers(&q, &constraints, &db).unwrap();
        assert_eq!(rewritten, truth, "rewriting vs truth for {q}");
        for opts in [
            HippoOptions::base(),
            HippoOptions::kg(),
            HippoOptions::full(),
        ] {
            let hippo =
                Hippo::with_options(emp_db(&rows), constraints.clone(), opts.clone()).unwrap();
            assert_eq!(hippo.consistent_answers(&q).unwrap(), truth, "{q} {opts:?}");
        }
    }
}

#[test]
fn d1_cqa_between_strawman_and_plain_for_monotone_queries() {
    // For monotone (SJU) queries: strawman ⊆ consistent ⊆ plain.
    let rows: Vec<(String, i64)> = (0..40)
        .map(|i| (format!("e{}", i % 25), 100 + (i * 53) % 500))
        .collect();
    let rows: Vec<(&str, i64)> = rows.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let db = emp_db(&rows);
    let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
    let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();

    let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 200i64));
    let straw = conflict_free_answers(&q, db.catalog(), &g);
    let cqa = naive_consistent_answers(&q, db.catalog(), &g);
    let plain = plain_answers(&q, db.catalog());
    for r in &straw {
        assert!(cqa.contains(r), "strawman row {r:?} must be consistent");
    }
    for r in &cqa {
        assert!(
            plain.contains(r),
            "consistent row {r:?} must be a plain answer"
        );
    }
}

#[test]
fn exclusion_and_fd_mix_three_relations() {
    let mut db = Database::new();
    db.execute("CREATE TABLE staff (name TEXT, grade INT)")
        .unwrap();
    db.execute("CREATE TABLE external (name TEXT, org TEXT)")
        .unwrap();
    db.execute("CREATE TABLE audit (name TEXT, grade INT)")
        .unwrap();
    db.execute("INSERT INTO staff VALUES ('ann', 1), ('ann', 2), ('bob', 3), ('cyd', 4)")
        .unwrap();
    db.execute("INSERT INTO external VALUES ('cyd', 'acme'), ('dee', 'evil')")
        .unwrap();
    db.execute("INSERT INTO audit VALUES ('ann', 1), ('bob', 3)")
        .unwrap();

    let constraints = vec![
        DenialConstraint::functional_dependency("staff", &[0], 1),
        DenialConstraint::exclusion("staff", "external", &[(0, 0)]),
    ];
    let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
    // ann: FD conflict; cyd: exclusion conflict with external row.
    assert_eq!(g.edge_count(), 2);

    let q = SjudQuery::rel("staff");
    let truth = naive_consistent_answers(&q, db.catalog(), &g);
    assert_eq!(truth, vec![vec![Value::text("bob"), Value::Int(3)]]);

    let hippo = Hippo::new(db, constraints).unwrap();
    assert_eq!(hippo.consistent_answers(&q).unwrap(), truth);

    // Join staff × audit on name: only bob joins consistently.
    let q = SjudQuery::rel("staff")
        .product(SjudQuery::rel("audit"))
        .select(Pred::cmp_cols(0, CmpOp::Eq, 2));
    let answers = hippo.consistent_answers(&q).unwrap();
    let truth = naive_consistent_answers(&q, hippo.db().catalog(), hippo.graph());
    assert_eq!(answers, truth);
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0][0], Value::text("bob"));
}

#[test]
fn sql_interface_round_trip_via_umbrella_crate() {
    // The umbrella crate re-exports everything needed for a downstream user.
    let parsed = hippo::sql::parse_query("SELECT a FROM t WHERE a > 1").unwrap();
    let printed = hippo::sql::print_query(&parsed);
    assert_eq!(hippo::sql::parse_query(&printed).unwrap(), parsed);
}

#[test]
fn mutation_then_redetect_keeps_answers_correct() {
    let db = emp_db(&[("ann", 100), ("bob", 300)]);
    let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
    let mut hippo = Hippo::new(db, vec![fd]).unwrap();
    let q = SjudQuery::rel("emp");
    assert_eq!(hippo.consistent_answers(&q).unwrap().len(), 2);

    hippo
        .db_mut()
        .execute("INSERT INTO emp VALUES ('bob', 999)")
        .unwrap();
    hippo.redetect().unwrap();
    let answers = hippo.consistent_answers(&q).unwrap();
    assert_eq!(answers, vec![vec![Value::text("ann"), Value::Int(100)]]);
    let truth = naive_consistent_answers(&q, hippo.db().catalog(), hippo.graph());
    assert_eq!(answers, truth);
}

#[test]
fn large_consistent_instance_fast_path() {
    // 5k rows, no conflicts: everything flows through the core filter.
    let mut db = Database::new();
    db.execute("CREATE TABLE big (k INT, v INT)").unwrap();
    let rows: Vec<Vec<Value>> = (0..5000)
        .map(|i| vec![Value::Int(i), Value::Int(i * 7)])
        .collect();
    db.insert_rows("big", rows).unwrap();
    let fd = DenialConstraint::functional_dependency("big", &[0], 1);
    let hippo = Hippo::new(db, vec![fd]).unwrap();
    let (answers, stats) = hippo
        .consistent_answers_with_stats(&SjudQuery::rel("big"))
        .unwrap();
    assert_eq!(answers.len(), 5000);
    assert_eq!(stats.prover_calls, 0);
    assert_eq!(stats.filtered_consistent, 5000);
}
