//! Property-based tests over randomized instances and queries.
//!
//! The central invariants of the system:
//! * repairs are independent and maximal;
//! * Hippo (every optimization level) ≡ naive repair-enumeration CQA;
//! * core filter ⊆ consistent answers ⊆ envelope;
//! * query rewriting ≡ ground truth on its supported class;
//! * SJUD SQL rendering ≡ direct algebra evaluation.

use hippo::cqa::corefilter::core_filter_on_catalog;
use hippo::cqa::detect::detect_conflicts;
use hippo::cqa::naive::naive_consistent_answers;
use hippo::cqa::prelude::*;
use hippo::engine::{Database, Row, Value};
use proptest::prelude::*;
use std::collections::HashSet;

/// A small random instance: emp(name:int, salary:int) with values from a
/// narrow domain so conflicts happen often but repairs stay enumerable.
fn arb_instance() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, 0i64..4), 0..12)
}

fn build_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE emp (name INT, salary INT)")
        .unwrap();
    // Deduplicate: the theory assumes set instances.
    let unique: HashSet<(i64, i64)> = rows.iter().copied().collect();
    db.insert_rows(
        "emp",
        unique
            .into_iter()
            .map(|(n, s)| vec![Value::Int(n), Value::Int(s)])
            .collect(),
    )
    .unwrap();
    db
}

/// A small random SJUD query over emp.
fn arb_query() -> impl Strategy<Value = SjudQuery> {
    let leaf = Just(SjudQuery::rel("emp"));
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), 0i64..4).prop_map(|(q, c)| q.select(Pred::cmp_const(1, CmpOp::Ge, c))),
            (inner.clone(), 0i64..6).prop_map(|(q, c)| q.select(Pred::cmp_const(0, CmpOp::Eq, c))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
            inner.clone().prop_map(|q| q.permute(vec![1, 0])),
        ]
    })
    // Keep arity 2 everywhere: unions/diffs of same-shaped subqueries.
    .prop_filter("arity-2 only", query_arity_ok)
}

fn query_arity_ok(q: &SjudQuery) -> bool {
    fn arity(q: &SjudQuery) -> Option<usize> {
        match q {
            SjudQuery::Rel(_) => Some(2),
            SjudQuery::Select { input, .. } => arity(input),
            SjudQuery::Product(l, r) => Some(arity(l)? + arity(r)?),
            SjudQuery::Union(l, r) | SjudQuery::Diff(l, r) => {
                let (a, b) = (arity(l)?, arity(r)?);
                (a == b).then_some(a)
            }
            SjudQuery::Permute { input, perm } => {
                let a = arity(input)?;
                (perm.iter().all(|&p| p < a) && (0..a).all(|c| perm.contains(&c)))
                    .then_some(perm.len())
            }
        }
    }
    arity(q).is_some()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn repairs_are_independent_and_maximal(rows in arb_instance()) {
        let db = build_db(&rows);
        let fd = [DenialConstraint::functional_dependency("emp", &[0], 1)];
        let (g, _) = detect_conflicts(db.catalog(), &fd).unwrap();
        let repairs = enumerate_repairs(&g, None);
        prop_assert!(!repairs.is_empty(), "at least one repair always exists");
        for r in &repairs {
            prop_assert!(is_repair(&g, r));
        }
        // Repairs are pairwise incomparable (no repair contains another).
        for a in &repairs {
            for b in &repairs {
                if a != b {
                    prop_assert!(!a.is_subset(b), "repairs must be ⊆-incomparable");
                }
            }
        }
    }

    #[test]
    fn hippo_equals_naive_ground_truth(rows in arb_instance(), q in arb_query()) {
        let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
        let db = build_db(&rows);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        for opts in [HippoOptions::base(), HippoOptions::kg(), HippoOptions::full()] {
            let hippo = Hippo::with_options(build_db(&rows), constraints.clone(), opts.clone()).unwrap();
            let got = hippo.consistent_answers(&q).unwrap();
            prop_assert_eq!(&got, &truth, "query {} opts {:?}", q, opts);
        }
    }

    #[test]
    fn filter_subset_consistent_subset_envelope(rows in arb_instance(), q in arb_query()) {
        let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
        let db = build_db(&rows);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let truth: HashSet<Row> =
            naive_consistent_answers(&q, db.catalog(), &g).into_iter().collect();
        // core filter ⊆ consistent
        for row in core_filter_on_catalog(&q, db.catalog(), &g) {
            prop_assert!(truth.contains(&row), "filter overclaims {:?} for {}", row, q);
        }
        // consistent ⊆ envelope(D)
        let env_rows: HashSet<Row> =
            envelope(&q).eval_on_catalog(db.catalog()).unwrap().into_iter().collect();
        for row in &truth {
            prop_assert!(env_rows.contains(row), "envelope misses {:?} for {}", row, q);
        }
    }

    #[test]
    fn rewriting_equals_truth_on_supported_class(rows in arb_instance(), sel in 0i64..4) {
        let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
        let db = build_db(&rows);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        // An SJD query: σ(emp) − σ(emp).
        let q = SjudQuery::rel("emp")
            .select(Pred::cmp_const(1, CmpOp::Ge, sel))
            .diff(SjudQuery::rel("emp").select(Pred::cmp_const(0, CmpOp::Eq, sel)));
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        let rewritten = rewritten_answers(&q, &constraints, &db).unwrap();
        prop_assert_eq!(rewritten, truth);
    }

    #[test]
    fn sql_rendering_matches_algebra_eval(rows in arb_instance(), q in arb_query()) {
        let db = build_db(&rows);
        let sql = q.to_sql(db.catalog()).unwrap();
        let mut via_sql = db.query(&sql).unwrap().rows;
        via_sql.sort();
        via_sql.dedup();
        let direct = q.eval_on_catalog(db.catalog()).unwrap();
        prop_assert_eq!(via_sql, direct, "query {} sql {}", q, sql);
    }

    #[test]
    fn consistent_answers_hold_in_every_repair(rows in arb_instance(), q in arb_query()) {
        let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
        let db = build_db(&rows);
        let hippo = Hippo::new(db, constraints).unwrap();
        let answers = hippo.consistent_answers(&q).unwrap();
        let repairs = enumerate_repairs(hippo.graph(), None);
        for kept in &repairs {
            let inst = hippo::cqa::repair::repair_instance(
                hippo.db().catalog(), hippo.graph(), kept);
            let result: HashSet<Row> = q.eval_over(&inst).into_iter().collect();
            for a in &answers {
                prop_assert!(result.contains(a),
                    "answer {:?} missing from a repair for {}", a, q);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Two-constraint mix: FD plus a CHECK denial — exercises singleton
    /// edges interacting with pair edges (the hard case for the prover's
    /// blocking logic).
    #[test]
    fn hippo_equals_naive_with_check_constraints(rows in arb_instance(), q in arb_query()) {
        let chk = DenialConstraint::check(
            "emp",
            vec![Comparison {
                op: CmpOp::Eq,
                left: Term::Attr(AttrRef { atom: 0, col: 1 }),
                right: Term::Const(Value::Int(0)),
            }],
        );
        let constraints = vec![
            DenialConstraint::functional_dependency("emp", &[0], 1),
            chk,
        ];
        let db = build_db(&rows);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        for opts in [HippoOptions::kg(), HippoOptions::full()] {
            let hippo = Hippo::with_options(build_db(&rows), constraints.clone(), opts.clone()).unwrap();
            prop_assert_eq!(hippo.consistent_answers(&q).unwrap(), truth.clone(),
                "query {} opts {:?}", q, opts);
        }
    }
}

/// Two-relation instances with an FD on `emp` plus an exclusion constraint
/// between `emp` and `ban` — cross-relation hyperedges.
type TwoRelRows = (Vec<(i64, i64)>, Vec<(i64, i64)>);

fn arb_two_rel() -> impl Strategy<Value = TwoRelRows> {
    (
        prop::collection::vec((0i64..5, 0i64..3), 0..9),
        prop::collection::vec((0i64..5, 0i64..3), 0..5),
    )
}

fn build_two_rel_db(emp: &[(i64, i64)], ban: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE emp (name INT, salary INT)")
        .unwrap();
    db.execute("CREATE TABLE ban (name INT, why INT)").unwrap();
    let dedup = |rows: &[(i64, i64)]| -> Vec<Vec<Value>> {
        let u: HashSet<(i64, i64)> = rows.iter().copied().collect();
        u.into_iter()
            .map(|(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect()
    };
    db.insert_rows("emp", dedup(emp)).unwrap();
    db.insert_rows("ban", dedup(ban)).unwrap();
    db
}

fn two_rel_constraints() -> Vec<DenialConstraint> {
    vec![
        DenialConstraint::functional_dependency("emp", &[0], 1),
        DenialConstraint::exclusion("emp", "ban", &[(0, 0)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn hippo_equals_naive_with_exclusion_constraints(
        (emp, ban) in arb_two_rel(),
        sel in 0i64..3,
    ) {
        let constraints = two_rel_constraints();
        let db = build_two_rel_db(&emp, &ban);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let queries = vec![
            SjudQuery::rel("emp"),
            SjudQuery::rel("ban"),
            SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, sel)),
            SjudQuery::rel("emp").diff(SjudQuery::rel("ban")),
            SjudQuery::rel("emp").union(SjudQuery::rel("ban")),
            SjudQuery::rel("emp")
                .product(SjudQuery::rel("ban"))
                .select(Pred::cmp_cols(0, CmpOp::Eq, 2)),
        ];
        for q in queries {
            let truth = naive_consistent_answers(&q, db.catalog(), &g);
            for opts in [HippoOptions::kg(), HippoOptions::full()] {
                let hippo = Hippo::with_options(
                    build_two_rel_db(&emp, &ban), constraints.clone(), opts.clone()).unwrap();
                prop_assert_eq!(hippo.consistent_answers(&q).unwrap(), truth.clone(),
                    "query {} opts {:?}", q, opts);
            }
        }
    }

    #[test]
    fn rewriting_equals_truth_with_exclusion(( emp, ban) in arb_two_rel()) {
        let constraints = two_rel_constraints();
        let db = build_two_rel_db(&emp, &ban);
        let (g, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
        let q = SjudQuery::rel("emp");
        let truth = naive_consistent_answers(&q, db.catalog(), &g);
        let rewritten = rewritten_answers(&q, &constraints, &db).unwrap();
        prop_assert_eq!(rewritten, truth);
    }

    #[test]
    fn range_aggregation_matches_enumeration(rows in arb_instance()) {
        use hippo::cqa::aggregate::{range_aggregate_fd, range_aggregate_naive, AggOp};
        let db = build_db(&rows);
        let constraints = vec![DenialConstraint::functional_dependency("emp", &[0], 1)];
        for op in [AggOp::Count, AggOp::Sum, AggOp::Min, AggOp::Max] {
            let fast = range_aggregate_fd(db.catalog(), "emp", &[0], 1, 1, op).unwrap();
            let slow = range_aggregate_naive(db.catalog(), "emp", &constraints, 1, op).unwrap();
            prop_assert_eq!(fast.glb.as_f64(), slow.glb.as_f64(), "glb for {:?}", op);
            prop_assert_eq!(fast.lub.as_f64(), slow.lub.as_f64(), "lub for {:?}", op);
        }
    }
}
