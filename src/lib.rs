//! # hippo
//!
//! Umbrella crate for the Hippo consistent-query-answering system
//! (reproduction of Chomicki, Marcinkowski, Staworko: "Hippo: A System for
//! Computing Consistent Answers to a Class of SQL Queries", EDBT 2004).
//!
//! Re-exports the three library crates:
//!
//! * [`sql`] — SQL lexer/parser/printer,
//! * [`engine`] — the in-memory RDBMS backend,
//! * [`cqa`] — the consistent-query-answering core (conflict hypergraph,
//!   enveloping, prover, optimizations, baselines).

pub use hippo_cqa as cqa;
pub use hippo_engine as engine;
pub use hippo_sql as sql;
