//! Data integration — the paper's opening motivation.
//!
//! Two autonomous account ledgers are merged. Each source is separately
//! consistent, but the union violates the FD `account → balance` wherever
//! the sources disagree. Deleting conflicting rows would silently drop
//! those accounts; consistent query answering keeps every account whose
//! balance is *certain* and can still answer range queries about the
//! disputed ones.
//!
//! Run with: `cargo run --example data_integration`

use hippo::cqa::detect::detect_conflicts;
use hippo::cqa::naive::conflict_free_answers;
use hippo::cqa::prelude::*;

fn main() {
    let workload = IntegrationWorkload {
        accounts_per_source: 200,
        overlap: 0.3,
        disagreement: 0.4,
        seed: 2004,
    };
    let db = workload.build().unwrap();
    let constraint = workload.constraint();

    let (graph, dstats) =
        detect_conflicts(db.catalog(), std::slice::from_ref(&constraint)).unwrap();
    println!(
        "integrated ledger: {} rows, {} conflicting rows in {} conflicts (detected in {:?})",
        db.catalog().table("ledger").unwrap().len(),
        graph.conflicting_vertex_count(),
        graph.edge_count(),
        dstats.elapsed,
    );

    let hippo = Hippo::new(db, vec![constraint]).unwrap();

    // Accounts with a consistently-known balance of at least 50 000.
    let q = SjudQuery::rel("ledger").select(Pred::cmp_const(1, CmpOp::Ge, 50_000i64));
    let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
    println!(
        "\nbalance ≥ 50000: {} consistent rows ({} candidates, {} prover calls, {:?})",
        answers.len(),
        stats.candidates,
        stats.prover_calls,
        stats.t_total
    );

    // Compare against the "delete conflicting rows" approach (demo part 1):
    let strawman = conflict_free_answers(&q, hippo.db().catalog(), hippo.graph());
    println!(
        "same query on the conflict-free instance: {} rows",
        strawman.len()
    );

    // Disjunctive information: accounts whose balance is, in every repair,
    // either below 1000 or above 90000 (union query — the class where the
    // query-rewriting comparator gives up).
    let q = SjudQuery::rel("ledger")
        .select(Pred::cmp_const(1, CmpOp::Lt, 1_000i64))
        .union(SjudQuery::rel("ledger").select(Pred::cmp_const(1, CmpOp::Gt, 90_000i64)));
    let answers = hippo.consistent_answers(&q).unwrap();
    println!(
        "\nextreme balances (union query): {} consistent rows",
        answers.len()
    );
    match hippo::cqa::rewrite::rewrite_query(&q, hippo.constraints(), hippo.db().catalog()) {
        Err(e) => println!("query rewriting on the same query: {e}"),
        Ok(_) => unreachable!("unions are outside the rewriting class"),
    }
}
