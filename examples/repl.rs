//! A tiny interactive shell over the engine + CQA layer.
//!
//! Run with: `cargo run --example repl`
//!
//! Commands:
//!   <sql>;                     execute a SQL statement on the backend
//!   .fd <table> <lhs> <rhs>    add an FD constraint (column indices)
//!   .detect                    (re)build the conflict hypergraph
//!   .cqa <sql>                 consistent answers to a SELECT (SJUD class)
//!   .quit

use hippo::cqa::prelude::*;
use hippo::engine::{Database, ExecResult};
use std::io::{self, BufRead, Write};

fn main() {
    let mut db = Some(Database::new());
    let mut constraints: Vec<DenialConstraint> = Vec::new();
    let mut hippo: Option<Hippo> = None;

    let stdin = io::stdin();
    print!("hippo> ");
    io::stdout().flush().unwrap();
    for line in stdin.lock().lines() {
        let line = line.unwrap();
        let line = line.trim();
        if line.is_empty() {
            print!("hippo> ");
            io::stdout().flush().unwrap();
            continue;
        }
        if line == ".quit" {
            break;
        } else if let Some(rest) = line.strip_prefix(".fd ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() == 3 {
                if let (Ok(lhs), Ok(rhs)) = (parts[1].parse::<usize>(), parts[2].parse::<usize>()) {
                    constraints.push(DenialConstraint::functional_dependency(
                        parts[0],
                        &[lhs],
                        rhs,
                    ));
                    println!("added FD {}:{} -> {}", parts[0], lhs, rhs);
                } else {
                    println!("usage: .fd <table> <lhs-col> <rhs-col>");
                }
            } else {
                println!("usage: .fd <table> <lhs-col> <rhs-col>");
            }
        } else if line == ".detect" {
            let d = db
                .take()
                .unwrap_or_else(|| hippo.take().map(Hippo::into_database).unwrap_or_default());
            match Hippo::new(d, constraints.clone()) {
                Ok(h) => {
                    println!(
                        "hypergraph: {} edges over {} tuples",
                        h.graph().edge_count(),
                        h.graph().conflicting_vertex_count()
                    );
                    hippo = Some(h);
                }
                Err(e) => println!("error: {e}"),
            }
        } else if let Some(sql) = line.strip_prefix(".cqa ") {
            match &hippo {
                Some(h) => match h.consistent_answers_sql(sql.trim().trim_end_matches(';')) {
                    Ok(rows) => {
                        for r in &rows {
                            println!("{r:?}");
                        }
                        println!("({} consistent rows)", rows.len());
                    }
                    Err(e) => println!("error: {e}"),
                },
                None => println!("run .detect first"),
            }
        } else {
            let target = match (&mut db, &mut hippo) {
                (Some(d), _) => Some(d),
                (None, Some(h)) => Some(h.db_mut()),
                _ => None,
            };
            match target {
                Some(d) => match d.execute(line.trim_end_matches(';')) {
                    Ok(ExecResult::Rows(r)) => {
                        println!("{}", r.columns.join(" | "));
                        for row in &r.rows {
                            let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
                            println!("{}", cells.join(" | "));
                        }
                        println!("({} rows)", r.rows.len());
                    }
                    Ok(ExecResult::Count(n)) => println!("ok ({n} rows affected)"),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("no database"),
            }
        }
        print!("hippo> ");
        io::stdout().flush().unwrap();
    }
}
