//! Quickstart: consistent query answering in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use hippo::cqa::prelude::*;
use hippo::engine::Database;

fn main() {
    // An employee table with an integrity problem: ann appears with two
    // different salaries, violating the functional dependency name → salary.
    let mut db = Database::new();
    db.execute("CREATE TABLE emp (name TEXT, salary INT)")
        .unwrap();
    db.execute(
        "INSERT INTO emp VALUES \
         ('ann', 100), ('ann', 200), ('bob', 300), ('cyd', 150)",
    )
    .unwrap();

    let fd = DenialConstraint::functional_dependency("emp", &[0], 1);
    let hippo = Hippo::new(db, vec![fd]).unwrap();

    println!(
        "conflict hypergraph: {} edge(s), {} conflicting tuple(s)",
        hippo.graph().edge_count(),
        hippo.graph().conflicting_vertex_count()
    );

    // Query 1: the whole relation. Only tuples true in EVERY repair count.
    let q = SjudQuery::rel("emp");
    println!("\nconsistent answers to `emp`:");
    for row in hippo.consistent_answers(&q).unwrap() {
        println!("  {row:?}");
    }

    // Query 2: employees earning at least 150 — bob and cyd qualify
    // consistently; ann only in the repair that kept the 200 salary.
    let q = SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Ge, 150i64));
    println!("\nconsistent answers to `σ(salary ≥ 150) emp`:");
    for row in hippo.consistent_answers(&q).unwrap() {
        println!("  {row:?}");
    }

    // Query 3: a union extracting indefinite information — "ann earns 100
    // or 200" holds in every repair even though neither disjunct does.
    let q = SjudQuery::rel("emp")
        .select(Pred::cmp_const(1, CmpOp::Eq, 100i64))
        .union(SjudQuery::rel("emp").select(Pred::cmp_const(1, CmpOp::Eq, 200i64)));
    println!("\nconsistent answers to `σ(=100) emp ∪ σ(=200) emp`:");
    for row in hippo.consistent_answers(&q).unwrap() {
        println!("  {row:?}");
    }

    // The same answers straight from SQL text (the paper's titular
    // "class of SQL queries").
    let answers = hippo
        .consistent_answers_sql("SELECT * FROM emp WHERE salary >= 150")
        .unwrap();
    println!("\nvia SQL text: {} consistent rows", answers.len());

    // Statistics of a run.
    let (_, stats) = hippo
        .consistent_answers_with_stats(&SjudQuery::rel("emp"))
        .unwrap();
    println!(
        "\nrun stats: {} candidates, {} prover calls, {} answers ({:?} total)",
        stats.candidates, stats.prover_calls, stats.answers, stats.t_total
    );
}
