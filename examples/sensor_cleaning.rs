//! Long-running activity with temporarily violated constraints — the
//! paper's second motivating scenario, cast as a sensor network.
//!
//! Sensors report `(sensor, epoch, reading)`. The FD `(sensor, epoch) →
//! reading` says a sensor has one reading per epoch; retransmissions with
//! corrupted payloads violate it. A CHECK denial additionally bans
//! physically impossible readings. Consistent query answering returns the
//! readings that are certain regardless of which copy is eventually kept.
//!
//! Run with: `cargo run --example sensor_cleaning`

use hippo::cqa::prelude::*;
use hippo::engine::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut db = Database::new();
    db.execute("CREATE TABLE readings (sensor INT, epoch INT, reading INT)")
        .unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let mut rows = Vec::new();
    for sensor in 0..20i64 {
        for epoch in 0..50i64 {
            let reading = rng.gen_range(0..100);
            rows.push(vec![
                Value::Int(sensor),
                Value::Int(epoch),
                Value::Int(reading),
            ]);
            // 5% retransmissions, half of them corrupted.
            if rng.gen_bool(0.05) {
                let corrupted = if rng.gen_bool(0.5) {
                    reading + 1000
                } else {
                    reading
                };
                rows.push(vec![
                    Value::Int(sensor),
                    Value::Int(epoch),
                    Value::Int(corrupted),
                ]);
            }
        }
    }
    db.insert_rows("readings", rows).unwrap();

    // (sensor, epoch) → reading; readings above 500 are impossible.
    let fd = DenialConstraint::functional_dependency("readings", &[0, 1], 2);
    let impossible = DenialConstraint::check(
        "readings",
        vec![Comparison {
            op: CmpOp::Gt,
            left: Term::Attr(AttrRef { atom: 0, col: 2 }),
            right: Term::Const(Value::Int(500)),
        }],
    );

    let hippo = Hippo::new(db, vec![fd, impossible]).unwrap();
    println!(
        "{} rows, {} conflicts over {} tuples",
        hippo.db().catalog().table("readings").unwrap().len(),
        hippo.graph().edge_count(),
        hippo.graph().conflicting_vertex_count()
    );

    // Certain high readings (≥ 90): true in every repair. Note the subtle
    // interaction: a duplicated-but-identical retransmission is NOT a
    // conflict; a corrupted one is, but since the corrupted copy is also
    // impossible (>500), it is in NO repair — so the clean copy survives
    // in every repair and remains a consistent answer. The prover's
    // blocking-edge reasoning handles this automatically.
    let q = SjudQuery::rel("readings").select(Pred::cmp_const(2, CmpOp::Ge, 90i64));
    let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
    println!(
        "certain readings ≥ 90: {} ({} candidates, {} via core filter, {} prover calls)",
        answers.len(),
        stats.candidates,
        stats.filtered_consistent,
        stats.prover_calls
    );

    // Difference query: epochs that consistently have NO alarm-level
    // reading — `readings − σ(reading ≥ 95) readings` restricted by hand.
    let q = SjudQuery::rel("readings").diff(SjudQuery::rel("readings").select(Pred::cmp_const(
        2,
        CmpOp::Ge,
        95i64,
    )));
    let answers = hippo.consistent_answers(&q).unwrap();
    println!("rows certainly below alarm level: {}", answers.len());
}
