//! Payroll audit: comparing every CQA strategy on one inconsistent
//! instance — Hippo (all optimization levels), query rewriting, naive
//! repair enumeration, the conflict-free strawman, and plain SQL.
//!
//! Run with: `cargo run --example payroll_audit`

use hippo::cqa::detect::detect_conflicts;
use hippo::cqa::naive::{conflict_free_answers, naive_consistent_answers, plain_answers};
use hippo::cqa::prelude::*;
use hippo::engine::{Database, Value};
use std::time::Instant;

fn build_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE payroll (emp TEXT, salary INT, dept TEXT)")
        .unwrap();
    // Seeded, small instance with a handful of FD violations on emp.
    let rows: Vec<(&str, i64, &str)> = vec![
        ("ann", 1200, "cs"),
        ("ann", 1250, "cs"), // conflict
        ("bob", 900, "ee"),
        ("cyd", 1100, "cs"),
        ("cyd", 1100, "me"), // conflict on dept? no: FD is emp → salary only
        ("dee", 700, "ee"),
        ("eve", 2000, "cs"),
        ("eve", 2100, "cs"), // conflict
        ("fred", 1500, "me"),
    ];
    db.insert_rows(
        "payroll",
        rows.into_iter()
            .map(|(e, s, d)| vec![Value::text(e), Value::Int(s), Value::text(d)])
            .collect(),
    )
    .unwrap();
    db
}

fn main() {
    let constraints = vec![DenialConstraint::functional_dependency("payroll", &[0], 1)];
    let q = SjudQuery::rel("payroll").select(Pred::cmp_const(1, CmpOp::Ge, 1000i64));
    println!("query: employees with certainly-high salary (≥ 1000)\n");

    // Ground truth by repair enumeration.
    let db = build_db();
    let (graph, _) = detect_conflicts(db.catalog(), &constraints).unwrap();
    let t = Instant::now();
    let truth = naive_consistent_answers(&q, db.catalog(), &graph);
    println!(
        "naive repair enumeration : {} answers in {:?} ({} repairs)",
        truth.len(),
        t.elapsed(),
        enumerate_repairs(&graph, None).len()
    );

    // Plain SQL (ignores inconsistency) and the strawman.
    println!(
        "plain SQL (inconsistent) : {} answers",
        plain_answers(&q, db.catalog()).len()
    );
    println!(
        "conflict-free strawman   : {} answers",
        conflict_free_answers(&q, db.catalog(), &graph).len()
    );

    // Query rewriting.
    let t = Instant::now();
    let rewritten = rewritten_answers(&q, &constraints, &db).unwrap();
    println!(
        "query rewriting (ABC'99) : {} answers in {:?}",
        rewritten.len(),
        t.elapsed()
    );
    assert_eq!(rewritten, truth);

    // Hippo at each optimization level.
    for (label, opts) in [
        ("Hippo base             ", HippoOptions::base()),
        ("Hippo +KG              ", HippoOptions::kg()),
        ("Hippo +KG +core filter ", HippoOptions::full()),
    ] {
        let hippo = Hippo::with_options(build_db(), constraints.clone(), opts).unwrap();
        let t = Instant::now();
        let (answers, stats) = hippo.consistent_answers_with_stats(&q).unwrap();
        assert_eq!(answers, truth);
        println!(
            "{label}: {} answers in {:?} (membership queries: {}, prover calls: {})",
            answers.len(),
            t.elapsed(),
            stats.membership_queries,
            stats.prover_calls
        );
    }
    println!("\nall strategies agree with the repair-enumeration ground truth ✓");

    // Range-consistent aggregation (extension; paper reference [3]):
    // salary totals are uncertain, but provably bounded over all repairs.
    use hippo::cqa::aggregate::{range_aggregate_fd, AggOp};
    let db = build_db();
    for (label, op) in [
        ("COUNT(*)", AggOp::Count),
        ("SUM(salary)", AggOp::Sum),
        ("MIN(salary)", AggOp::Min),
        ("MAX(salary)", AggOp::Max),
    ] {
        let r = range_aggregate_fd(db.catalog(), "payroll", &[0], 1, 1, op).unwrap();
        println!("range-consistent {label}: [{}, {}]", r.glb, r.lub);
    }
}
